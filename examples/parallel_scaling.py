"""Partitioned parallel join over TIGER-like data.

Runs a 4-worker :class:`repro.parallel.ParallelDistanceJoin` of the
synthetic Water and Roads point sets, checks its output against the
sequential operator, and prints a per-worker counter breakdown pulled
from the worker-side registries (every result batch carries a counter
snapshot back to the parent, which aggregates the deltas).

Also shows the SQL spelling of the same query: the ``PARALLEL <n>``
hint routes a Figure 1 query to the parallel engine.

Run:  python examples/parallel_scaling.py
"""

from repro import (
    CounterRegistry,
    IncrementalDistanceJoin,
    ParallelDistanceJoin,
)
from repro.datasets import roads_points, water_points
from repro.query import Database
from repro.rtree.bulk import bulk_load_str

PAIRS = 2_000


def canonical(results):
    """Sort equal-distance runs by (oid1, oid2).

    The parallel engine emits the canonical total order
    (distance, oid1, oid2); the sequential join orders ties by
    traversal instead, so comparing the two requires canonicalizing.
    """
    out, group, last = [], [], None
    for r in results:
        if last is not None and r.distance != last:
            group.sort(key=lambda g: (g.oid1, g.oid2))
            out.extend(group)
            group = []
        group.append(r)
        last = r.distance
    group.sort(key=lambda g: (g.oid1, g.oid2))
    out.extend(group)
    return out


def main():
    water = bulk_load_str(water_points(2_000))
    roads = bulk_load_str(roads_points(6_000))

    # --- the parallel join -------------------------------------------
    join = ParallelDistanceJoin(
        water, roads,
        workers=4,
        backend="thread",   # use backend="process" for CPU scaling
        partitions=8,
        max_pairs=PAIRS,
        counters=CounterRegistry(),  # keep the tally to this join only
    )
    parallel = list(join)
    print(f"parallel join: {len(parallel)} closest pairs, "
          f"d in [{parallel[0].distance:.3f}, "
          f"{parallel[-1].distance:.3f}] "
          f"across {len(join.tasks)} tile-pair tasks")

    # --- identical to the sequential algorithm -----------------------
    sequential = canonical(IncrementalDistanceJoin(
        water, roads, max_pairs=PAIRS,
    ))
    assert [(r.distance, r.oid1, r.oid2) for r in parallel] == \
           [(r.distance, r.oid1, r.oid2) for r in sequential]
    print("matches the sequential join's canonical output exactly")

    # --- per-worker counter breakdown --------------------------------
    print("\nper-worker breakdown:")
    for worker, snapshot in sorted(join.worker_breakdown().items()):
        print(f"  {worker:<28} "
              f"pairs={snapshot.value('pairs_reported'):>6,} "
              f"dist_calcs={snapshot.value('dist_calcs'):>7,} "
              f"peak_queue={snapshot.peak('queue_size'):>5,}")
    merged = join.counters.full_snapshot()
    print(f"  {'total (merged)':<28} "
          f"pairs={merged.value('pairs_reported'):>6,} "
          f"dist_calcs={merged.value('dist_calcs'):>7,} "
          f"peak_queue={merged.peak('queue_size'):>5,}")

    # --- the SQL spelling --------------------------------------------
    db = Database()
    db.create_relation("water", water)
    db.create_relation("roads", roads)
    rows = db.execute(
        "SELECT * FROM water, roads, "
        "DISTANCE(water.geom, roads.geom) AS d "
        "ORDER BY d STOP AFTER 5 PARALLEL 4"
    )
    print("\nSQL: ... ORDER BY d STOP AFTER 5 PARALLEL 4")
    for row in rows:
        print(f"  water #{row.oid1:>4} - roads #{row.oid2:>4}  "
              f"d={row.d:.4f}")


if __name__ == "__main__":
    main()
