"""GIS scenario from the paper's introduction: cities and rivers.

Demonstrates the three queries Section 1 motivates, expressed through
the SQL layer (Figure 1 syntax with the STOP AFTER extension):

1. "find the city nearest to any river"           -- STOP AFTER 1
2. "... such that the city has a large population" -- filter + pipeline
3. "find cities within 5 miles of any river"       -- WHERE d <= 5

Cities are synthetic points with attached populations; rivers are the
TIGER-like water centroids.

Run:  python examples/rivers_near_cities.py
"""

import random

from repro import IncrementalDistanceJoin
from repro.core.pairs import OBJ
from repro.datasets import water_points
from repro.datasets.synthetic import uniform_points
from repro.query import Database


def main():
    rng = random.Random(2024)
    cities = uniform_points(400, seed=31)
    populations = {
        oid: int(rng.lognormvariate(11.0, 1.2)) for oid in range(len(cities))
    }
    rivers = water_points(1500)

    db = Database()
    db.create_relation(
        "cities", cities,
        attributes={"pop": [populations[i] for i in range(len(cities))]},
    )
    db.create_relation("rivers", rivers)

    # --- Query 1: the city nearest to any river. -----------------------
    row = next(iter(db.execute(
        "SELECT * FROM cities, rivers, "
        "DISTANCE(cities.geom, rivers.geom) AS d "
        "ORDER BY d STOP AFTER 1"
    )))
    print(
        f"city nearest to any river: city #{row.oid1} at {row.geom1}, "
        f"{row.d:.1f} units from river point #{row.oid2}"
    )

    # --- Query 2: nearest city with population > 500,000. --------------
    # Option 1 of the paper's Section 5 discussion: run the incremental
    # join and filter the pipeline -- no index rebuild, and the first
    # qualifying pair arrives after only as much work as it needs.
    join = db.execute(
        "SELECT * FROM cities, rivers, "
        "DISTANCE(cities.geom, rivers.geom) AS d ORDER BY d"
    )
    examined = 0
    for row in join:
        examined += 1
        if populations[row.oid1] > 500_000:
            print(
                f"nearest big city: #{row.oid1} "
                f"(pop {populations[row.oid1]:,}) at {row.d:.1f} units "
                f"after examining {examined} candidate pairs"
            )
            break

    # Option 2: restrict first via the pair_filter hook (the paper's
    # parameterized-distance-function route), useful when the
    # selection is highly selective.
    filtered = IncrementalDistanceJoin(
        db.relation("cities"), db.relation("rivers"),
        pair_filter=lambda pair: (
            pair.item1.kind != OBJ  # node pairs pass through untouched
            or populations[pair.item1.oid] > 500_000
        ),
        max_pairs=1,
    )
    result = next(filtered)
    print(
        f"same answer via pair_filter: city #{result.oid1}, "
        f"d={result.distance:.1f}"
    )

    # Option 3: let the optimizer choose.  With a stored attribute the
    # predicate goes straight into the SQL; EXPLAIN shows which of the
    # paper's two plans the cost model picked.
    sql = (
        "SELECT * FROM cities, rivers, "
        "DISTANCE(cities.geom, rivers.geom) AS d "
        "WHERE cities.pop > 500000 ORDER BY d STOP AFTER 1"
    )
    plan = db.explain(sql)
    row = next(iter(db.execute(sql)))
    print(
        f"same answer via SQL predicate: city #{row.oid1}, "
        f"d={row.d:.1f} (strategy: {plan.strategy}, selectivity "
        f"{plan.selectivity1:.2f})"
    )

    # --- Query 3: cities within 250 units of any river. ----------------
    # A distance semi-join with a maximum distance: each city reported
    # at most once, with its closest river point.
    within = db.execute(
        "SELECT *, MIN(d) FROM cities, rivers, "
        "DISTANCE(cities.geom, rivers.geom) AS d "
        "WHERE d <= 250 GROUP BY cities.geom ORDER BY d"
    )
    riverside = list(within)
    print(f"\n{len(riverside)} of {len(cities)} cities lie within "
          f"250 units of a river; five closest:")
    for row in riverside[:5]:
        print(f"  city #{row.oid1:>3}  d={row.d:7.2f}")


if __name__ == "__main__":
    main()
