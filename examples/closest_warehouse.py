"""The paper's motivating scenario: assign every store its closest
warehouse (Section 1).

The distance semi-join of the stores relation with the warehouse
relation reports (store, warehouse) pairs in order of distance; once a
store has been paired it never appears again, so the complete result
partitions the stores like a discrete Voronoi diagram with the
warehouses as sites -- a geometric operation obtained from a database
primitive, no computational-geometry library involved.

Run:  python examples/closest_warehouse.py
"""

from collections import defaultdict

from repro import IncrementalDistanceSemiJoin, Point, RStarTree
from repro.datasets import gaussian_clusters


def main():
    # Stores cluster around a few population centres; warehouses are
    # placed on a sparse grid.
    stores = gaussian_clusters(
        600, seed=11, clusters=5, extent=1000.0, spread=60.0
    )
    warehouses = [
        Point((x * 250.0 + 125.0, y * 250.0 + 125.0))
        for x in range(4)
        for y in range(4)
    ]

    store_tree = RStarTree(dim=2)
    for store in stores:
        store_tree.insert(obj=store)
    warehouse_tree = RStarTree(dim=2)
    for warehouse in warehouses:
        warehouse_tree.insert(obj=warehouse)

    # GlobalAll is the paper's best full-result strategy (Figure 9).
    semi = IncrementalDistanceSemiJoin(
        store_tree, warehouse_tree,
        filter_strategy="inside2", dmax_strategy="global_all",
    )

    assignment = defaultdict(list)
    worst = None
    for pair in semi:
        assignment[pair.oid2].append(pair.oid1)
        worst = pair  # pairs arrive in increasing distance order

    print(f"assigned {len(stores)} stores to {len(warehouses)} warehouses")
    print("\nwarehouse load (stores served):")
    for wid in sorted(assignment, key=lambda w: -len(assignment[w])):
        bar = "#" * (len(assignment[wid]) // 5)
        print(f"  warehouse {wid:>2} at {warehouses[wid]}: "
              f"{len(assignment[wid]):>3} {bar}")
    unused = [w for w in range(len(warehouses)) if w not in assignment]
    if unused:
        print(f"  unused warehouses: {unused}")

    print(
        f"\nworst-served store: #{worst.oid1} at {worst.obj1}, "
        f"{worst.distance:.1f} units from warehouse #{worst.oid2}"
    )

    # Because the result streams in distance order, a planner can stop
    # as soon as service distances get too long -- no need to finish.
    semi = IncrementalDistanceSemiJoin(store_tree, warehouse_tree)
    covered = 0
    for pair in semi:
        if pair.distance > 150.0:
            break
        covered += 1
    print(
        f"\n{covered} of {len(stores)} stores lie within 150 units of "
        f"their warehouse (computed incrementally, stopped early)"
    )


if __name__ == "__main__":
    main()
