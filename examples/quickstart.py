"""Quickstart: the incremental distance join in five minutes.

Builds two small R*-trees, runs a distance join, a distance semi-join,
and shows the pipelined (STOP AFTER) consumption pattern the paper's
algorithms are designed for.

Run:  python examples/quickstart.py
"""

from repro import (
    IncrementalDistanceJoin,
    IncrementalDistanceSemiJoin,
    Point,
    RStarTree,
)
from repro.datasets import uniform_points


def main():
    # 1. Index two point relations (anything with an .mbr() works too).
    restaurants = RStarTree(dim=2)
    hotels = RStarTree(dim=2)
    for point in uniform_points(500, seed=1, extent=100.0):
        restaurants.insert(obj=point)
    for point in uniform_points(80, seed=2, extent=100.0):
        hotels.insert(obj=point)
    print(f"indexed {len(restaurants)} restaurants, {len(hotels)} hotels")

    # 2. Distance join: (restaurant, hotel) pairs, closest first.
    #    The join is an iterator -- consuming 5 pairs costs only the
    #    work needed for 5 pairs.
    join = IncrementalDistanceJoin(restaurants, hotels)
    print("\n5 closest (restaurant, hotel) pairs:")
    for __ in range(5):
        pair = next(join)
        print(
            f"  restaurant #{pair.oid1} <-> hotel #{pair.oid2}  "
            f"distance {pair.distance:.3f}"
        )

    # ... and it can simply be resumed later.
    print("next 3 pairs, resumed from the same iterator:")
    for __ in range(3):
        pair = next(join)
        print(f"  {pair.oid1} <-> {pair.oid2}  d={pair.distance:.3f}")

    # 3. Distance semi-join: each restaurant's nearest hotel, reported
    #    in order of distance (a discrete-Voronoi clustering).
    semi = IncrementalDistanceSemiJoin(restaurants, hotels)
    print("\n3 restaurants best served by a hotel:")
    for __ in range(3):
        pair = next(semi)
        print(
            f"  restaurant #{pair.oid1} -> hotel #{pair.oid2}  "
            f"d={pair.distance:.3f}"
        )

    # 4. Distance range: pairs between 5 and 10 units apart.
    ranged = IncrementalDistanceJoin(
        restaurants, hotels, min_distance=5.0, max_distance=10.0,
        max_pairs=4,
    )
    print("\n4 pairs with distance in [5, 10]:")
    for pair in ranged:
        print(f"  {pair.oid1} <-> {pair.oid2}  d={pair.distance:.3f}")

    # 5. Any query object type: the nearest hotel to a street corner.
    from repro import incremental_nearest
    corner = Point((50.0, 50.0))
    nearest = next(incremental_nearest(hotels, corner))
    print(
        f"\nnearest hotel to {corner}: #{nearest.oid} at "
        f"distance {nearest.distance:.3f}"
    )


if __name__ == "__main__":
    main()
