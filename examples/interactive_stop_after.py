"""The "fast first" pipeline: why incremental matters.

The paper's core claim (and its Section 4.1.4 experiment) is that an
incremental join delivers the first results after a tiny fraction of
the work a compute-everything approach needs.  This example measures
exactly that contrast on the TIGER-like data, the way an interactive
query interface would experience it: a user pages through results ten
at a time, and each page costs only its own increment.

Run:  python examples/interactive_stop_after.py
"""

import time

from repro import IncrementalDistanceJoin
from repro.baselines.nested_loop import nested_loop_join
from repro.bench.workloads import build_tiger_workload
from repro.util.counters import CounterRegistry


def main():
    workload = build_tiger_workload(scale=0.01)
    water, roads = workload.tree1, workload.tree2
    total = len(water) * len(roads)
    print(
        f"joining {len(water):,} water points with {len(roads):,} road "
        f"points ({total:,} possible pairs)\n"
    )

    # --- Interactive paging over the incremental join. -----------------
    join = IncrementalDistanceJoin(water, roads, counters=workload.counters)
    workload.reset_counters()
    print("paging through the join, 10 pairs per page:")
    shown = 0
    for page in range(1, 4):
        start = time.perf_counter()
        page_rows = []
        for __ in range(10):
            page_rows.append(next(join))
        elapsed = time.perf_counter() - start
        shown += len(page_rows)
        calcs = workload.counters.value("dist_calcs")
        print(
            f"  page {page}: distances "
            f"{page_rows[0].distance:8.4f} .. {page_rows[-1].distance:8.4f}"
            f"   (+{elapsed * 1000:6.1f} ms, {calcs:,} distance "
            f"calculations so far)"
        )

    # --- The non-incremental alternative. ------------------------------
    print("\nnon-incremental alternative (nested loop + sort):")
    counters = CounterRegistry()
    start = time.perf_counter()
    rows = nested_loop_join(
        workload.points1, workload.points2, max_pairs=30,
        counters=counters,
    )
    elapsed = time.perf_counter() - start
    print(
        f"  same 30 pairs took {elapsed:.2f} s and "
        f"{counters.value('dist_calcs'):,} distance calculations "
        f"(the entire Cartesian product, before anything is shown)"
    )
    assert [round(r.distance, 9) for r in rows[:shown]] is not None

    # --- STOP AFTER through the query layer. ---------------------------
    from repro.query import Database
    db = Database()
    db.create_relation("water", workload.points1)
    db.create_relation("roads", workload.points2)
    start = time.perf_counter()
    top = list(db.execute(
        "SELECT * FROM water, roads, "
        "DISTANCE(water.geom, roads.geom) AS d "
        "ORDER BY d STOP AFTER 5"
    ))
    elapsed = time.perf_counter() - start
    print("\nSTOP AFTER 5 through the SQL layer "
          f"({elapsed * 1000:.1f} ms):")
    for row in top:
        print(f"  water #{row.oid1:>5} <-> road #{row.oid2:>5}  "
              f"d={row.d:.4f}")


if __name__ == "__main__":
    main()
