"""Advanced features tour: k-NN join, intersection join, closest
pairs, snapshots, and EXPLAIN.

Everything here goes beyond the paper's evaluation but grows directly
out of its algorithms (Sections 1, 2.2.5, and the Section 5 future
work, implemented).

Run:  python examples/advanced_features.py
"""

import os
import tempfile

from repro import (
    KNearestNeighborJoin,
    Point,
    all_nearest_neighbors,
    closest_pair,
    intersection_join,
)
from repro.datasets import uniform_points
from repro.geometry.shapes import LineSegment
from repro.query import Database
from repro.rtree.bulk import bulk_load_str
from repro.storage.snapshot import load_tree, save_tree


def main():
    clinics = uniform_points(30, seed=41)
    patients = uniform_points(300, seed=42)
    clinic_tree = bulk_load_str(clinics)
    patient_tree = bulk_load_str(patients)

    # --- k-NN join: each patient's 3 nearest clinics. -------------------
    knn = KNearestNeighborJoin(patient_tree, clinic_tree, k=3)
    assignments = {}
    for pair in knn:
        assignments.setdefault(pair.oid1, []).append(pair.oid2)
    triple_covered = sum(1 for v in assignments.values() if len(v) == 3)
    print(f"k-NN join: {triple_covered} patients have 3 clinic options")

    # --- Closest pair / all nearest neighbours within one set. ----------
    tight = closest_pair(clinic_tree)
    print(
        f"closest clinic pair: #{tight.oid1} and #{tight.oid2}, "
        f"{tight.distance:.2f} apart"
    )
    isolation = max(all_nearest_neighbors(clinic_tree),
                    key=lambda r: r.distance)
    print(
        f"most isolated clinic: #{isolation.oid1} "
        f"({isolation.distance:.2f} to its nearest peer)"
    )

    # --- Intersection join ordered by distance from a reference. --------
    roads = [
        LineSegment(Point((0.0, y)), Point((10000.0, y)))
        for y in (2000.0, 5000.0, 8000.0)
    ]
    rivers = [
        LineSegment(Point((x, 0.0)), Point((x, 10000.0)))
        for x in (3000.0, 7000.0)
    ]
    house = Point((6500.0, 7600.0))
    crossings = list(intersection_join(
        bulk_load_str(roads), bulk_load_str(rivers), house
    ))
    print(f"\n{len(crossings)} road/river crossings, nearest first:")
    for crossing in crossings[:3]:
        print(
            f"  road #{crossing.oid1} x river #{crossing.oid2} "
            f"at {crossing.reference_distance:.0f} units from the house"
        )

    # --- Snapshots: build once, reuse forever. ---------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "clinics.tree")
        save_tree(clinic_tree, path)
        reloaded = load_tree(path)
        again = closest_pair(reloaded)
        print(
            f"\nsnapshot round-trip: closest pair still "
            f"{again.distance:.2f} ({os.path.getsize(path):,} bytes "
            f"on disk)"
        )

    # --- EXPLAIN: the cost model at work. --------------------------------
    db = Database()
    db.create_relation("patients", patient_tree)
    db.create_relation("clinics", clinic_tree)
    plan = db.explain(
        "SELECT * FROM patients, clinics, "
        "DISTANCE(patients.geom, clinics.geom) AS d "
        "WHERE d <= 500 ORDER BY d STOP AFTER 20"
    )
    print("\nEXPLAIN output:")
    print(plan.pretty())


if __name__ == "__main__":
    main()
