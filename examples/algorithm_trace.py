"""Watch the algorithm run: a traced join on a tiny data set.

Prints the actual push/pop/expand/report sequence of the incremental
distance join -- the best way to *see* the paper's Figure 3 executing,
including the monotone pop distances that make the correctness
argument work.

Run:  python examples/algorithm_trace.py
"""

from repro import Point, RStarTree
from repro.core import IncrementalDistanceJoin, IncrementalDistanceSemiJoin
from repro.core.trace import traced_join


def main():
    # Two tiny relations: 6 shops and 4 kiosks on a street grid.
    shops = RStarTree(dim=2, max_entries=4)
    for x, y in [(0, 0), (2, 1), (5, 0), (6, 3), (1, 4), (4, 5)]:
        shops.insert(obj=Point((float(x), float(y))))
    kiosks = RStarTree(dim=2, max_entries=4)
    for x, y in [(1, 1), (5, 1), (3, 4), (6, 5)]:
        kiosks.insert(obj=Point((float(x), float(y))))

    join, trace = traced_join(IncrementalDistanceJoin, shops, kiosks)
    print("three closest (shop, kiosk) pairs:")
    for __ in range(3):
        result = next(join)
        print(f"  shop #{result.oid1} <-> kiosk #{result.oid2} "
              f"d={result.distance:.3f}")

    print("\nthe algorithm's own transcript:")
    print(trace.render(limit=40))

    pops = [e.distance for e in trace.events if e.kind == "pop"]
    print(
        f"\npop distances are monotone non-decreasing: "
        f"{all(a <= b + 1e-12 for a, b in zip(pops, pops[1:]))} "
        f"(that is the whole correctness argument)"
    )

    # The semi-join's transcript shows the seen-set pruning kick in.
    semi, semi_trace = traced_join(
        IncrementalDistanceSemiJoin, shops, kiosks
    )
    results = list(semi)
    print(
        f"\nsemi-join: {len(results)} shops served, "
        f"{semi_trace.pops} pops, {semi_trace.pushes} pushes "
        f"(pruning kept the queue small)"
    )


if __name__ == "__main__":
    main()
