"""Service smoke run: boot the preemptable join service, page a
STOP AFTER query through it over HTTP, and export session metrics
plus the request's stitched trace.

Exercises the full serving stack the way CI does: an asyncio server
on an ephemeral port, the synchronous client paging a bounded join
across several scheduler quanta under a propagated W3C traceparent,
certified progress checked for monotonicity between pages, the
``/debug`` introspection endpoints, and the per-session metrics
written as JSON-lines (pass a path as argv[1]; defaults to
``service-metrics.jsonl`` in the working directory).  The session's
Chrome-format trace lands next to the metrics file as
``<metrics>-trace.json``.

Run:  python examples/service_smoke.py [artifacts/metrics.jsonl]
"""

import asyncio
import json
import os
import sys
import tempfile
import threading

from repro.datasets import uniform_points
from repro.query import Database
from repro.service import JoinService, ServiceClient
from repro.util.obs import write_metrics

SQL = (
    "SELECT * FROM stores, homes, "
    "DISTANCE(stores.geom, homes.geom) AS d "
    "ORDER BY d STOP AFTER 120"
)

#: A fixed client-side trace identity the server must adopt.
TRACEPARENT = "00-" + "c1" * 16 + "-" + "0d" * 8 + "-01"


def main():
    metrics_path = sys.argv[1] if len(sys.argv) > 1 \
        else "service-metrics.jsonl"
    out_dir = os.path.dirname(metrics_path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    trace_path = metrics_path + "-trace.json"

    db = Database()
    db.create_relation("stores", uniform_points(150, seed=7))
    db.create_relation("homes", uniform_points(400, seed=8))

    with tempfile.TemporaryDirectory() as spool:
        service = JoinService(
            db, quantum_pairs=16, spool_dir=spool,
        )
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(service.start(port=0))
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        if not started.wait(10):
            raise SystemExit("server failed to start")
        print(f"service listening on 127.0.0.1:{service.port}")

        client = ServiceClient(port=service.port)
        admission = client.admit(SQL, traceparent=TRACEPARENT)
        session_id = admission["session"]
        assert admission["trace_id"] == "c1" * 16, \
            f"traceparent not adopted: {admission}"
        print(f"admitted session {session_id} "
              f"trace {admission['trace_id']}")

        total, pages, quanta = 0, 0, 0
        bounds = []
        trace = None
        while True:
            reply = client.next(session_id, k=25)
            total += len(reply["rows"])
            pages += 1
            quanta = reply["quanta"]
            if reply["done"]:
                break
            # The session is still live: certified progress must be
            # monotone, /debug must list it, and the stitched trace
            # must carry the propagated trace id.
            progress = client.progress(session_id)["progress"]
            bounds.append(progress["lower_bound"])
            debug = client.debug_sessions()
            assert any(
                entry["session"] == session_id for entry in debug
            ), f"/debug/sessions is missing {session_id}: {debug}"
            trace = client.debug_trace(session_id, fmt="chrome")
        print(f"paged {total} rows in {pages} pages / {quanta} quanta")
        assert total == 120, f"expected 120 rows, got {total}"
        assert quanta >= 3, "the 16-pair quantum must preempt"
        assert bounds == sorted(bounds), \
            f"certified lower bound regressed: {bounds}"
        assert bounds and bounds[-1] > 0, \
            f"lower bound never moved: {bounds}"
        print(f"certified lower bounds per page: "
              f"{[round(b, 3) for b in bounds]}")

        assert trace is not None and trace["traceEvents"], \
            "no trace captured before the stream finished"
        span_names = {
            event.get("name") for event in trace["traceEvents"]
            if event.get("ph") == "X"
        }
        assert "request" in span_names, sorted(span_names)
        assert "service.quantum" in span_names, sorted(span_names)
        traced_ids = {
            event["args"].get("trace_id")
            for event in trace["traceEvents"]
            if event.get("ph") == "X" and "args" in event
        }
        assert traced_ids == {"c1" * 16}, traced_ids
        with open(trace_path, "w") as handle:
            json.dump(trace, handle)
        print(f"trace -> {trace_path} "
              f"({len(trace['traceEvents'])} events)")

        # Session metrics (scheduler counters + per-session spans and
        # gauges) in the shared metrics schema.
        records = service.scheduler.metrics(
            labels={"example": "service_smoke"}
        )
        write_metrics(metrics_path, records=records)
        print(f"metrics -> {metrics_path} (+ .prom)")

        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()
    print("service smoke OK")


if __name__ == "__main__":
    main()
