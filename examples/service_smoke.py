"""Service smoke run: boot the preemptable join service, page a
STOP AFTER query through it over HTTP, and export session metrics.

Exercises the full serving stack the way CI does: an asyncio server
on an ephemeral port, the synchronous client paging a bounded join
across several scheduler quanta, and the per-session metrics written
as JSON-lines (pass a path as argv[1]; defaults to
``service-metrics.jsonl`` in the working directory).

Run:  python examples/service_smoke.py [metrics.jsonl]
"""

import asyncio
import sys
import tempfile
import threading

from repro.datasets import uniform_points
from repro.query import Database
from repro.service import JoinService, ServiceClient
from repro.util.obs import write_metrics

SQL = (
    "SELECT * FROM stores, homes, "
    "DISTANCE(stores.geom, homes.geom) AS d "
    "ORDER BY d STOP AFTER 120"
)


def main():
    metrics_path = sys.argv[1] if len(sys.argv) > 1 \
        else "service-metrics.jsonl"

    db = Database()
    db.create_relation("stores", uniform_points(150, seed=7))
    db.create_relation("homes", uniform_points(400, seed=8))

    with tempfile.TemporaryDirectory() as spool:
        service = JoinService(
            db, quantum_pairs=16, spool_dir=spool,
        )
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(service.start(port=0))
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        if not started.wait(10):
            raise SystemExit("server failed to start")
        print(f"service listening on 127.0.0.1:{service.port}")

        client = ServiceClient(port=service.port)
        session_id = client.query(SQL)
        print(f"admitted session {session_id}")

        total, pages, quanta = 0, 0, 0
        while True:
            reply = client.next(session_id, k=25)
            total += len(reply["rows"])
            pages += 1
            quanta = reply["quanta"]
            if reply["done"]:
                break
        print(f"paged {total} rows in {pages} pages / {quanta} quanta")
        assert total == 120, f"expected 120 rows, got {total}"
        assert quanta >= 3, "the 16-pair quantum must preempt"

        # Session metrics (scheduler counters + per-session spans and
        # gauges) in the shared metrics schema.
        records = service.scheduler.metrics(
            labels={"example": "service_smoke"}
        )
        write_metrics(metrics_path, records=records)
        print(f"metrics -> {metrics_path} (+ .prom)")

        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()
    print("service smoke OK")


if __name__ == "__main__":
    main()
