"""Property test: the shard router is equivalent to the sequential
join for random data, specs, and shard counts.

The reference is the canonical order ``(distance, oid1, oid2)`` (see
``test_parallel_equivalence``).  Every draw checks the full stream, a
``stop after K`` prefix (where lazy admission actually prunes), and a
pickled suspend/resume of a sharded cursor taken mid-stream.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load_str
from repro.shard import ShardRouterJoin, ShardRouterSemiJoin, clear_caches

SHARD_COUNTS = (1, 2, 4)

coordinates = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=30),
)

point_lists = st.lists(coordinates, min_size=1, max_size=40).map(
    lambda coords: [Point((float(x), float(y))) for x, y in coords]
)


def canonical(results):
    out, group, last = [], [], None
    for r in results:
        if last is not None and r.distance != last:
            group.sort(key=lambda g: (g.oid1, g.oid2))
            out.extend(group)
            group = []
        group.append(r)
        last = r.distance
    group.sort(key=lambda g: (g.oid1, g.oid2))
    out.extend(group)
    return [(r.distance, r.oid1, r.oid2) for r in out]


def rows(join):
    return [(r.distance, r.oid1, r.oid2) for r in join]


@settings(max_examples=10, deadline=None)
@given(points_a=point_lists, points_b=point_lists, data=st.data())
def test_router_equals_sequential(points_a, points_b, data):
    clear_caches()
    tree_a = bulk_load_str(points_a)
    tree_b = bulk_load_str(points_b)
    dmin = data.draw(
        st.sampled_from([0.0, 2.0, 5.0]), label="min_distance"
    )
    dmax = data.draw(
        st.sampled_from([float("inf"), 20.0, 8.0]),
        label="max_distance",
    )
    reference = canonical(IncrementalDistanceJoin(
        tree_a, tree_b, min_distance=dmin, max_distance=dmax,
    ))
    k = data.draw(
        st.integers(min_value=1, max_value=max(1, len(reference))),
        label="stop_after_k",
    )
    for shards in SHARD_COUNTS:
        full = ShardRouterJoin(
            tree_a, tree_b, shards=shards, batch_size=7,
            min_distance=dmin, max_distance=dmax, result_cache=False,
        )
        assert rows(full) == reference, f"shards={shards}"
        prefix = ShardRouterJoin(
            tree_a, tree_b, shards=shards, batch_size=7,
            min_distance=dmin, max_distance=dmax, max_pairs=k,
            result_cache=False,
        )
        assert rows(prefix) == reference[:k], \
            f"shards={shards}, k={k}"


@settings(max_examples=8, deadline=None)
@given(points_a=point_lists, points_b=point_lists, data=st.data())
def test_router_resumes_through_pickle(points_a, points_b, data):
    clear_caches()
    tree_a = bulk_load_str(points_a)
    tree_b = bulk_load_str(points_b)
    reference = canonical(IncrementalDistanceJoin(tree_a, tree_b))
    if not reference:
        return
    k = data.draw(
        st.integers(min_value=1, max_value=len(reference)),
        label="stop_after_k",
    )
    cut = data.draw(
        st.integers(min_value=0, max_value=k), label="suspend_at"
    )
    shards = data.draw(
        st.sampled_from(SHARD_COUNTS), label="shards"
    )
    router = ShardRouterJoin(
        tree_a, tree_b, shards=shards, batch_size=5, max_pairs=k,
        result_cache=False,
    )
    taken = [next(router) for __ in range(cut)]
    blob = pickle.dumps(router.save(), pickle.HIGHEST_PROTOCOL)
    resumed = ShardRouterJoin.load(pickle.loads(blob), tree_a, tree_b)
    assert [
        (r.distance, r.oid1, r.oid2) for r in taken
    ] + rows(resumed) == reference[:k]


@settings(max_examples=8, deadline=None)
@given(points_a=point_lists, points_b=point_lists, data=st.data())
def test_semi_router_equals_sequential(points_a, points_b, data):
    clear_caches()
    tree_a = bulk_load_str(points_a)
    tree_b = bulk_load_str(points_b)
    reference = {
        r.oid1: r.distance
        for r in IncrementalDistanceSemiJoin(tree_a, tree_b)
    }
    shards = data.draw(st.sampled_from(SHARD_COUNTS), label="shards")
    join = ShardRouterSemiJoin(
        tree_a, tree_b, shards=shards, batch_size=5,
        result_cache=False,
    )
    seen, previous = {}, -1.0
    for result in join:
        assert result.distance >= previous
        previous = result.distance
        assert result.oid1 not in seen
        seen[result.oid1] = result.distance
    assert seen == reference
