"""Plan-level cursors: PhysicalPlan.save()/restore() across the whole
operator tree, the service QuerySource wrapper, and the CLI's
``query --page`` / ``--resume`` interactive paging."""

import pickle

import pytest

from repro.cli import main as cli_main
from repro.errors import CursorError
from repro.query.executor import Database
from repro.query.physical import OperatorState
from repro.service.session import QuerySource
from repro.util.counters import CounterRegistry

from tests.conftest import make_points

SQL = (
    "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "WHERE a.w < 7 AND d <= 40 ORDER BY d STOP AFTER 60"
)


def build_db():
    import random

    rng = random.Random(55)
    points_a = make_points(110, seed=51)
    points_b = make_points(130, seed=52)
    db = Database(counters=CounterRegistry())
    db.create_relation(
        "a", points_a,
        attributes={"w": [rng.randint(0, 9) for __ in points_a]},
    )
    db.create_relation("b", points_b)
    return db


@pytest.fixture(scope="module")
def reference():
    db = build_db()
    return [r for r in db.physical_plan(SQL, strategy="pipeline").rows()]


class TestPlanCursor:
    @pytest.mark.parametrize("strategy", ["pipeline", "prefilter"])
    def test_paged_equals_oneshot(self, strategy, reference):
        """Page through the plan 13 rows at a time, rebuilding the
        whole Database and plan from the pickled cursor each page."""
        db = build_db()
        plan = db.physical_plan(SQL, strategy=strategy)
        rows_iter = plan.rows()
        got = []
        while True:
            page = []
            for row in rows_iter:
                page.append(row)
                if len(page) >= 13:
                    break
            got.extend(page)
            if len(page) < 13:
                break
            state = pickle.loads(pickle.dumps(plan.save()))
            db = build_db()  # a cold process would rebuild everything
            plan = db.physical_plan(SQL, strategy=strategy)
            plan.restore(state)
            rows_iter = plan.rows()
        assert got == reference

    def test_state_shape_is_versioned(self):
        db = build_db()
        plan = db.physical_plan(SQL, strategy="pipeline")
        next(plan.rows())
        state = plan.save()
        assert isinstance(state, OperatorState)
        assert state.version == 1
        assert state.operator

    def test_mismatched_relation_rejected(self):
        db = build_db()
        plan = db.physical_plan(SQL, strategy="pipeline")
        next(plan.rows())
        state = plan.save()

        other = Database()
        other.create_relation("a", make_points(40, seed=1),
                              attributes={"w": [1] * 40})
        other.create_relation("b", make_points(45, seed=2))
        other_plan = other.physical_plan(SQL, strategy="pipeline")
        with pytest.raises(CursorError):
            other_plan.restore(state)


class TestQuerySource:
    def test_save_load_resumes_stream(self, reference):
        db = build_db()
        source = QuerySource(db, SQL, strategy="pipeline")
        rows = source.open()
        got = [next(rows) for __ in range(17)]
        state = pickle.loads(pickle.dumps(source.save()))

        db2 = build_db()
        source2 = QuerySource(db2, SQL, strategy="pipeline")
        source2.load(state)
        got.extend(source2.open())
        assert got == reference

    def test_load_rejects_foreign_state(self):
        db = build_db()
        source = QuerySource(db, SQL)
        with pytest.raises(CursorError):
            source.load({"format": "something-else"})


class TestParallelSuspension:
    def test_parallel_join_save_raises(self):
        from repro.parallel import ParallelDistanceJoin

        from tests.conftest import make_tree

        t1 = make_tree(make_points(40, seed=3))
        t2 = make_tree(make_points(40, seed=4))
        join = ParallelDistanceJoin(
            t1, t2, max_pairs=10, workers=2, backend="thread",
            counters=CounterRegistry(),
        )
        try:
            with pytest.raises(CursorError):
                join.save()
        finally:
            join.close()


class TestCliPaging:
    def run(self, capsys, *argv):
        code = cli_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    @pytest.fixture
    def relations(self, tmp_path, capsys):
        w = str(tmp_path / "w.csv")
        r = str(tmp_path / "r.csv")
        self.run(capsys, "generate", "water", "--count", "150",
                 "--out", w)
        self.run(capsys, "generate", "roads", "--count", "200",
                 "--out", r)
        return w, r

    CLI_SQL = (
        "SELECT * FROM w, r, DISTANCE(w.geom, r.geom) AS d "
        "ORDER BY d STOP AFTER 25"
    )

    def test_paged_run_matches_oneshot(
        self, relations, tmp_path, capsys
    ):
        w, r = relations
        bind = ["--relation", f"w={w}", "--relation", f"r={r}"]
        cursor = str(tmp_path / "c.bin")

        code, full, __ = self.run(
            capsys, "query", self.CLI_SQL, *bind
        )
        assert code == 0

        code, p1, err = self.run(
            capsys, "query", self.CLI_SQL, *bind,
            "--page", "10", "--cursor", cursor,
        )
        assert code == 0 and "cursor ->" in err
        code, p2, __ = self.run(
            capsys, "query", "--resume", cursor, *bind, "--page", "10"
        )
        assert code == 0
        code, p3, err = self.run(
            capsys, "query", "--resume", cursor, *bind, "--page", "10"
        )
        assert code == 0 and "done" in err
        assert p1 + p2 + p3 == full
        # The cursor file is cleaned up once the stream is exhausted.
        assert not (tmp_path / "c.bin").exists()

    def test_resume_guards_against_other_query(
        self, relations, tmp_path, capsys
    ):
        w, r = relations
        bind = ["--relation", f"w={w}", "--relation", f"r={r}"]
        cursor = str(tmp_path / "c.bin")
        self.run(
            capsys, "query", self.CLI_SQL, *bind,
            "--page", "5", "--cursor", cursor,
        )
        other = self.CLI_SQL.replace("25", "30")
        with pytest.raises(SystemExit):
            self.run(
                capsys, "query", other, *bind, "--resume", cursor
            )

    def test_missing_sql_without_resume_fails(self, capsys):
        with pytest.raises(SystemExit):
            self.run(capsys, "query", "--page", "5")
