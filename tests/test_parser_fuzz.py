"""Fuzz tests: the SQL front end must fail *predictably*.

Whatever the input, ``parse`` either returns a Query or raises
:class:`QuerySyntaxError` -- never an arbitrary exception, which is
what separates a usable parser from a stack-trace generator.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import QuerySyntaxError
from repro.query.lexer import tokenize
from repro.query.parser import parse

# Text biased toward SQL-looking content so the fuzzer reaches deep
# parser states, plus raw unicode for the lexer.
sql_words = st.sampled_from([
    "SELECT", "FROM", "WHERE", "ORDER", "BY", "GROUP", "STOP",
    "AFTER", "AND", "AS", "DESC", "MIN", "DISTANCE", "BETWEEN",
    "*", ",", "(", ")", ".", "<=", ">=", "<", ">", "=",
    "a", "b", "d", "geom", "pop", "1", "2.5", "1e3", "-4",
])
sql_soup = st.lists(sql_words, max_size=30).map(" ".join)


@settings(max_examples=300, deadline=None)
@given(sql_soup)
def test_parse_never_raises_unexpectedly(text):
    try:
        query = parse(text)
    except QuerySyntaxError:
        return
    # If it parsed, the result must be internally coherent.
    assert query.relation1 and query.relation2
    dmin, dmax = query.distance_bounds()
    assert dmin <= dmax


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=60))
def test_tokenize_never_raises_unexpectedly(text):
    try:
        tokens = tokenize(text)
    except QuerySyntaxError:
        return
    assert tokens[-1].type == "EOF"


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=60))
def test_parse_arbitrary_text(text):
    try:
        parse(text)
    except QuerySyntaxError:
        pass
