"""Tests for space-filling-curve bulk loading and tree quality metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distance_join import IncrementalDistanceJoin
from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.rtree.spacefill import (
    bulk_load_curve,
    hilbert_key_2d,
    morton_key,
)
from repro.rtree.stats import tree_quality
from repro.rtree.validate import validate_tree
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_pairs, make_points, make_tree


class TestCurveKeys:
    def test_morton_interleaves(self):
        # (1, 0) -> bit 0 set; (0, 1) -> bit 1 set.
        assert morton_key([1, 0], order=4) == 1
        assert morton_key([0, 1], order=4) == 2
        assert morton_key([1, 1], order=4) == 3

    def test_morton_any_dimension(self):
        assert morton_key([1, 0, 0], order=4) == 1
        assert morton_key([0, 0, 1], order=4) == 4

    def test_hilbert_order1(self):
        # The order-1 Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
        visits = sorted(
            (hilbert_key_2d(x, y, order=1), (x, y))
            for x in (0, 1) for y in (0, 1)
        )
        assert [cell for __, cell in visits] == [
            (0, 0), (0, 1), (1, 1), (1, 0)
        ]

    def test_hilbert_is_a_bijection(self):
        order = 4
        keys = {
            hilbert_key_2d(x, y, order)
            for x in range(16) for y in range(16)
        }
        assert keys == set(range(256))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_hilbert_locality(self, x, y):
        """Adjacent curve positions are adjacent cells (the property
        that makes Hilbert packing cluster well)."""
        order = 8
        key = hilbert_key_2d(x, y, order)
        # Reconstruct neighbours by brute scanning a small window.
        for dx, dy in ((1, 0), (0, 1)):
            nx, ny = x + dx, y + dy
            if nx < 256 and ny < 256:
                other = hilbert_key_2d(nx, ny, order)
                assert other != key


class TestCurveBulkLoad:
    @pytest.mark.parametrize("curve", ["hilbert", "morton"])
    def test_valid_tree_and_complete(self, curve):
        points = make_points(300, seed=241)
        tree = bulk_load_curve(points, curve=curve, max_entries=8)
        validate_tree(tree, allow_underfull=True)
        assert len(tree) == 300
        by_oid = {e.oid: e.obj for e in tree.items()}
        for i, point in enumerate(points):
            assert by_oid[i] == point

    @pytest.mark.parametrize("curve", ["hilbert", "morton", "str"])
    def test_join_answers_identical(self, curve):
        points_a = make_points(80, seed=242)
        points_b = make_points(80, seed=243)
        tree_a = bulk_load_curve(points_a, curve=curve, max_entries=8)
        tree_b = make_tree(points_b)
        join = IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        got = [next(join).distance for __ in range(100)]
        truth = [
            t[0] for t in brute_force_pairs(points_a, points_b)[:100]
        ]
        assert got == pytest.approx(truth)

    def test_hilbert_requires_2d(self):
        points = [Point((1.0, 2.0, 3.0))]
        with pytest.raises(GeometryError):
            bulk_load_curve(points, curve="hilbert")
        tree = bulk_load_curve(points, curve="morton")
        assert len(tree) == 1

    def test_empty_and_single(self):
        assert len(bulk_load_curve([], curve="hilbert")) == 0
        tree = bulk_load_curve([Point((0.0, 0.0))], curve="hilbert")
        assert len(tree) == 1

    def test_unknown_curve_rejected(self):
        with pytest.raises(ValueError):
            bulk_load_curve([Point((0, 0))], curve="spiral")

    def test_inserts_after_curve_load(self):
        points = make_points(60, seed=244)
        tree = bulk_load_curve(points, curve="hilbert", max_entries=8)
        tree.insert_point((50.0, 50.0))
        validate_tree(tree, allow_underfull=True)
        assert len(tree) == 61

    def test_duplicate_coordinates(self):
        points = [Point((5.0, 5.0))] * 40
        tree = bulk_load_curve(points, curve="hilbert", max_entries=8)
        validate_tree(tree, allow_underfull=True)
        assert len(tree) == 40


class TestTreeQuality:
    def test_metrics_populated(self):
        tree = make_tree(make_points(200, seed=245))
        quality = tree_quality(tree)
        assert quality.nodes > 1
        assert quality.height == tree.height
        assert 0.0 < quality.avg_fill <= 1.0
        assert quality.total_margin > 0.0
        assert quality.coverage_ratio > 0.0

    def test_empty_tree(self):
        from repro.rtree.rstar import RStarTree
        quality = tree_quality(RStarTree(dim=2, max_entries=4))
        assert quality.nodes == 1

    def test_hilbert_beats_morton_on_overlap(self):
        """Hilbert's locality should pack tighter than Morton on the
        clustered TIGER-like data (the classic empirical result)."""
        from repro.datasets.tiger_like import roads_points
        points = roads_points(3000)
        hilbert = tree_quality(
            bulk_load_curve(points, curve="hilbert", max_entries=16)
        )
        morton = tree_quality(
            bulk_load_curve(points, curve="morton", max_entries=16)
        )
        assert hilbert.sibling_overlap <= morton.sibling_overlap * 1.2

    def test_str_quality_reasonable(self):
        points = make_points(400, seed=246)
        from repro.rtree.bulk import bulk_load_str
        packed = tree_quality(bulk_load_str(points, max_entries=8))
        inserted = tree_quality(make_tree(points, max_entries=8))
        # Bulk packing should not be wildly worse than R* insertion.
        assert packed.sibling_overlap <= inserted.sibling_overlap * 5
