"""HTTP serving layer, end to end over a real socket: admit, page a
STOP AFTER k join across several quanta, observe status/metrics, and
exercise the API's error paths."""

import asyncio
import threading

import pytest

from repro.errors import ServiceError
from repro.query.executor import Database
from repro.service import JoinService, ServiceClient
from repro.util.counters import CounterRegistry

from tests.conftest import make_points

SQL = (
    "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "ORDER BY d STOP AFTER 40"
)


def build_db():
    db = Database(counters=CounterRegistry())
    db.create_relation("a", make_points(90, seed=81))
    db.create_relation("b", make_points(110, seed=82))
    return db


@pytest.fixture
def served(tmp_path):
    """A JoinService on an ephemeral port with its loop in a thread;
    yields (service, client)."""
    service = JoinService(
        build_db(),
        quantum_pairs=5,  # small quanta force multi-quantum paging
        spool_dir=str(tmp_path / "spool"),
        idle_evict_seconds=1e9,  # the evictor stays quiet in tests
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start(port=0))
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield service, ServiceClient(port=service.port, timeout=30)
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


class TestPaging:
    def test_stop_after_join_pages_across_quanta(self, served):
        """The acceptance path: a STOP AFTER k join paged over HTTP
        in >= 3 quanta, bit-identical to direct execution."""
        __, client = served
        reference = [
            {"d": r.d, "oid1": r.oid1, "oid2": r.oid2}
            for r in build_db().physical_plan(SQL).rows()
        ]

        session_id = client.query(SQL)
        rows, pages, quanta = [], 0, 0
        while True:
            reply = client.next(session_id, k=13)
            rows.extend(reply["rows"])
            pages += 1
            quanta = reply["quanta"]
            if reply["done"]:
                break
        assert pages >= 3
        assert quanta >= 3  # the 5-pair quantum forces preemption
        assert [
            {"d": r["d"], "oid1": r["oid1"], "oid2": r["oid2"]}
            for r in rows
        ] == reference
        # Geometry coordinates ride along as JSON arrays.
        assert all(len(r["geom1"]) == 2 for r in rows)

    def test_concurrent_sessions_share_rounds(self, served):
        __, client = served
        first = client.query(SQL)
        second = client.query(SQL)
        a = client.next(first, k=10)
        b = client.next(second, k=10)
        assert len(a["rows"]) == 10 and len(b["rows"]) == 10
        assert a["rows"] == b["rows"]
        client.delete(first)
        client.delete(second)

    def test_finished_session_frees_slot(self, served):
        service, client = served
        rows = client.rows(SQL, k=50)
        assert len(rows) == 40
        assert service.scheduler.status()["session_count"] == 0


class TestIntrospection:
    def test_status_and_metrics(self, served):
        __, client = served
        session_id = client.query(SQL)
        client.next(session_id, k=7)

        status = client.status()
        assert status["session_count"] == 1
        assert status["sessions"][0]["emitted"] == 7

        text = client.metrics_text()
        assert "repro_service_quanta" in text
        assert "repro_service_rows" in text
        client.delete(session_id)


class TestErrors:
    def test_bad_sql_is_a_client_error(self, served):
        __, client = served
        with pytest.raises(ServiceError) as err:
            client.query("SELECT FROM nothing")
        assert "400" in str(err.value)

    def test_unknown_session_is_not_found(self, served):
        __, client = served
        with pytest.raises(ServiceError) as err:
            client.next("missing", k=1)
        assert "404" in str(err.value)

    def test_unknown_route(self, served):
        __, client = served
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert "404" in str(err.value)

    def test_bad_strategy_rejected(self, served):
        __, client = served
        with pytest.raises(ServiceError) as err:
            client.query(SQL, strategy="quantum-leap")
        assert "400" in str(err.value)

    def test_k_bounds_enforced(self, served):
        __, client = served
        session_id = client.query(SQL)
        with pytest.raises(ServiceError):
            client.next(session_id, k=0)
        client.delete(session_id)
