"""Tests for the join cost model and EXPLAIN (Section 5 future work).

The model assumes uniform data, so the tests check the properties an
optimizer needs -- monotonicity, sane bounds, and correct *ranking*
against measured counters -- rather than absolute accuracy.
"""

import pytest

from repro.bench.runner import run_join
from repro.core.distance_join import IncrementalDistanceJoin
from repro.query.costmodel import JoinCostModel, collect_stats
from repro.query.executor import Database
from repro.util.counters import CounterRegistry

from tests.conftest import make_points, make_tree


@pytest.fixture(scope="module")
def model_setup():
    counters = CounterRegistry()
    points_a = make_points(300, seed=171)
    points_b = make_points(400, seed=172)
    tree_a = make_tree(points_a, counters=counters)
    tree_b = make_tree(points_b, counters=counters)
    return tree_a, tree_b, points_a, points_b, counters


class TestStats:
    def test_collect_stats_shape(self, model_setup):
        tree_a, *__ = model_setup
        stats = collect_stats(tree_a)
        assert stats.size == 300
        assert stats.height == tree_a.height
        assert len(stats.levels) == stats.height
        assert stats.levels[0].level == 0
        assert sum(
            l.nodes for l in stats.levels
        ) >= stats.height  # at least one node per level

    def test_empty_tree_stats(self):
        from repro.rtree.rstar import RStarTree
        stats = collect_stats(RStarTree(dim=2, max_entries=4))
        assert stats.size == 0


class TestSelectivity:
    def test_expected_pairs_monotone_in_distance(self, model_setup):
        tree_a, tree_b, *__ = model_setup
        model = JoinCostModel(tree_a, tree_b)
        previous = -1.0
        for distance in (0.0, 1.0, 5.0, 20.0, 100.0):
            estimate = model.expected_pairs_within(distance)
            assert estimate >= previous
            previous = estimate

    def test_expected_pairs_capped_by_product(self, model_setup):
        tree_a, tree_b, points_a, points_b, __ = model_setup
        model = JoinCostModel(tree_a, tree_b)
        cap = len(points_a) * len(points_b)
        assert model.expected_pairs_within(float("inf")) == cap
        assert model.expected_pairs_within(1e9) == cap

    def test_expected_pairs_roughly_right_on_uniform_data(
        self, model_setup
    ):
        tree_a, tree_b, points_a, points_b, __ = model_setup
        from repro.geometry.metrics import EUCLIDEAN
        model = JoinCostModel(tree_a, tree_b)
        distance = 10.0
        actual = sum(
            1
            for a in points_a
            for b in points_b
            if EUCLIDEAN.distance(a, b) <= distance
        )
        predicted = model.expected_pairs_within(distance)
        # Uniform data, so the model should land within 2x.
        assert actual / 2 <= predicted <= actual * 2

    def test_distance_for_pairs_inverts(self, model_setup):
        tree_a, tree_b, *__ = model_setup
        model = JoinCostModel(tree_a, tree_b)
        for pairs in (10, 1000, 50_000):
            distance = model.distance_for_pairs(pairs)
            back = model.expected_pairs_within(distance)
            assert back == pytest.approx(pairs, rel=0.05)


class TestCostRanking:
    def test_cost_monotone_in_distance_bound(self, model_setup):
        tree_a, tree_b, *__ = model_setup
        model = JoinCostModel(tree_a, tree_b)
        costs = [
            model.estimate(max_distance=d).total_cost()
            for d in (1.0, 5.0, 25.0, float("inf"))
        ]
        assert costs == sorted(costs)

    def test_semi_join_cheaper_than_full_join(self, model_setup):
        tree_a, tree_b, *__ = model_setup
        model = JoinCostModel(tree_a, tree_b)
        semi = model.estimate(semi_join=True)
        full = model.estimate()
        assert semi.total_cost() <= full.total_cost()

    def test_ranking_agrees_with_measurement(self, model_setup):
        """The model must rank a narrow-range join cheaper than a wide
        one, and the measurement must agree."""
        tree_a, tree_b, __, ___, counters = model_setup
        model = JoinCostModel(tree_a, tree_b)
        predicted_narrow = model.estimate(max_distance=2.0).total_cost()
        predicted_wide = model.estimate(max_distance=30.0).total_cost()
        assert predicted_narrow < predicted_wide

        measured = {}
        for label, dmax in (("narrow", 2.0), ("wide", 30.0)):
            run = run_join(
                lambda: IncrementalDistanceJoin(
                    tree_a, tree_b, max_distance=dmax, counters=counters
                ),
                None,
                counters,
            )
            measured[label] = run.dist_calcs
        assert measured["narrow"] < measured["wide"]


class TestExplain:
    def test_explain_join(self, model_setup):
        tree_a, tree_b, *__ = model_setup
        db = Database()
        db.create_relation("a", tree_a)
        db.create_relation("b", tree_b)
        plan = db.explain(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
            "WHERE d <= 5 ORDER BY d STOP AFTER 10"
        )
        assert plan.operator == "IncrementalDistanceJoin"
        assert plan.max_distance == 5.0
        assert plan.stop_after == 10
        assert plan.estimated_result_pairs <= 10
        assert plan.estimated_cost > 0
        assert "IncrementalDistanceJoin" in plan.pretty()

    def test_explain_semi_join(self, model_setup):
        tree_a, tree_b, *__ = model_setup
        db = Database()
        db.create_relation("a", tree_a)
        db.create_relation("b", tree_b)
        plan = db.explain(
            "SELECT *, MIN(d) FROM a, b, DISTANCE(a.g, b.g) AS d "
            "GROUP BY a.g ORDER BY d"
        )
        assert plan.operator == "IncrementalDistanceSemiJoin"
        assert plan.estimated_result_pairs <= len(tree_a)

    def test_explain_reverse(self, model_setup):
        tree_a, tree_b, *__ = model_setup
        db = Database()
        db.create_relation("a", tree_a)
        db.create_relation("b", tree_b)
        plan = db.explain(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d ORDER BY d DESC"
        )
        assert plan.operator == "ReverseDistanceJoin"

    def test_explain_does_not_execute(self, model_setup):
        tree_a, tree_b, __, ___, counters = model_setup
        db = Database()
        db.create_relation("a", tree_a)
        db.create_relation("b", tree_b)
        counters.reset()
        db.explain("SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d")
        assert counters.value("dist_calcs") == 0
        assert counters.value("pairs_reported") == 0

    def test_stop_after_lowers_estimated_cost(self, model_setup):
        tree_a, tree_b, *__ = model_setup
        db = Database()
        db.create_relation("a", tree_a)
        db.create_relation("b", tree_b)
        bounded = db.explain(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d STOP AFTER 10"
        )
        unbounded = db.explain(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d"
        )
        assert bounded.estimated_cost < unbounded.estimated_cost