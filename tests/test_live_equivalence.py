"""Property-based equivalence of the standing join.

The contract under test: a :class:`~repro.live.StandingJoin` fed an
arbitrary interleaving of inserts, deletes, delta consumption, and
pickled suspend/resume cycles holds *exactly* the result a full
recomputation over the final data would report -- same rows, same
canonical order, same counters run to run.

Also hosts the mutation-soundness regressions that ride along with
the live subsystem: the per-node columnar (SoA) cache under
delete-then-reinsert, and stats-cache invalidation.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.spec import JoinSpec
from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.point import Point
from repro.live import ADD, StandingJoin, pair_key
from repro.util.counters import CounterRegistry
from tests.conftest import make_points, make_tree

# One scripted update: an insert of a generated point on a chosen
# side, a delete (index into the live oid list, resolved at replay
# time), a partial poll of the outbox, or a pickled suspend/resume.
coords = st.tuples(st.floats(0, 100), st.floats(0, 100))
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from([1, 2]), coords),
        st.tuples(st.just("delete"), st.sampled_from([1, 2]),
                  st.integers(0, 10_000)),
        st.tuples(st.just("poll"), st.just(0), st.integers(0, 5)),
        st.tuples(st.just("suspend"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=24,
)


def canonical_topk(objs1, objs2, k):
    keys = sorted(
        (EUCLIDEAN.distance(a, b), oid1, oid2)
        for oid1, a in objs1.items()
        for oid2, b in objs2.items()
    )
    return keys if k is None else keys[:k]


def replay(script, k, seed_a=61, seed_b=62, counters=None):
    """Run one update script; returns (standing, held, objs, counters).

    ``held`` is the subscriber's copy of the result, maintained purely
    from the delta stream -- never read out of the standing join.
    """
    points_a = make_points(12, seed=seed_a)
    points_b = make_points(12, seed=seed_b)
    tree_a = make_tree(points_a, max_entries=4)
    tree_b = make_tree(points_b, max_entries=4)
    objs = {1: dict(enumerate(points_a)), 2: dict(enumerate(points_b))}
    counters = counters if counters is not None else CounterRegistry()
    standing = StandingJoin(
        tree_a, tree_b, JoinSpec(max_pairs=k), counters=counters
    )
    held = {}

    def apply(deltas):
        for delta in deltas:
            if delta.op == ADD:
                assert delta.key not in held
                held[delta.key] = True
            else:
                del held[delta.key]

    # The subscriber consumes the outbox alone (repair deltas are also
    # returned by insert/delete, but applying both would double-count).
    next_oid = 1000
    for op, side, arg in script:
        if op == "insert":
            point = Point(arg)
            standing.insert(next_oid, point, side=side)
            objs[side][next_oid] = point
            next_oid += 1
        elif op == "delete":
            live = sorted(objs[side])
            if not live:
                continue
            oid = live[arg % len(live)]
            standing.delete(oid, side=side)
            del objs[side][oid]
        elif op == "poll":
            # Draining (part of) the outbox must not disturb repair.
            apply(standing.poll(arg))
        else:  # suspend/resume through actual pickle bytes
            blob = pickle.dumps(
                standing.save(), pickle.HIGHEST_PROTOCOL
            )
            standing = StandingJoin.load(
                pickle.loads(blob), standing.tree1, standing.tree2,
                counters=counters,
            )
    apply(standing.poll())
    return standing, held, objs, counters


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations, st.integers(1, 12))
def test_property_replayed_deltas_equal_recomputation(script, k):
    """Property: the delta-maintained copy equals the canonical top-K
    of the final data, through any interleaving of updates, partial
    polls, and pickled suspend/resume cycles."""
    standing, held, objs, __ = replay(script, k)
    expected = canonical_topk(objs[1], objs[2], k)
    assert sorted(held) == expected
    assert [pair_key(r) for r in standing.result()] == expected
    assert standing.pending() == 0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations, st.integers(1, 10))
def test_property_counters_are_deterministic(script, k):
    """Property: the same script replayed twice produces bit-identical
    counter totals -- repair work is a function of the data, not of
    dict order, tie order, or suspend timing."""
    __, held1, __, counters1 = replay(script, k)
    __, held2, __, counters2 = replay(script, k)
    assert held1 == held2
    snap1, snap2 = counters1.full_snapshot(), counters2.full_snapshot()
    assert snap1.values == snap2.values
    for name in ("dist_calcs", "bound_calcs", "live_repairs",
                 "live_probe_pairs", "live_refills"):
        assert snap1.value(name) == snap2.value(name)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations, st.integers(1, 10))
def test_property_suspension_is_transparent(script, k):
    """Property: injecting a suspend/resume after every scripted
    update changes nothing -- not the held copy, not the sequence
    numbers, not the repair-work counters.  (Node I/O counters are
    excluded: resuming re-reads the trees to reattach payloads, which
    legitimately warms the buffer pool.)"""
    plain = [op for op in script if op[0] != "suspend"]
    suspended = []
    for op in plain:
        suspended.append(op)
        suspended.append(("suspend", 0, 0))
    s1, held1, __, c1 = replay(plain, k)
    s2, held2, __, c2 = replay(suspended, k)
    assert held1 == held2
    assert s1.seq == s2.seq
    assert s1.updates == s2.updates
    for name in ("dist_calcs", "bound_calcs", "queue_inserts",
                 "live_repairs", "live_probe_pairs", "live_refills"):
        assert c1.value(name) == c2.value(name), name


# ----------------------------------------------------------------------
# satellite regressions: mutation soundness of the cached layers
# ----------------------------------------------------------------------


def test_empty_soa_is_never_shared():
    """Regression: ``build()`` on an empty entry list must return a
    fresh EntrySoA -- a shared singleton would leak the ``items``
    scratch cache (child Items of one tree) into every empty node of
    every other tree once delete-then-reinsert empties a node."""
    np = pytest.importorskip("numpy")  # noqa: F841  (soa needs numpy)
    from repro.kernels.soa import build

    one, two = build([]), build([])
    assert one is not two
    assert one.items is not two.items
    one.items["poison"] = ["stale"]
    assert build([]).items == {}


def test_soa_cache_survives_delete_then_reinsert():
    """Regression: a node emptied by deletes and refilled by inserts
    must rebuild its columnar mirror (invalidate_soa on write), so a
    vector-kernel join after churn equals brute force."""
    pytest.importorskip("numpy")
    from repro.core.distance_join import IncrementalDistanceJoin
    from tests.conftest import brute_force_pairs

    points_a = make_points(30, seed=71)
    points_b = make_points(30, seed=72)
    tree_a = make_tree(points_a, max_entries=4)
    tree_b = make_tree(points_b, max_entries=4)

    def run():
        join = IncrementalDistanceJoin(
            tree_a, tree_b, JoinSpec(kernel="vector"),
            counters=CounterRegistry(),
        )
        return [(r.distance, r.oid1, r.oid2) for r in join]

    run()  # populate every node's SoA cache
    replaced = make_points(30, seed=73)
    for oid, (old, new) in enumerate(zip(points_b, replaced)):
        assert tree_b.delete(oid, tree_b._rect_of(old))
        tree_b.insert(obj=new, oid=oid)
    assert run() == brute_force_pairs(points_a, replaced)


def test_standing_join_after_node_churn_matches_oracle():
    """The live path on heavily churned trees (nodes emptied,
    refilled, split) still reports the canonical result."""
    points_a = make_points(25, seed=81)
    points_b = make_points(25, seed=82)
    tree_a = make_tree(points_a, max_entries=4)
    tree_b = make_tree(points_b, max_entries=4)
    objs = {1: dict(enumerate(points_a)), 2: dict(enumerate(points_b))}
    standing = StandingJoin(tree_a, tree_b, JoinSpec(max_pairs=9))
    for oid in range(20):  # empty most of side 2's leaves
        standing.delete(oid, side=2)
        del objs[2][oid]
    for step, point in enumerate(make_points(25, seed=83)):
        standing.insert(2000 + step, point, side=2)
        objs[2][2000 + step] = point
    assert [pair_key(r) for r in standing.result()] == \
        canonical_topk(objs[1], objs[2], 9)
