"""Unit tests for the performance-counter registry."""

from repro.util.counters import Counter, CounterRegistry


class TestCounter:
    def test_add_accumulates(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_peak_tracks_high_water(self):
        c = Counter("x")
        c.add(10)
        assert c.peak == 10
        c.reset()
        c.add(3)
        assert c.peak == 3

    def test_observe_only_updates_peak(self):
        c = Counter("gauge")
        c.observe(7)
        assert c.value == 0
        assert c.peak == 7
        c.observe(3)
        assert c.peak == 7


class TestRegistry:
    def test_auto_creates_counters(self):
        r = CounterRegistry()
        r.add("node_io")
        assert r.value("node_io") == 1

    def test_value_of_unknown_is_zero(self):
        r = CounterRegistry()
        assert r.value("nothing") == 0
        assert r.peak("nothing") == 0

    def test_reset_keeps_counters(self):
        r = CounterRegistry()
        r.add("a", 5)
        r.observe("b", 9)
        r.reset()
        assert r.value("a") == 0
        assert r.peak("b") == 0

    def test_snapshot_is_sorted(self):
        r = CounterRegistry()
        r.add("zeta")
        r.add("alpha", 2)
        assert list(r.snapshot()) == ["alpha", "zeta"]
        assert r.snapshot()["alpha"] == 2

    def test_snapshot_peaks(self):
        r = CounterRegistry()
        r.observe("queue_size", 42)
        assert r.snapshot_peaks()["queue_size"] == 42

    def test_iteration_yields_counter_objects(self):
        r = CounterRegistry()
        r.add("x")
        names = [name for name, counter in r]
        assert names == ["x"]

    def test_same_counter_object_returned(self):
        r = CounterRegistry()
        assert r.counter("a") is r.counter("a")
