"""Unit tests for the performance-counter registry."""

import pickle

from repro.util.counters import Counter, CounterRegistry, CounterSnapshot


class TestCounter:
    def test_add_accumulates(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_peak_tracks_high_water(self):
        c = Counter("x")
        c.add(10)
        assert c.peak == 10
        c.reset()
        c.add(3)
        assert c.peak == 3

    def test_observe_only_updates_peak(self):
        c = Counter("gauge")
        c.observe(7)
        assert c.value == 0
        assert c.peak == 7
        c.observe(3)
        assert c.peak == 7


class TestRegistry:
    def test_auto_creates_counters(self):
        r = CounterRegistry()
        r.add("node_io")
        assert r.value("node_io") == 1

    def test_value_of_unknown_is_zero(self):
        r = CounterRegistry()
        assert r.value("nothing") == 0
        assert r.peak("nothing") == 0

    def test_reset_keeps_counters(self):
        r = CounterRegistry()
        r.add("a", 5)
        r.observe("b", 9)
        r.reset()
        assert r.value("a") == 0
        assert r.peak("b") == 0

    def test_snapshot_is_sorted(self):
        r = CounterRegistry()
        r.add("zeta")
        r.add("alpha", 2)
        assert list(r.snapshot()) == ["alpha", "zeta"]
        assert r.snapshot()["alpha"] == 2

    def test_snapshot_peaks(self):
        r = CounterRegistry()
        r.observe("queue_size", 42)
        assert r.snapshot_peaks()["queue_size"] == 42

    def test_iteration_yields_counter_objects(self):
        r = CounterRegistry()
        r.add("x")
        names = [name for name, counter in r]
        assert names == ["x"]

    def test_same_counter_object_returned(self):
        r = CounterRegistry()
        assert r.counter("a") is r.counter("a")


class TestMergeAndSnapshots:
    def test_merge_registry_adds_values(self):
        a = CounterRegistry()
        b = CounterRegistry()
        a.add("dist_calcs", 10)
        b.add("dist_calcs", 5)
        b.add("node_io", 3)
        a.merge(b)
        assert a.value("dist_calcs") == 15
        assert a.value("node_io") == 3

    def test_merge_takes_peak_maximum(self):
        a = CounterRegistry()
        b = CounterRegistry()
        a.observe("queue_size", 10)
        b.observe("queue_size", 25)
        a.merge(b)
        assert a.peak("queue_size") == 25
        b2 = CounterRegistry()
        b2.observe("queue_size", 7)
        a.merge(b2)
        assert a.peak("queue_size") == 25

    def test_merge_accepts_snapshot(self):
        a = CounterRegistry()
        b = CounterRegistry()
        b.add("pairs_reported", 4)
        b.observe("queue_size", 9)
        a.merge(b.full_snapshot())
        assert a.value("pairs_reported") == 4
        assert a.peak("queue_size") == 9

    def test_full_snapshot_is_a_value_copy(self):
        r = CounterRegistry()
        r.add("x", 2)
        snap = r.full_snapshot()
        r.add("x", 5)
        assert snap.value("x") == 2
        assert r.value("x") == 7

    def test_snapshot_delta(self):
        r = CounterRegistry()
        r.add("x", 3)
        r.observe("g", 4)
        earlier = r.full_snapshot()
        r.add("x", 7)
        r.add("y", 1)
        r.observe("g", 9)
        delta = r.full_snapshot().delta_from(earlier)
        assert delta.value("x") == 7
        assert delta.value("y") == 1
        # peaks are not differenced: the later high-water mark stands
        assert delta.peak("g") == 9

    def test_snapshot_pickles(self):
        r = CounterRegistry()
        r.add("dist_calcs", 42)
        r.observe("queue_size", 17)
        snap = r.full_snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert isinstance(clone, CounterSnapshot)
        assert clone.value("dist_calcs") == 42
        assert clone.peak("queue_size") == 17

    def test_merging_deltas_reconstructs_totals(self):
        # The parallel engine's aggregation scheme: workers report
        # cumulative snapshots, the parent merges per-batch deltas.
        worker = CounterRegistry()
        parent = CounterRegistry()
        previous = None
        for batch in range(3):
            worker.add("dist_calcs", 10 * (batch + 1))
            snap = worker.full_snapshot()
            delta = snap.delta_from(previous) if previous else snap
            parent.merge(delta)
            previous = snap
        assert parent.value("dist_calcs") == worker.value("dist_calcs")


class TestMergeInvariants:
    """Regression tests: merge must keep peak >= value for cumulative
    counters, and mid-run resets must never produce negative deltas."""

    def test_merge_enforces_peak_at_least_value(self):
        # A hand-built (or malformed) snapshot whose peak lags its
        # value must not leave the merged counter with peak < value.
        parent = CounterRegistry()
        parent.add("dist_calcs", 5)
        snap = CounterSnapshot(
            values={"dist_calcs": 10}, peaks={"dist_calcs": 2}
        )
        parent.merge(snap)
        counter = parent.counter("dist_calcs")
        assert counter.value == 15
        assert counter.peak >= counter.value

    def test_repeated_merges_keep_peak_invariant(self):
        parent = CounterRegistry()
        contributor = CounterSnapshot(
            values={"pairs_reported": 7}, peaks={"pairs_reported": 7}
        )
        for __ in range(4):
            parent.merge(contributor)
        counter = parent.counter("pairs_reported")
        assert counter.value == 28
        assert counter.peak >= counter.value

    def test_merge_drops_negative_contributions(self):
        parent = CounterRegistry()
        parent.add("x", 5)
        parent.merge(CounterSnapshot(values={"x": -3}, peaks={"x": -1}))
        assert parent.value("x") == 5
        assert parent.peak("x") == 5

    def test_delta_after_midrun_reset_is_not_negative(self):
        worker = CounterRegistry()
        worker.add("dist_calcs", 100)
        earlier = worker.full_snapshot()
        worker.reset()
        worker.add("dist_calcs", 30)
        delta = worker.full_snapshot().delta_from(earlier)
        # Work since the reset, never the raw (negative) difference.
        assert delta.value("dist_calcs") == 30
        assert all(v > 0 for v in delta.values.values())

    def test_merging_deltas_across_reset_never_subtracts(self):
        worker = CounterRegistry()
        parent = CounterRegistry()
        worker.add("x", 50)
        first = worker.full_snapshot()
        parent.merge(first)
        worker.reset()
        worker.add("x", 20)
        parent.merge(worker.full_snapshot().delta_from(first))
        assert parent.value("x") == 70
