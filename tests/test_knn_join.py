"""Tests for the k-nearest-neighbour join (semi-join generalization)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.knn_join import KNearestNeighborJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.point import Point
from repro.util.counters import CounterRegistry

from tests.conftest import make_points, make_tree


def brute_knn(points_a, points_b, k):
    """oid -> sorted list of the k smallest distances to B."""
    result = {}
    for i, a in enumerate(points_a):
        distances = sorted(EUCLIDEAN.distance(a, b) for b in points_b)
        result[i] = distances[:k]
    return result


STRATEGIES = [
    ("outside", "none"),
    ("inside2", "none"),
    ("inside2", "local"),
    ("inside2", "global_nodes"),
    ("inside2", "global_all"),
]


@pytest.fixture(scope="module")
def knn_setup():
    points_a = make_points(40, seed=161)
    points_b = make_points(60, seed=162)
    return points_a, points_b, make_tree(points_a), make_tree(points_b)


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    @pytest.mark.parametrize("filter_strategy,dmax_strategy", STRATEGIES)
    def test_matches_brute_force(
        self, knn_setup, k, filter_strategy, dmax_strategy
    ):
        points_a, points_b, tree_a, tree_b = knn_setup
        join = KNearestNeighborJoin(
            tree_a, tree_b, k=k,
            filter_strategy=filter_strategy,
            dmax_strategy=dmax_strategy,
            counters=CounterRegistry(),
        )
        got = list(join)
        truth = brute_knn(points_a, points_b, k)
        assert len(got) == k * len(points_a)
        per_object = {}
        for result in got:
            per_object.setdefault(result.oid1, []).append(result.distance)
        for oid, distances in per_object.items():
            assert sorted(distances) == pytest.approx(truth[oid])

    def test_k1_equals_semi_join(self, knn_setup):
        __, ___, tree_a, tree_b = knn_setup
        knn = [
            r.distance
            for r in KNearestNeighborJoin(
                tree_a, tree_b, k=1, counters=CounterRegistry()
            )
        ]
        semi = [
            r.distance
            for r in IncrementalDistanceSemiJoin(
                tree_a, tree_b, counters=CounterRegistry()
            )
        ]
        assert knn == pytest.approx(semi)

    def test_global_distance_order(self, knn_setup):
        __, ___, tree_a, tree_b = knn_setup
        ds = [
            r.distance
            for r in KNearestNeighborJoin(
                tree_a, tree_b, k=3, counters=CounterRegistry()
            )
        ]
        assert ds == sorted(ds)

    def test_k_exceeds_inner_relation(self):
        points_a = make_points(10, seed=163)
        points_b = make_points(4, seed=164)
        join = KNearestNeighborJoin(
            make_tree(points_a, max_entries=4),
            make_tree(points_b, max_entries=4),
            k=10,
            counters=CounterRegistry(),
        )
        got = list(join)
        # Only |B| partners exist per outer object.
        assert len(got) == len(points_a) * len(points_b)

    def test_k_validation(self, knn_setup):
        __, ___, tree_a, tree_b = knn_setup
        with pytest.raises(ValueError):
            KNearestNeighborJoin(tree_a, tree_b, k=0)

    def test_max_pairs_with_estimation(self, knn_setup):
        points_a, points_b, tree_a, tree_b = knn_setup
        join = KNearestNeighborJoin(
            tree_a, tree_b, k=2, max_pairs=15,
            counters=CounterRegistry(),
        )
        got = list(join)
        assert len(got) == 15
        # The 15 globally closest among each object's 2 NN distances.
        truth = sorted(
            d for ds in brute_knn(points_a, points_b, 2).values()
            for d in ds
        )[:15]
        assert [r.distance for r in got] == pytest.approx(truth)

    def test_pipelined(self, knn_setup):
        points_a, __, tree_a, tree_b = knn_setup
        join = KNearestNeighborJoin(
            tree_a, tree_b, k=2, counters=CounterRegistry()
        )
        first = next(join)
        rest = list(join)
        assert 1 + len(rest) == 2 * len(points_a)
        assert all(first.distance <= r.distance + 1e-12 for r in rest)

    def test_dmax_pruning_active(self, knn_setup):
        __, ___, tree_a, tree_b = knn_setup
        counters = CounterRegistry()
        list(KNearestNeighborJoin(
            tree_a, tree_b, k=2,
            filter_strategy="inside2", dmax_strategy="global_all",
            counters=counters,
        ))
        assert counters.value("pruned_dmax") > 0


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=20,
    ),
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=20,
    ),
    st.integers(1, 4),
    st.sampled_from(STRATEGIES),
)
def test_property_knn_join(raw_a, raw_b, k, strategy):
    """Property: for arbitrary inputs, every strategy yields exactly
    each outer object's k nearest inner distances, globally sorted."""
    filter_strategy, dmax_strategy = strategy
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    join = KNearestNeighborJoin(
        make_tree(points_a, max_entries=4),
        make_tree(points_b, max_entries=4),
        k=k,
        filter_strategy=filter_strategy,
        dmax_strategy=dmax_strategy,
        counters=CounterRegistry(),
    )
    got = list(join)
    truth = brute_knn(points_a, points_b, k)
    expected_total = sum(len(v) for v in truth.values())
    assert len(got) == expected_total
    per_object = {}
    for result in got:
        per_object.setdefault(result.oid1, []).append(result.distance)
    for oid, distances in per_object.items():
        assert sorted(distances) == pytest.approx(truth[oid])
    ds = [r.distance for r in got]
    assert ds == sorted(ds)
