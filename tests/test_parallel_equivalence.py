"""Property test: the parallel join is equivalent to the sequential one.

For random datasets (integer coordinates, so distance ties are common
and the tie-handling actually gets exercised) the parallel join with
1, 2 and 4 workers must emit exactly the same distance-sorted,
tie-stable pair sequence as :class:`IncrementalDistanceJoin` — both in
full and as a ``stop after K`` prefix.

The reference order is the *canonical* one, ``(distance, oid1, oid2)``:
the parallel engine emits it directly; the sequential join's
equal-distance runs are sorted into it before comparison (the two
differ only in tie permutation, never in content).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.geometry.point import Point
from repro.parallel import ParallelDistanceJoin, ParallelDistanceSemiJoin
from repro.rtree.bulk import bulk_load_str

WORKER_COUNTS = (1, 2, 4)

coordinates = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=30),
)

point_lists = st.lists(coordinates, min_size=1, max_size=40).map(
    lambda coords: [Point((float(x), float(y))) for x, y in coords]
)


def canonical(results):
    """Sort equal-distance runs of an ordered result list by
    (oid1, oid2), producing the canonical total order."""
    out = []
    group = []
    last = None
    for r in results:
        if last is not None and r.distance != last:
            group.sort(key=lambda g: (g.oid1, g.oid2))
            out.extend(group)
            group = []
        group.append(r)
        last = r.distance
    group.sort(key=lambda g: (g.oid1, g.oid2))
    out.extend(group)
    return [(r.distance, r.oid1, r.oid2) for r in out]


@settings(max_examples=12, deadline=None)
@given(points_a=point_lists, points_b=point_lists, data=st.data())
def test_parallel_join_equals_sequential(points_a, points_b, data):
    tree_a = bulk_load_str(points_a)
    tree_b = bulk_load_str(points_b)
    reference = canonical(IncrementalDistanceJoin(tree_a, tree_b))
    k = data.draw(
        st.integers(min_value=1, max_value=max(1, len(reference))),
        label="stop_after_k",
    )
    for workers in WORKER_COUNTS:
        full = ParallelDistanceJoin(
            tree_a, tree_b, workers=workers, backend="thread",
            partitions=workers, batch_size=7,
        )
        assert [
            (r.distance, r.oid1, r.oid2) for r in full
        ] == reference, f"workers={workers}"
        prefix = ParallelDistanceJoin(
            tree_a, tree_b, workers=workers, backend="thread",
            partitions=workers, batch_size=7, max_pairs=k,
        )
        assert [
            (r.distance, r.oid1, r.oid2) for r in prefix
        ] == reference[:k], f"workers={workers}, k={k}"


@settings(max_examples=10, deadline=None)
@given(points_a=point_lists, points_b=point_lists)
def test_parallel_semi_join_equals_sequential(points_a, points_b):
    tree_a = bulk_load_str(points_a)
    tree_b = bulk_load_str(points_b)
    reference = {
        r.oid1: r.distance
        for r in IncrementalDistanceSemiJoin(tree_a, tree_b)
    }
    for workers in WORKER_COUNTS:
        join = ParallelDistanceSemiJoin(
            tree_a, tree_b, workers=workers, backend="thread",
            partitions=workers, batch_size=5,
        )
        seen = {}
        previous = -1.0
        for result in join:
            assert result.distance >= previous
            previous = result.distance
            assert result.oid1 not in seen
            seen[result.oid1] = result.distance
        assert seen == reference, f"workers={workers}"
