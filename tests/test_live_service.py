"""The standing-subscription path through the service layers.

Bottom-up: :class:`~repro.service.live.LiveSource` as a unit, the
scheduler paging a subscription through live quanta, and the full
HTTP lifecycle over a real socket -- ``WATCH`` admission, delta
paging, ``POST /update`` fan-out, eviction/resume of a spooled
subscription, and the ``live_*`` counters on ``/metrics``.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import CursorError, ServiceError
from repro.geometry.point import Point
from repro.live import ADD, StandingJoin
from repro.query.executor import Database
from repro.service import JoinService, LiveSource, ServiceClient
from repro.service.live import (
    LIVE_SOURCE_FORMAT,
    LIVE_SOURCE_VERSION,
)
from repro.service.scheduler import JoinScheduler
from repro.util.counters import CounterRegistry
from tests.conftest import make_points

WATCH_SQL = (
    "WATCH SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "ORDER BY d STOP AFTER 6 NOTIFY"
)
PULL_SQL = (
    "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "ORDER BY d STOP AFTER 6"
)


def build_db():
    db = Database(counters=CounterRegistry())
    db.create_relation("a", make_points(60, seed=11))
    db.create_relation("b", make_points(70, seed=12))
    return db


def apply_deltas(held, rows):
    """Replay JSON delta rows into a subscriber's result copy."""
    for row in rows:
        key = (row["oid1"], row["oid2"])
        if row["op"] == "+":
            assert key not in held
            held[key] = row["d"]
        else:
            del held[key]
    return held


def recompute(db):
    return {
        (r.oid1, r.oid2): r.d
        for r in db.physical_plan(PULL_SQL).rows()
    }


class TestLiveSource:
    def test_source_shape(self):
        db = build_db()
        source = LiveSource(db, WATCH_SQL)
        assert source.strategy == "live"
        assert source.plan is None
        assert source.query.relation1 == "a"
        assert source.query.relation2 == "b"
        standing = source.open()
        assert isinstance(standing, StandingJoin)
        assert source.open() is standing  # registered once
        assert source.pending() == 6
        assert len(source.poll(2)) == 2
        assert source.pending() == 4

    def test_notify_routes_by_side(self):
        db = build_db()
        source = LiveSource(db, WATCH_SQL)
        source.poll(None)
        point = Point((1.0, 2.0))
        db.relation("b").insert(obj=point, oid=9000)
        deltas = source.notify_insert(9000, point, side=2)
        assert all(d.op in "+-" for d in deltas)
        db.relation("b").delete(9000, db.relation("b")._rect_of(point))
        source.notify_delete(9000, side=2)
        assert source.standing.updates == 2

    def test_save_load_round_trip(self):
        db = build_db()
        source = LiveSource(db, WATCH_SQL)
        source.open()
        source.poll(3)
        state = source.save()
        assert state["format"] == LIVE_SOURCE_FORMAT
        assert state["version"] == LIVE_SOURCE_VERSION
        remaining = [d.key for d in source.poll(None)]
        source.release()
        assert source._standing is None
        clone = LiveSource(db, WATCH_SQL)
        clone.load(state)
        assert clone.pending() == 3
        assert [d.key for d in clone.poll(None)] == remaining

    def test_load_rejects_bad_envelopes(self):
        db = build_db()
        source = LiveSource(db, WATCH_SQL)
        with pytest.raises(CursorError, match="not a live"):
            source.load({"format": "repro-service-session"})
        state = LiveSource(db, WATCH_SQL).save()
        with pytest.raises(CursorError, match="version"):
            source.load(dict(state, version=99))

    def test_load_rejects_mutated_trees(self):
        db = build_db()
        source = LiveSource(db, WATCH_SQL)
        state = source.save()
        db.relation("a").insert(obj=Point((5.0, 5.0)), oid=9100)
        with pytest.raises(CursorError, match="does not match"):
            LiveSource(db, WATCH_SQL).load(state)


class TestSchedulerLiveQuanta:
    def test_subscription_pages_and_never_finishes(self):
        db = build_db()
        scheduler = JoinScheduler(
            quantum_pairs=4, counters=CounterRegistry()
        )
        session = scheduler.admit(LiveSource(db, WATCH_SQL))
        session.source.open()
        rows, done = scheduler.fetch(session.id, k=4)
        assert len(rows) == 4 and not done
        assert all(d.op == ADD for d in rows)
        rows, done = scheduler.fetch(session.id, k=4)
        assert len(rows) == 2 and not done  # outbox drained
        assert not session.done
        # No pending repairs: an empty fetch, still not done.
        session.demand = 0
        rows, done = scheduler.fetch(session.id, k=4)
        assert rows == [] and not done
        assert session.quanta >= 3

    def test_update_between_quanta_pages_repairs(self):
        db = build_db()
        scheduler = JoinScheduler(
            quantum_pairs=16, counters=CounterRegistry()
        )
        session = scheduler.admit(LiveSource(db, WATCH_SQL))
        session.source.open()
        scheduler.fetch(session.id, k=16)
        session.demand = 0
        dup = make_points(60, seed=11)[0]  # duplicates an "a" point
        db.relation("b").insert(obj=dup, oid=9000)
        emitted = session.source.notify_insert(9000, dup, side=2)
        assert len(emitted) == 2  # one ADD (d=0) + one REMOVE
        rows, done = scheduler.fetch(session.id, k=16)
        assert [r.op for r in rows] == ["-", "+"]
        assert not done


@pytest.fixture
def served(tmp_path):
    """A JoinService over a live-enabled database; yields
    (service, client, db)."""
    db = build_db()
    service = JoinService(
        db,
        spool_dir=str(tmp_path / "spool"),
        idle_evict_seconds=1e9,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start(port=0))
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield service, ServiceClient(port=service.port, timeout=30), db
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


class TestHttpSubscription:
    def test_watch_bootstrap_and_update_lifecycle(self, served):
        """The acceptance path: WATCH over HTTP, scripted updates via
        POST /update, delta pages keeping the client's copy equal to
        a full recompute."""
        __, client, db = served
        sid = client.watch(WATCH_SQL)
        boot = client.deltas(sid, k=16)
        assert len(boot) == 6 and all(r["op"] == "+" for r in boot)
        held = apply_deltas({}, boot)
        assert held == recompute(db)

        # An empty page is fine and never done.
        page = client.next(sid, k=8)
        assert page["rows"] == [] and page["done"] is False

        pts_b = make_points(70, seed=12)
        for step in range(9):
            # Perturbed copies of b-points into "a": distinct small
            # distances, so every insert cracks the top-6 and no
            # distance ties make the pull-join oracle ambiguous.
            pt = [c + 1e-4 * (step + 1) for c in pts_b[step].coords]
            receipt = client.insert("a", 9100 + step, pt)
            assert receipt["watchers"] == 1
            if step < 6:
                # Early steps must crack the top-6 (one retraction,
                # one admission); later tiny pairs may rank behind
                # the six already-held tiny ones.
                assert receipt["deltas"] == 2
            if step % 3 == 2:
                client.remove("a", 9100 + step - 2, [
                    c + 1e-4 * (step - 1) for c in pts_b[step - 2].coords
                ])
            apply_deltas(held, client.deltas(sid, k=32))
            assert held == recompute(db)
        client.delete(sid)

    def test_update_without_watchers(self, served):
        __, client, db = served
        receipt = client.insert("a", 9500, [50.0, 50.0])
        assert receipt == {
            "relation": "a", "op": "insert", "oid": 9500,
            "watchers": 0, "deltas": 0,
        }
        assert len(db.relation("a")) == 61

    def test_watch_session_shows_live_strategy(self, served):
        __, client, __ = served
        sid = client.watch(WATCH_SQL)
        status = client.status()
        record = next(
            s for s in status["sessions"] if s["session"] == sid
        )
        assert record["strategy"] == "live"
        assert record["done"] is False
        client.delete(sid)

    def test_metrics_expose_live_counters(self, served):
        __, client, __ = served
        sid = client.watch(WATCH_SQL)
        client.deltas(sid, k=16)
        client.insert("b", 9200, [10.0, 20.0])
        client.deltas(sid, k=16)
        text = client.metrics_text()
        assert "repro_live_repairs" in text
        client.delete(sid)

    def test_evicted_subscription_resumes_on_update(self, served):
        service, client, __ = served
        sid = client.watch(WATCH_SQL)
        client.deltas(sid, k=16)
        evicted = service.scheduler.evict_idle(0.0)
        assert sid in evicted
        assert service.scheduler.session(sid).evicted
        # The update must resume the spooled subscription *before*
        # mutating the tree (else the cursor fingerprint goes stale).
        receipt = client.insert("b", 9300, [30.0, 40.0])
        assert receipt["watchers"] == 1
        assert not service.scheduler.session(sid).evicted
        assert service.scheduler.counters.value("service_resumes") >= 1
        client.delete(sid)

    def test_invalid_watch_rolls_back_admission(self, served):
        service, client, __ = served
        before = service.scheduler.status()["session_count"]
        with pytest.raises(ServiceError, match="400"):
            client.watch(
                "WATCH SELECT * FROM a, missing, "
                "DISTANCE(a.geom, missing.geom) AS d "
                "ORDER BY d STOP AFTER 3"
            )
        assert service.scheduler.status()["session_count"] == before

    @pytest.mark.parametrize("body", [
        {"op": "insert", "oid": 1, "point": [1.0, 2.0]},
        {"relation": "missing", "op": "insert", "oid": 1,
         "point": [1.0, 2.0]},
        {"relation": "a", "op": "upsert", "oid": 1,
         "point": [1.0, 2.0]},
        {"relation": "a", "op": "insert", "oid": "one",
         "point": [1.0, 2.0]},
        {"relation": "a", "op": "insert", "oid": 1, "point": []},
        {"relation": "a", "op": "insert", "oid": 1,
         "point": ["x", "y"]},
    ])
    def test_bad_updates_rejected(self, served, body):
        __, client, __ = served
        with pytest.raises(ServiceError, match="400"):
            client._request("POST", "/update", body)

    def test_duplicate_watch_oid_insert_rejected(self, served):
        """A duplicate insert / missing delete is rejected *before*
        the tree mutates: no second entry lands, no watcher observes
        anything, and the subscription keeps repairing correctly."""
        __, client, db = served
        sid = client.watch(WATCH_SQL)
        held = apply_deltas({}, client.deltas(sid, k=16))
        client.insert("a", 9400, [1.0, 1.0])
        apply_deltas(held, client.deltas(sid, k=32))
        size = len(db.relation("a"))
        mutations = db.relation("a")._mutations
        with pytest.raises(ServiceError, match="409"):
            client.insert("a", 9400, [2.0, 2.0])
        with pytest.raises(ServiceError, match="404"):
            client.remove("a", 424242, [1.0, 1.0])
        # Point mismatch on a real oid: also a 404, tree untouched.
        with pytest.raises(ServiceError, match="404"):
            client.remove("a", 9400, [3.0, 3.0])
        assert len(db.relation("a")) == size
        assert db.relation("a")._mutations == mutations
        # The subscription stayed in sync: a later valid update still
        # repairs, and the repaired copy matches a full recompute.
        receipt = client.insert("a", 9401, [1.0, 1.5])
        assert receipt["watchers"] == 1
        assert "invalidated" not in receipt
        apply_deltas(held, client.deltas(sid, k=64))
        assert held == recompute(db)
        client.delete(sid)

    def test_rejected_updates_without_watchers(self, served):
        """The freshness checks hold with zero subscriptions too: a
        duplicate insert falls back to a tree scan and a no-op delete
        is a 404, not a silent 200."""
        __, client, db = served
        size = len(db.relation("a"))
        with pytest.raises(ServiceError, match="409"):
            client.insert("a", 0, [5.0, 5.0])  # oid 0 is seeded
        with pytest.raises(ServiceError, match="404"):
            client.remove("a", 424242, [1.0, 1.0])
        assert len(db.relation("a")) == size

    def test_desynced_watcher_invalidated_not_stale(self, served):
        """A watcher that cannot observe an applied mutation (its
        trees moved out of band) is removed, not left silently
        serving a stale result."""
        service, client, db = served
        sid = client.watch(WATCH_SQL)
        client.deltas(sid, k=16)
        # Out-of-band mutation the subscription never observes.
        db.relation("b").insert(
            obj=Point((77.0, 77.0)), oid=9700
        )
        receipt = client.insert("b", 9701, [60.0, 60.0])
        assert receipt["watchers"] == 1
        assert receipt["deltas"] == 0
        invalidated = receipt["invalidated"]
        assert [entry["session"] for entry in invalidated] == [sid]
        assert "outside the standing" in invalidated[0]["error"]
        with pytest.raises(ServiceError, match="unknown session"):
            service.scheduler.session(sid)
