"""Tests for the logical/physical plan pipeline: one shared plan tree
behind execute, EXPLAIN and EXPLAIN ANALYZE, the planner's strategy
rule, prefilter storage-config propagation, and quadtree relations."""

import random

import pytest

from repro.cli import main as cli_main
from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.point import Point
from repro.quadtree.prquadtree import PRQuadtree
from repro.query.executor import Database
from repro.query.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    build_logical_plan,
)
from repro.query.parser import parse
from repro.query.physical import (
    IndexScan,
    Limit,
    PairFilterPushdown,
    PrefilterMaterialize,
    RowProject,
    materialize_filtered,
)
from repro.rtree.bulk import bulk_load_str
from repro.util.counters import CounterRegistry

from tests.conftest import make_points


SQL = (
    "SELECT * FROM cities, rivers, "
    "DISTANCE(cities.geom, rivers.geom) AS d "
    "WHERE cities.pop > {threshold} ORDER BY d STOP AFTER {limit}"
)

PLAIN_SQL = (
    "SELECT * FROM cities, rivers, "
    "DISTANCE(cities.geom, rivers.geom) AS d "
    "ORDER BY d STOP AFTER {limit}"
)


def build_db(city_count=70, river_count=90):
    rng = random.Random(1400)
    cities = make_points(city_count, seed=141)
    populations = [rng.randint(1_000, 10_000_000) for __ in cities]
    rivers = make_points(river_count, seed=142)
    db = Database(counters=CounterRegistry())
    db.create_relation("cities", cities,
                       attributes={"pop": populations})
    db.create_relation("rivers", rivers)
    return db, cities, populations, rivers


class TestLogicalPlan:
    def test_shape_with_predicates_and_limit(self):
        query = parse(SQL.format(threshold=5_000_000, limit=3))
        plan = build_logical_plan(query)
        assert isinstance(plan.root, LogicalProject)
        limit = plan.root.child
        assert isinstance(limit, LogicalLimit)
        assert limit.count == 3
        join = limit.child
        assert isinstance(join, LogicalJoin)
        assert isinstance(join.left, LogicalFilter)
        assert join.left.child.relation == "cities"
        assert isinstance(join.right, LogicalScan)

    def test_shape_without_limit(self):
        query = parse(
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "ORDER BY d"
        )
        plan = build_logical_plan(query)
        assert isinstance(plan.root.child, LogicalJoin)

    def test_join_node_carries_bounds(self):
        query = parse(
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "WHERE d < 9 AND d >= 2 ORDER BY d"
        )
        join = build_logical_plan(query).join
        assert join.min_distance == 2.0
        assert join.max_distance == 9.0

    def test_pretty_renders_tree(self):
        query = parse(SQL.format(threshold=5_000_000, limit=3))
        text = build_logical_plan(query).pretty()
        assert "Scan(cities)" in text
        assert "Filter(" in text
        assert "Limit(3)" in text


class TestSharedPlanTree:
    """execute / EXPLAIN / EXPLAIN ANALYZE walk one physical plan."""

    def test_execute_streams_the_plan_rows(self):
        db, cities, populations, rivers = build_db()
        sql = SQL.format(threshold=5_000_000, limit=5)
        plan = db.physical_plan(parse(sql))
        assert list(db.execute(sql)) == list(
            db.physical_plan(parse(sql)).rows()
        )
        assert [type(node).__name__ for node in plan.root.walk()][:3] \
            == ["Limit", "RowProject", "RemapOids"]

    def test_explain_does_not_materialize(self):
        db, *__ = build_db()
        plan = db.physical_plan(
            parse(SQL.format(threshold=9_000_000, limit=2)),
            strategy="prefilter",
        )
        assert plan.explanation.strategy == "prefilter"
        side = plan.join_op.left
        assert isinstance(side, PrefilterMaterialize)
        assert side._resolved is None  # EXPLAIN never built the index

    def test_open_is_idempotent(self):
        db, *__ = build_db()
        plan = db.physical_plan(
            parse(SQL.format(threshold=5_000_000, limit=3))
        )
        assert plan.open_join() is plan.open_join()

    def test_explanation_tree_rendered(self):
        db, *__ = build_db()
        plan = db.explain(SQL.format(threshold=5_000_000, limit=3))
        assert plan.tree is not None
        assert "IndexScan(cities" in plan.tree
        assert "plan:" in plan.pretty()

    def test_pipeline_plan_uses_pushdown_nodes(self):
        db, *__ = build_db()
        plan = db.physical_plan(
            parse(SQL.format(threshold=5_000_000, limit=3)),
            strategy="pipeline",
        )
        assert isinstance(plan.join_op.left, PairFilterPushdown)
        assert isinstance(plan.join_op.right, IndexScan)

    def test_limit_only_above_project(self):
        db, *__ = build_db()
        bounded = db.physical_plan(
            parse(PLAIN_SQL.format(limit=4))
        )
        assert isinstance(bounded.root, Limit)
        unbounded = db.physical_plan(parse(
            "SELECT * FROM cities, rivers, "
            "DISTANCE(cities.geom, rivers.geom) AS d ORDER BY d"
        ))
        assert isinstance(unbounded.root, RowProject)

    def test_explain_analyze_reports_chosen_strategy(self):
        db, *__ = build_db()
        analyzed = db.explain_analyze(
            SQL.format(threshold=5_000_000, limit=3),
            strategy="prefilter",
        )
        assert analyzed.plan.strategy == "prefilter"
        assert analyzed.rows == 3

    def test_bad_strategy_rejected(self):
        db, *__ = build_db()
        with pytest.raises(ValueError):
            db.execute(SQL.format(threshold=5, limit=1),
                       strategy="psychic")
        with pytest.raises(ValueError):
            db.explain(SQL.format(threshold=5, limit=1),
                       strategy="psychic")


class TestPrefilterStorageConfig:
    """The temporary prefilter index inherits the source tree's
    storage configuration instead of reverting to defaults."""

    def test_materialize_filtered_propagates_config(self):
        points = make_points(64, seed=77)
        tree = bulk_load_str(
            points, max_entries=4, page_size=512, buffer_pages=7,
        )
        sub, mapping = materialize_filtered(
            tree, lambda oid: oid % 2 == 0
        )
        assert sub.max_entries == 4
        assert sub.store.page_size == 512
        assert sub.pool.capacity == 7
        assert mapping == [oid for oid in range(64) if oid % 2 == 0]
        assert len(sub) == 32

    def test_prefilter_query_uses_source_config(self):
        rng = random.Random(900)
        cities = make_points(60, seed=91)
        populations = [rng.randint(0, 100) for __ in cities]
        db = Database()
        db.create_relation(
            "cities", cities, attributes={"pop": populations},
            max_entries=4, page_size=512, buffer_pages=7,
        )
        db.create_relation("rivers", make_points(60, seed=92))
        plan = db.physical_plan(
            parse(SQL.format(threshold=90, limit=2)),
            strategy="prefilter",
        )
        plan.open_join()
        resolved = plan.join_op.left.resolve()
        assert resolved.tree.max_entries == 4
        assert resolved.tree.store.page_size == 512
        assert resolved.tree.pool.capacity == 7


class TestQuadtreeRelations:
    def test_quadtree_joins_rtree_relation(self):
        points_q = make_points(45, seed=201)
        points_r = make_points(55, seed=202)
        db = Database()
        db.create_relation("quads", points_q, index="quadtree")
        db.create_relation("rects", points_r)
        assert isinstance(db.relation("quads"), PRQuadtree)
        rows = list(db.execute(
            "SELECT * FROM quads, rects, "
            "DISTANCE(quads.geom, rects.geom) AS d "
            "ORDER BY d STOP AFTER 10"
        ))
        brute = sorted(
            (EUCLIDEAN.distance(a, b), i, j)
            for i, a in enumerate(points_q)
            for j, b in enumerate(points_r)
        )[:10]
        assert [
            (pytest.approx(r.d), r.oid1, r.oid2) for r in rows
        ] == [(pytest.approx(d), i, j) for d, i, j in brute]

    def test_prebuilt_quadtree_accepted(self):
        points = make_points(20, seed=203)
        from repro.geometry.rectangle import Rect

        tree = PRQuadtree(Rect((-1.0, -1.0), (101.0, 101.0)))
        for point in points:
            tree.insert(point)
        db = Database()
        assert db.create_relation("pts", tree) is tree

    def test_quadtree_rejects_non_points(self):
        from repro.errors import QueryError
        from repro.geometry.rectangle import Rect

        db = Database()
        with pytest.raises(QueryError, match="Point data"):
            db.create_relation(
                "boxes", [Rect((0, 0), (1, 1))], index="quadtree"
            )

    def test_unknown_index_kind_rejected(self):
        db = Database()
        with pytest.raises(ValueError, match="index must be"):
            db.create_relation("pts", [Point((0.0, 0.0))],
                               index="btree")


class TestCliStrategy:
    @pytest.fixture
    def csv_files(self, tmp_path, capsys):
        a = str(tmp_path / "a.csv")
        b = str(tmp_path / "b.csv")
        for path, seed in ((a, 1), (b, 2)):
            cli_main(["generate", "uniform", "--count", "40",
                      "--seed", str(seed), "--out", path])
        capsys.readouterr()
        return a, b

    def test_explain_strategy_flag(self, capsys, csv_files):
        a, b = csv_files
        code = cli_main([
            "explain",
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "ORDER BY d STOP AFTER 3",
            "--relation", f"a={a}", "--relation", f"b={b}",
            "--strategy", "prefilter",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy: prefilter" in out

    def test_query_strategy_flag(self, capsys, csv_files):
        a, b = csv_files
        sql = (
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "ORDER BY d STOP AFTER 5"
        )
        outputs = []
        for strategy in ("pipeline", "prefilter"):
            code = cli_main([
                "query", sql,
                "--relation", f"a={a}", "--relation", f"b={b}",
                "--strategy", strategy,
            ])
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
