"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.point import Point
from repro.rtree.rstar import RStarTree
from repro.util.counters import CounterRegistry


def make_points(count: int, seed: int, extent: float = 100.0):
    """Deterministic uniform 2-d points."""
    rng = random.Random(seed)
    return [
        Point((rng.uniform(0, extent), rng.uniform(0, extent)))
        for __ in range(count)
    ]


def make_tree(points, max_entries: int = 8, counters=None) -> RStarTree:
    """An R*-tree over ``points`` built by repeated insertion."""
    tree = RStarTree(dim=2, max_entries=max_entries, counters=counters)
    for point in points:
        tree.insert(obj=point)
    return tree


def brute_force_pairs(points_a, points_b, metric=EUCLIDEAN):
    """All (distance, i, j) triples sorted by distance."""
    return sorted(
        (metric.distance(a, b), i, j)
        for i, a in enumerate(points_a)
        for j, b in enumerate(points_b)
    )


def brute_force_nn(points_a, points_b, metric=EUCLIDEAN):
    """oid -> (nn distance, nn index) for each point of A against B."""
    result = {}
    for i, a in enumerate(points_a):
        best = min(
            (metric.distance(a, b), j) for j, b in enumerate(points_b)
        )
        result[i] = best
    return result


@pytest.fixture
def counters() -> CounterRegistry:
    return CounterRegistry()


@pytest.fixture(scope="module")
def points_small_a():
    return make_points(60, seed=11)


@pytest.fixture(scope="module")
def points_small_b():
    return make_points(80, seed=22)


@pytest.fixture(scope="module")
def small_trees(points_small_a, points_small_b):
    """A pair of small trees plus their brute-force ground truth."""
    tree_a = make_tree(points_small_a)
    tree_b = make_tree(points_small_b)
    truth = brute_force_pairs(points_small_a, points_small_b)
    return tree_a, tree_b, truth


@pytest.fixture(scope="module")
def medium_trees():
    """A pair of medium trees with clustered + uniform mix."""
    rng = random.Random(99)
    points_a = make_points(150, seed=5)
    points_b = []
    for __ in range(200):
        if rng.random() < 0.5:
            cx, cy = rng.choice([(20, 20), (70, 60), (40, 90)])
            points_b.append(
                Point((rng.gauss(cx, 4.0), rng.gauss(cy, 4.0)))
            )
        else:
            points_b.append(
                Point((rng.uniform(0, 100), rng.uniform(0, 100)))
            )
    tree_a = make_tree(points_a)
    tree_b = make_tree(points_b)
    truth = brute_force_pairs(points_a, points_b)
    return tree_a, tree_b, points_a, points_b, truth
