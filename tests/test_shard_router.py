"""Tests for the shard router operator (routing, pruning, caching,
suspend/resume)."""

import pickle

import pytest

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.errors import CursorError, JoinError
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load_str
from repro.shard import (
    ShardRouterJoin,
    ShardRouterSemiJoin,
    clear_caches,
)
from repro.util.counters import CounterRegistry


def cluster_points(n, clusters=4, spread=3.0, gap=100.0):
    """Well-separated clusters: a Fig 6-style workload where a STOP
    AFTER query only ever needs the co-located shard pairs."""
    points = []
    for i in range(n):
        c = i % clusters
        cx = gap * (c % 2)
        cy = gap * (c // 2)
        points.append(Point((
            cx + (i * 7 % 13) * spread / 13.0,
            cy + (i * 11 % 17) * spread / 17.0,
        )))
    return points


def canonical(results):
    out, group, last = [], [], None
    for r in results:
        if last is not None and r.distance != last:
            group.sort(key=lambda g: (g.oid1, g.oid2))
            out.extend(group)
            group = []
        group.append(r)
        last = r.distance
    group.sort(key=lambda g: (g.oid1, g.oid2))
    out.extend(group)
    return [(r.distance, r.oid1, r.oid2) for r in out]


def rows(join):
    return [(r.distance, r.oid1, r.oid2) for r in join]


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def trees():
    return (
        bulk_load_str(cluster_points(80)),
        bulk_load_str(cluster_points(90)),
    )


class TestEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_full_join(self, trees, shards):
        tree_a, tree_b = trees
        reference = canonical(IncrementalDistanceJoin(tree_a, tree_b))
        router = ShardRouterJoin(tree_a, tree_b, shards=shards,
                                 result_cache=False)
        assert rows(router) == reference

    @pytest.mark.parametrize("shards", [2, 4])
    def test_stop_after(self, trees, shards):
        tree_a, tree_b = trees
        reference = canonical(IncrementalDistanceJoin(tree_a, tree_b))
        router = ShardRouterJoin(tree_a, tree_b, shards=shards,
                                 max_pairs=30, result_cache=False)
        assert rows(router) == reference[:30]

    def test_distance_range(self, trees):
        tree_a, tree_b = trees
        reference = canonical(IncrementalDistanceJoin(
            tree_a, tree_b, min_distance=2.0, max_distance=50.0,
        ))
        router = ShardRouterJoin(
            tree_a, tree_b, shards=3, min_distance=2.0,
            max_distance=50.0, result_cache=False,
        )
        assert rows(router) == reference

    def test_semi_join(self, trees):
        tree_a, tree_b = trees
        reference = {
            r.oid1: r.distance
            for r in IncrementalDistanceSemiJoin(tree_a, tree_b)
        }
        router = ShardRouterSemiJoin(tree_a, tree_b, shards=3,
                                     result_cache=False)
        seen, previous = {}, -1.0
        for result in router:
            assert result.distance >= previous
            previous = result.distance
            assert result.oid1 not in seen
            seen[result.oid1] = result.distance
        assert seen == reference

    def test_dimension_mismatch(self, trees):
        tree_a, __ = trees
        tree_c = bulk_load_str([Point((1.0, 2.0, 3.0))])
        with pytest.raises(JoinError):
            ShardRouterJoin(tree_a, tree_c)


class TestRouting:
    def test_plan_is_bound_ordered(self, trees):
        router = ShardRouterJoin(*trees, shards=4, result_cache=False)
        bounds = [pair.bound for pair in router.pairs]
        assert bounds == sorted(bounds)
        assert router.pairs_total == \
            len(router.catalog1) * len(router.catalog2)

    def test_stop_after_prunes(self, trees):
        counters = CounterRegistry()
        router = ShardRouterJoin(
            *trees, shards=4, max_pairs=20, counters=counters,
            result_cache=False,
        )
        list(router)
        snap = counters.snapshot()
        assert snap["shard_pairs_routed"] < snap["shard_pairs_total"]
        assert snap["shard_pairs_pruned"] > 0
        assert snap["shard_pairs_routed"] + snap["shard_pairs_pruned"] \
            == snap["shard_pairs_total"]

    def test_full_consumption_routes_everything_needed(self, trees):
        counters = CounterRegistry()
        router = ShardRouterJoin(*trees, shards=3, counters=counters,
                                 result_cache=False)
        list(router)
        snap = counters.snapshot()
        assert snap["shard_pairs_routed"] == \
            snap["shard_pairs_total"] - snap["shard_pairs_range_pruned"]

    def test_range_pruning(self, trees):
        counters = CounterRegistry()
        router = ShardRouterJoin(
            *trees, shards=4, max_distance=10.0, counters=counters,
            result_cache=False,
        )
        assert router.range_pruned > 0
        list(router)
        snap = counters.snapshot()
        assert snap["shard_pairs_range_pruned"] == router.range_pruned
        # Range-pruned pairs are never routed.
        assert snap["shard_pairs_routed"] <= \
            snap["shard_pairs_total"] - snap["shard_pairs_range_pruned"]

    def test_counters_deterministic(self, trees):
        snaps = []
        for __ in range(2):
            clear_caches()
            counters = CounterRegistry()
            router = ShardRouterJoin(
                *trees, shards=4, max_pairs=20, counters=counters,
                catalog_cache=False, result_cache=False,
            )
            list(router)
            snaps.append({
                k: v for k, v in counters.snapshot().items()
                if k.startswith("shard_")
            })
        assert snaps[0] == snaps[1]

    def test_route_plan_summary(self, trees):
        router = ShardRouterJoin(*trees, shards=2, result_cache=False)
        plan = router.route_plan()
        assert plan["pairs_total"] == 4
        assert plan["pairs_planned"] == len(plan["order"])

    def test_plan_cache_hit(self, trees):
        counters = CounterRegistry()
        ShardRouterJoin(*trees, shards=3, counters=counters,
                        result_cache=False)
        ShardRouterJoin(*trees, shards=3, counters=counters,
                        result_cache=False)
        assert counters.snapshot()["shard_plan_cache_hits"] == 1


class TestResultCache:
    def test_replay_is_identical(self, trees):
        counters = CounterRegistry()
        first = ShardRouterJoin(*trees, shards=3, max_pairs=25,
                                counters=counters)
        expected = rows(first)
        second = ShardRouterJoin(*trees, shards=3, max_pairs=25,
                                 counters=counters)
        assert rows(second) == expected
        snap = counters.snapshot()
        assert snap["shard_cache_hits"] == 1
        assert snap["shard_cache_misses"] == 1

    def test_replay_routes_nothing(self, trees):
        rows_before = rows(ShardRouterJoin(*trees, shards=3,
                                           max_pairs=10))
        counters = CounterRegistry()
        replay = ShardRouterJoin(*trees, shards=3, max_pairs=10,
                                 counters=counters)
        assert rows(replay) == rows_before
        assert counters.snapshot().get("shard_pairs_routed", 0) == 0

    def test_incomplete_run_is_not_cached(self, trees):
        counters = CounterRegistry()
        router = ShardRouterJoin(*trees, shards=3, counters=counters)
        next(iter(router))
        router.close()
        again = ShardRouterJoin(*trees, shards=3, counters=counters)
        next(iter(again))
        again.close()
        assert counters.snapshot().get("shard_cache_hits", 0) == 0

    def test_filtered_queries_bypass_the_cache(self, trees):
        counters = CounterRegistry()
        router = ShardRouterJoin(
            *trees, shards=2, max_pairs=5, counters=counters,
            pair_filter=lambda pair: True,
        )
        list(router)
        snap = counters.snapshot()
        assert snap.get("shard_cache_misses", 0) == 0

    def test_save_on_replay_raises(self, trees):
        list(ShardRouterJoin(*trees, shards=2, max_pairs=5))
        replay = ShardRouterJoin(*trees, shards=2, max_pairs=5)
        with pytest.raises(CursorError):
            replay.save()


class TestSuspendResume:
    def test_mid_stream_pickle_round_trip(self, trees):
        tree_a, tree_b = trees
        reference = canonical(IncrementalDistanceJoin(tree_a, tree_b))
        router = ShardRouterJoin(tree_a, tree_b, shards=3,
                                 max_pairs=60, result_cache=False)
        taken = [next(router) for __ in range(23)]
        blob = pickle.dumps(router.save())
        resumed = ShardRouterJoin.load(
            pickle.loads(blob), tree_a, tree_b,
        )
        got = [(r.distance, r.oid1, r.oid2) for r in taken] + \
            rows(resumed)
        assert got == reference[:60]

    def test_save_before_start(self, trees):
        tree_a, tree_b = trees
        router = ShardRouterJoin(tree_a, tree_b, shards=2,
                                 max_pairs=8, result_cache=False)
        state = pickle.loads(pickle.dumps(router.save()))
        resumed = ShardRouterJoin.load(state, tree_a, tree_b)
        assert rows(resumed) == rows(
            ShardRouterJoin(tree_a, tree_b, shards=2, max_pairs=8,
                            result_cache=False)
        )

    def test_semi_join_resume(self, trees):
        tree_a, tree_b = trees
        reference = rows(ShardRouterSemiJoin(
            tree_a, tree_b, shards=3, result_cache=False))
        router = ShardRouterSemiJoin(tree_a, tree_b, shards=3,
                                     result_cache=False)
        taken = [next(router) for __ in range(11)]
        resumed = ShardRouterSemiJoin.load(
            pickle.loads(pickle.dumps(router.save())), tree_a, tree_b,
        )
        assert [(r.distance, r.oid1, r.oid2) for r in taken] + \
            rows(resumed) == reference

    def test_wrong_tree_rejected(self, trees):
        tree_a, tree_b = trees
        router = ShardRouterJoin(tree_a, tree_b, shards=2,
                                 result_cache=False)
        state = router.save()
        other = bulk_load_str(cluster_points(17))
        with pytest.raises(CursorError):
            ShardRouterJoin.load(state, tree_a, other)

    def test_wrong_class_rejected(self, trees):
        router = ShardRouterJoin(*trees, shards=2, result_cache=False)
        with pytest.raises(CursorError):
            ShardRouterSemiJoin.load(router.save(), *trees)

    def test_unpicklable_filter_must_be_resupplied(self, trees):
        tree_a, tree_b = trees
        probe = (lambda keep: lambda pair: keep(pair))(
            lambda pair: True
        )  # a closure pickle cannot serialize
        router = ShardRouterJoin(
            tree_a, tree_b, shards=2, max_pairs=40,
            pair_filter=probe, result_cache=False,
        )
        next(router)
        state = router.save()
        assert state["has_pair_filter"]
        with pytest.raises(CursorError):
            ShardRouterJoin.load(state, tree_a, tree_b)
        resumed = ShardRouterJoin.load(
            state, tree_a, tree_b, pair_filter=probe,
        )
        next(resumed)

    def test_resume_counters_primed(self, trees):
        tree_a, tree_b = trees
        counters = CounterRegistry()
        router = ShardRouterJoin(tree_a, tree_b, shards=3,
                                 max_pairs=30, counters=counters,
                                 result_cache=False)
        for __ in range(10):
            next(router)
        routed = counters.snapshot()["shard_pairs_routed"]
        resumed = ShardRouterJoin.load(router.save(), tree_a, tree_b)
        snap = resumed.counters.snapshot()
        assert snap["shard_pairs_routed"] == routed
        list(resumed)  # and it still finishes


class TestProgress:
    def test_signals_feed_the_estimator(self, trees):
        from repro.util.telemetry import ProgressEstimator

        router = ShardRouterJoin(*trees, shards=3, max_pairs=40,
                                 result_cache=False)
        estimator = ProgressEstimator()
        last = 0.0
        for i, __ in enumerate(router):
            if i % 10 == 0:
                report = estimator.report(router.progress_signals())
                assert report.lower_bound >= last
                last = report.lower_bound
        signals = router.progress_signals()
        signals["done"] = True
        assert estimator.report(signals).lower_bound == 1.0

    def test_signals_shape(self, trees):
        router = ShardRouterJoin(*trees, shards=2, max_pairs=5,
                                 result_cache=False)
        signals = router.progress_signals()
        assert signals["operator"] == "ShardRouterJoin"
        assert signals["shard_pairs_total"] == 4
        assert signals["head_distance"] is not None
