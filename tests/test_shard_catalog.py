"""Tests for the persistent shard catalog and the stats cache."""

import json

import pytest

from repro.errors import StorageError
from repro.geometry.point import Point
from repro.query.costmodel import collect_stats, stats_fingerprint
from repro.rtree.bulk import bulk_load_str
from repro.rtree.rstar import RStarTree
from repro.shard.catalog import ShardCatalog, catalog_for


def grid_points(n, stride=7):
    return [
        Point((float(i % stride) * 3.0, float(i // stride) * 2.0))
        for i in range(n)
    ]


@pytest.fixture
def tree():
    return bulk_load_str(grid_points(90))


class TestBuild:
    def test_membership_partitions_the_relation(self, tree):
        catalog = ShardCatalog.build(tree, shards=4)
        assert sum(info.count for info in catalog.infos) == len(tree)
        seen = set()
        for shard_id in catalog.shard_ids:
            oids = {item.oid for item in catalog.table(shard_id)}
            assert not (oids & seen)
            seen |= oids
        assert seen == {entry.oid for entry in tree.items()}

    def test_mbrs_are_exact(self, tree):
        catalog = ShardCatalog.build(tree, shards=4)
        for shard_id in catalog.shard_ids:
            info = catalog.info(shard_id)
            for item in catalog.table(shard_id):
                assert info.mbr.contains_rect(item.rect)

    def test_build_is_deterministic(self, tree):
        first = ShardCatalog.build(tree, shards=3)
        second = ShardCatalog.build(tree, shards=3)
        assert first.fingerprint == second.fingerprint
        assert [i.fingerprint for i in first.infos] == [
            i.fingerprint for i in second.infos
        ]

    def test_shard_count_changes_fingerprint(self, tree):
        assert (
            ShardCatalog.build(tree, shards=2).fingerprint
            != ShardCatalog.build(tree, shards=4).fingerprint
        )

    def test_grid_method(self, tree):
        catalog = ShardCatalog.build(tree, shards=4, method="grid")
        assert catalog.method == "grid"
        assert sum(info.count for info in catalog.infos) == len(tree)

    def test_empty_tree(self):
        catalog = ShardCatalog.build(RStarTree(dim=2), shards=4)
        assert len(catalog) == 0

    def test_shard_trees_hold_the_members(self, tree):
        catalog = ShardCatalog.build(tree, shards=4)
        for shard_id in catalog.shard_ids:
            assert len(catalog.tree(shard_id)) == \
                catalog.info(shard_id).count

    def test_stats_summary(self, tree):
        catalog = ShardCatalog.build(tree, shards=4)
        stats = catalog.stats(0)
        assert stats.size == catalog.info(0).count


class TestPersistence:
    def test_round_trip(self, tree, tmp_path):
        built = ShardCatalog.build(tree, shards=4)
        built.save(str(tmp_path / "cat"))
        opened = ShardCatalog.open(str(tmp_path / "cat"))
        assert opened.fingerprint == built.fingerprint
        assert len(opened) == len(built)
        for shard_id in built.shard_ids:
            assert opened.info(shard_id).count == \
                built.info(shard_id).count
            assert sorted(
                (t.oid, t.rect) for t in opened.table(shard_id)
            ) == sorted(
                (t.oid, t.rect) for t in built.table(shard_id)
            )

    def test_opened_stats_come_from_manifest(self, tree, tmp_path):
        built = ShardCatalog.build(tree, shards=2)
        built.stats(0)
        built.save(str(tmp_path / "cat"))
        opened = ShardCatalog.open(str(tmp_path / "cat"))
        # No shard tree was loaded to answer this.
        assert opened.stats(0).size == built.stats(0).size
        assert not opened._trees

    def test_bad_format_rejected(self, tree, tmp_path):
        built = ShardCatalog.build(tree, shards=2)
        path = built.save(str(tmp_path / "cat"))
        manifest = json.load(open(path))
        manifest["format"] = "something-else"
        json.dump(manifest, open(path, "w"))
        with pytest.raises(StorageError):
            ShardCatalog.open(str(tmp_path / "cat"))

    def test_tampered_manifest_rejected(self, tree, tmp_path):
        built = ShardCatalog.build(tree, shards=2)
        path = built.save(str(tmp_path / "cat"))
        manifest = json.load(open(path))
        manifest["entries"][0]["fingerprint"] = "0" * 40
        json.dump(manifest, open(path, "w"))
        with pytest.raises(StorageError):
            ShardCatalog.open(str(tmp_path / "cat"))


class TestCatalogMemo:
    def test_same_tree_same_catalog(self, tree):
        assert catalog_for(tree, 3) is catalog_for(tree, 3)

    def test_different_knobs_different_catalogs(self, tree):
        assert catalog_for(tree, 3) is not catalog_for(tree, 4)

    def test_insert_invalidates(self):
        tree = RStarTree(dim=2)
        for point in grid_points(40):
            tree.insert(point)
        before = catalog_for(tree, 3)
        tree.insert(Point((500.0, 500.0)))
        after = catalog_for(tree, 3)
        assert after is not before
        assert sum(i.count for i in after.infos) == len(tree)

    def test_cache_false_bypasses(self, tree):
        memoized = catalog_for(tree, 3)
        fresh = catalog_for(tree, 3, cache=False)
        assert fresh is not memoized
        assert fresh.fingerprint == memoized.fingerprint


class TestStatsCache:
    def test_collect_stats_is_cached(self, tree):
        assert collect_stats(tree) is collect_stats(tree)

    def test_insert_invalidates(self):
        tree = RStarTree(dim=2)
        for point in grid_points(30):
            tree.insert(point)
        before = collect_stats(tree)
        tree.insert(Point((999.0, 999.0)))
        after = collect_stats(tree)
        assert after is not before
        assert after.size == before.size + 1

    def test_delete_invalidates(self):
        tree = RStarTree(dim=2)
        for point in grid_points(30):
            tree.insert(point)
        before = collect_stats(tree)
        victim = next(iter(tree.items()))
        assert tree.delete(victim.oid, victim.rect)
        assert collect_stats(tree).size == before.size - 1

    def test_fingerprint_requires_mutation_counter(self, tree):
        assert stats_fingerprint(tree) is not None
        assert stats_fingerprint(object()) is None

    def test_cached_walk_charges_no_reads(self, tree):
        collect_stats(tree)
        before = tree.counters.snapshot().get("node_reads", 0)
        collect_stats(tree)
        assert tree.counters.snapshot().get("node_reads", 0) == before
