"""Unit tests for queue key construction / tie-break policies."""

import pytest

from repro.core.pairs import NODE, OBJ, OBR, Item, Pair
from repro.core.tiebreak import BREADTH_FIRST, DEPTH_FIRST, KeyMaker
from repro.geometry.rectangle import Rect

R = Rect((0, 0), (1, 1))


def node(level):
    return Item(NODE, R, node_id=1, level=level)


def obj():
    return Item(OBJ, R, oid=1)


def obr():
    return Item(OBR, R, oid=1)


class TestRanks:
    def test_result_pairs_first(self):
        km = KeyMaker(DEPTH_FIRST)
        k_obj = km.key(Pair(obj(), obj(), 5.0), 5.0)
        k_obr = km.key(Pair(obr(), obr(), 5.0), 5.0)
        k_one_node = km.key(Pair(node(0), obj(), 5.0), 5.0)
        k_two_nodes = km.key(Pair(node(0), node(0), 5.0), 5.0)
        assert k_obj < k_obr < k_one_node < k_two_nodes

    def test_distance_dominates_rank(self):
        km = KeyMaker(DEPTH_FIRST)
        near_nodes = km.key(Pair(node(2), node(2), 1.0), 1.0)
        far_objects = km.key(Pair(obj(), obj(), 2.0), 2.0)
        assert near_nodes < far_objects


class TestDepthPolicy:
    def test_depth_first_prefers_deeper(self):
        km = KeyMaker(DEPTH_FIRST)
        deep = km.key(Pair(node(0), node(0), 1.0), 1.0)
        shallow = km.key(Pair(node(3), node(3), 1.0), 1.0)
        assert deep < shallow

    def test_breadth_first_prefers_shallower(self):
        km = KeyMaker(BREADTH_FIRST)
        deep = km.key(Pair(node(0), node(0), 1.0), 1.0)
        shallow = km.key(Pair(node(3), node(3), 1.0), 1.0)
        assert shallow < deep

    def test_depth_first_lifo_on_full_tie(self):
        km = KeyMaker(DEPTH_FIRST)
        first = km.key(Pair(node(1), node(1), 1.0), 1.0)
        second = km.key(Pair(node(1), node(1), 1.0), 1.0)
        assert second < first  # most recent wins

    def test_breadth_first_fifo_on_full_tie(self):
        km = KeyMaker(BREADTH_FIRST)
        first = km.key(Pair(node(1), node(1), 1.0), 1.0)
        second = km.key(Pair(node(1), node(1), 1.0), 1.0)
        assert first < second


class TestDescending:
    def test_descending_negates_distance(self):
        km = KeyMaker(DEPTH_FIRST, descending=True)
        near = km.key(Pair(obj(), obj(), 1.0), 1.0)
        far = km.key(Pair(obj(), obj(), 9.0), 9.0)
        assert far < near

    def test_distance_of_recovers_magnitude(self):
        km = KeyMaker(DEPTH_FIRST, descending=True)
        k = km.key(Pair(obj(), obj(), 3.0), 3.0)
        assert KeyMaker.distance_of(k) == 3.0


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            KeyMaker("sideways")

    def test_keys_are_totally_ordered(self):
        km = KeyMaker(DEPTH_FIRST)
        keys = [
            km.key(Pair(node(i % 3), obj(), float(i % 4)), float(i % 4))
            for i in range(20)
        ]
        # sorting must not raise (total order, no incomparable tuples)
        assert len(sorted(keys)) == 20
