"""Unit tests for single-tree queries (range, k-NN, incremental NN)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry.metrics import EUCLIDEAN, MANHATTAN
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.bulk import bulk_load_str
from repro.rtree.queries import (
    incremental_nearest,
    nearest_neighbors,
    nearest_neighbors_bnb,
    range_search,
)
from repro.rtree.rstar import RStarTree

from tests.conftest import make_points, make_tree


@pytest.fixture(scope="module")
def loaded():
    points = make_points(250, seed=31)
    return make_tree(points), points


class TestRangeSearch:
    def test_matches_brute_force(self, loaded):
        tree, points = loaded
        window = Rect((20, 30), (60, 70))
        got = sorted(e.oid for e in range_search(tree, window))
        expected = sorted(
            i for i, p in enumerate(points) if window.contains_point(p)
        )
        assert got == expected

    def test_empty_window(self, loaded):
        tree, __ = loaded
        window = Rect((200, 200), (300, 300))
        assert list(range_search(tree, window)) == []

    def test_whole_universe(self, loaded):
        tree, points = loaded
        window = Rect((0, 0), (100, 100))
        assert len(list(range_search(tree, window))) == len(points)

    def test_empty_tree(self):
        tree = RStarTree(dim=2, max_entries=4)
        assert list(range_search(tree, Rect((0, 0), (1, 1)))) == []


class TestIncrementalNearest:
    def test_order_matches_brute_force(self, loaded):
        tree, points = loaded
        query = Point((50, 50))
        expected = sorted(
            (EUCLIDEAN.distance(p, query), i) for i, p in enumerate(points)
        )
        got = list(incremental_nearest(tree, query))
        assert len(got) == len(points)
        for neighbor, (dist, __) in zip(got, expected):
            assert neighbor.distance == pytest.approx(dist)

    def test_lazy_consumption(self, loaded):
        tree, __ = loaded
        generator = incremental_nearest(tree, Point((10, 10)))
        first = next(generator)
        second = next(generator)
        assert first.distance <= second.distance

    def test_max_distance_truncates(self, loaded):
        tree, points = loaded
        query = Point((50, 50))
        got = list(incremental_nearest(tree, query, max_distance=10.0))
        expected = [
            p for p in points if EUCLIDEAN.distance(p, query) <= 10.0
        ]
        assert len(got) == len(expected)

    def test_other_metric(self, loaded):
        tree, points = loaded
        query = Point((50, 50))
        got = list(incremental_nearest(tree, query, metric=MANHATTAN))
        expected = sorted(
            MANHATTAN.distance(p, query) for p in points
        )
        for neighbor, dist in zip(got, expected):
            assert neighbor.distance == pytest.approx(dist)

    def test_rect_query(self, loaded):
        tree, points = loaded
        window = Rect((40, 40), (60, 60))
        first = next(incremental_nearest(tree, window))
        expected = min(
            EUCLIDEAN.mindist_point_rect(p, window) for p in points
        )
        assert first.distance == pytest.approx(expected)

    def test_empty_tree(self):
        tree = RStarTree(dim=2, max_entries=4)
        assert list(incremental_nearest(tree, Point((0, 0)))) == []


class TestKNearest:
    def test_k_results(self, loaded):
        tree, __ = loaded
        assert len(nearest_neighbors(tree, Point((1, 1)), k=7)) == 7

    def test_k_larger_than_tree(self, loaded):
        tree, points = loaded
        got = nearest_neighbors(tree, Point((1, 1)), k=10_000)
        assert len(got) == len(points)

    def test_k_must_be_positive(self, loaded):
        tree, __ = loaded
        with pytest.raises(ValueError):
            nearest_neighbors(tree, Point((0, 0)), k=0)

    def test_bulk_loaded_tree_gives_same_answers(self, loaded):
        __, points = loaded
        bulk = bulk_load_str(points, max_entries=8)
        query = Point((33, 66))
        a = [n.distance for n in nearest_neighbors(bulk, query, k=10)]
        expected = sorted(
            EUCLIDEAN.distance(p, query) for p in points
        )[:10]
        assert a == pytest.approx(expected)


class TestBranchAndBoundKNN:
    def test_matches_incremental(self, loaded):
        tree, __ = loaded
        for k in (1, 5, 20):
            query = Point((37.0, 71.0))
            a = [n.distance for n in nearest_neighbors(tree, query, k=k)]
            b = [
                n.distance
                for n in nearest_neighbors_bnb(tree, query, k=k)
            ]
            assert a == pytest.approx(b)

    def test_k_larger_than_tree(self, loaded):
        tree, points = loaded
        got = nearest_neighbors_bnb(tree, Point((0, 0)), k=10_000)
        assert len(got) == len(points)

    def test_prunes_subtrees(self, loaded):
        tree, __ = loaded
        tree.counters.reset()
        nearest_neighbors_bnb(tree, Point((5.0, 5.0)), k=1)
        assert tree.counters.value("pruned_bnb") > 0

    def test_empty_tree(self):
        tree = RStarTree(dim=2, max_entries=4)
        assert nearest_neighbors_bnb(tree, Point((0, 0))) == []

    def test_other_metric(self, loaded):
        tree, points = loaded
        query = Point((50, 50))
        got = [
            n.distance
            for n in nearest_neighbors_bnb(
                tree, query, k=5, metric=MANHATTAN
            )
        ]
        expected = sorted(
            MANHATTAN.distance(p, query) for p in points
        )[:5]
        assert got == pytest.approx(expected)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=60,
    ),
    st.tuples(st.floats(0, 100), st.floats(0, 100)),
)
def test_property_bnb_equals_incremental(raw, query_xy):
    """Property: branch-and-bound and incremental k-NN agree on
    arbitrary data for several k."""
    points = [Point(xy) for xy in raw]
    tree = make_tree(points, max_entries=4)
    query = Point(query_xy)
    for k in (1, 3, len(points)):
        a = [n.distance for n in nearest_neighbors(tree, query, k=k)]
        b = [n.distance for n in nearest_neighbors_bnb(tree, query, k=k)]
        assert a == pytest.approx(b)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=60,
    ),
    st.tuples(st.floats(0, 100), st.floats(0, 100)),
)
def test_property_incremental_nn_is_sorted_and_complete(raw, query_xy):
    """Property: INN yields every object exactly once, sorted by
    distance, for arbitrary data and query."""
    points = [Point(xy) for xy in raw]
    tree = make_tree(points, max_entries=4)
    query = Point(query_xy)
    got = list(incremental_nearest(tree, query))
    assert len(got) == len(points)
    distances = [n.distance for n in got]
    assert distances == sorted(distances)
    assert sorted(n.oid for n in got) == list(range(len(points)))
    brute_min = min(EUCLIDEAN.distance(p, query) for p in points)
    assert distances[0] == pytest.approx(brute_min)
