"""Larger cross-checking integration tests ("slow" but bounded).

These run the TIGER-like workload at a small scale and cross-verify
independent implementations against each other -- join vs nested loop,
semi-join vs NN baseline vs k=1 kNN join, R-tree vs quadtree -- on the
same data, which catches disagreements no unit test would.
"""

import pytest

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.nn_semijoin import nn_semi_join
from repro.bench.workloads import build_tiger_workload, suggest_dt
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.knn_join import KNearestNeighborJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.geometry.rectangle import Rect
from repro.quadtree import PRQuadtree
from repro.rtree.validate import validate_tree
from repro.util.counters import CounterRegistry


@pytest.fixture(scope="module")
def workload():
    return build_tiger_workload(scale=0.005, max_entries=16)


class TestCrossValidation:
    def test_trees_valid(self, workload):
        validate_tree(workload.tree1, allow_underfull=True)
        validate_tree(workload.tree2, allow_underfull=True)

    def test_join_vs_nested_loop(self, workload):
        join = IncrementalDistanceJoin(
            workload.tree1, workload.tree2, counters=workload.counters
        )
        incremental = []
        for result in join:
            incremental.append(result.distance)
            if len(incremental) == 500:
                break
        brute = nested_loop_join(
            workload.points1, workload.points2, max_pairs=500
        )
        assert incremental == pytest.approx(
            [r.distance for r in brute]
        )

    def test_three_semi_join_implementations_agree(self, workload):
        semi = [
            r.distance
            for r in IncrementalDistanceSemiJoin(
                workload.tree1, workload.tree2,
                counters=workload.counters,
            )
        ]
        knn1 = [
            r.distance
            for r in KNearestNeighborJoin(
                workload.tree1, workload.tree2, k=1,
                counters=workload.counters,
            )
        ]
        baseline = [
            r.distance
            for r in nn_semi_join(
                [(e.oid, e.obj) for e in workload.tree1.items()],
                workload.tree2,
            )
        ]
        assert semi == pytest.approx(knn1)
        assert semi == pytest.approx(baseline)

    def test_quadtree_agrees_with_rtree(self, workload):
        bounds = Rect((0.0, 0.0), (10000.0, 10000.0))
        quad1 = PRQuadtree(bounds, bucket_capacity=16)
        for point in workload.points1:
            quad1.insert(point)
        quad_join = IncrementalDistanceJoin(
            quad1, workload.tree2, counters=CounterRegistry()
        )
        rtree_join = IncrementalDistanceJoin(
            workload.tree1, workload.tree2,
            counters=CounterRegistry(),
        )
        for __ in range(300):
            assert next(quad_join).distance == pytest.approx(
                next(rtree_join).distance
            )

    def test_hybrid_queue_agrees_with_memory(self, workload):
        dt = suggest_dt(workload)
        memory = IncrementalDistanceJoin(
            workload.tree1, workload.tree2, counters=workload.counters
        )
        hybrid = IncrementalDistanceJoin(
            workload.tree1, workload.tree2, queue="hybrid",
            queue_dt=dt, counters=CounterRegistry(),
        )
        for __ in range(1000):
            assert next(memory).distance == pytest.approx(
                next(hybrid).distance
            )

    def test_join_correct_after_update_churn(self, workload):
        """Dynamic scenario: heavy insert/delete churn on one side,
        then the join must still match brute force exactly."""
        import random

        from repro.geometry.metrics import EUCLIDEAN
        from repro.geometry.point import Point
        from repro.geometry.rectangle import Rect
        from tests.conftest import make_tree

        rng = random.Random(251)
        points = list(workload.points1[:150])
        tree = make_tree(points, max_entries=8)
        live = {i: p for i, p in enumerate(points)}
        # Churn: delete half, insert replacements, delete some of those.
        for oid in list(live)[::2]:
            assert tree.delete(oid, Rect.from_point(live.pop(oid)))
        for __ in range(60):
            p = Point((rng.uniform(0, 10000), rng.uniform(0, 10000)))
            live[tree.insert(obj=p)] = p
        for oid in list(live)[-20:]:
            assert tree.delete(oid, Rect.from_point(live.pop(oid)))
        validate_tree(tree)

        join = IncrementalDistanceJoin(
            tree, workload.tree2, counters=CounterRegistry()
        )
        got = []
        for result in join:
            got.append((result.distance, result.oid1))
            if len(got) == 200:
                break
        truth = sorted(
            (EUCLIDEAN.distance(p, q), oid)
            for oid, p in live.items()
            for q in workload.points2
        )[:200]
        assert [g[0] for g in got] == pytest.approx(
            [t[0] for t in truth]
        )

    def test_adaptive_queue_in_semi_join(self, workload):
        semi_plain = [
            r.distance
            for r in IncrementalDistanceSemiJoin(
                workload.tree1, workload.tree2,
                counters=workload.counters,
            )
        ]
        semi_adaptive = [
            r.distance
            for r in IncrementalDistanceSemiJoin(
                workload.tree1, workload.tree2, queue="adaptive",
                counters=CounterRegistry(),
            )
        ]
        assert semi_plain == pytest.approx(semi_adaptive)

    def test_estimation_invisible_in_results(self, workload):
        plain = IncrementalDistanceJoin(
            workload.tree1, workload.tree2, estimate=False,
            max_pairs=400, counters=workload.counters,
        )
        estimated = IncrementalDistanceJoin(
            workload.tree1, workload.tree2, max_pairs=400,
            counters=CounterRegistry(),
        )
        assert [r.distance for r in plain] == pytest.approx(
            [r.distance for r in estimated]
        )
