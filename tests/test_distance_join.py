"""Tests for the incremental distance join against brute-force truth."""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.distance_join import (
    BASIC,
    EVEN,
    SIMULTANEOUS,
    IncrementalDistanceJoin,
)
from repro.core.tiebreak import BREADTH_FIRST, DEPTH_FIRST
from repro.errors import JoinError
from repro.geometry.metrics import CHESSBOARD, EUCLIDEAN, MANHATTAN
from repro.geometry.point import Point
from repro.rtree.rstar import RStarTree
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_pairs, make_points, make_tree

INF = float("inf")
POLICIES = [BASIC, EVEN, SIMULTANEOUS]
TIES = [DEPTH_FIRST, BREADTH_FIRST]


def distances(results):
    return [r.distance for r in results]


def take(iterator, n):
    out = []
    for item in iterator:
        out.append(item)
        if len(out) == n:
            break
    return out


class TestOrderingCorrectness:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("tie", TIES)
    def test_matches_brute_force_prefix(self, small_trees, policy, tie):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, node_policy=policy, tie_break=tie,
            counters=CounterRegistry(),
        )
        got = take(join, 300)
        expected = [t[0] for t in truth[:300]]
        assert distances(got) == pytest.approx(expected)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_full_join_is_cartesian_product(self, policy):
        points_a = make_points(12, seed=41)
        points_b = make_points(15, seed=42)
        join = IncrementalDistanceJoin(
            make_tree(points_a, max_entries=4),
            make_tree(points_b, max_entries=4),
            node_policy=policy,
        )
        got = list(join)
        assert len(got) == 12 * 15
        pairs = {(r.oid1, r.oid2) for r in got}
        assert len(pairs) == 12 * 15

    def test_monotone_distances(self, small_trees):
        tree_a, tree_b, __ = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        previous = -1.0
        for result in take(join, 500):
            assert result.distance >= previous - 1e-12
            previous = result.distance

    @pytest.mark.parametrize("metric", [MANHATTAN, CHESSBOARD])
    def test_other_metrics(self, points_small_a, points_small_b, metric):
        tree_a = make_tree(points_small_a)
        tree_b = make_tree(points_small_b)
        join = IncrementalDistanceJoin(
            tree_a, tree_b, metric=metric, counters=CounterRegistry()
        )
        got = take(join, 100)
        expected = [
            t[0]
            for t in brute_force_pairs(
                points_small_a, points_small_b, metric
            )[:100]
        ]
        assert distances(got) == pytest.approx(expected)

    def test_oids_refer_to_real_objects(self, medium_trees):
        tree_a, tree_b, points_a, points_b, __ = medium_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        for result in take(join, 50):
            assert result.obj1 == points_a[result.oid1]
            assert result.obj2 == points_b[result.oid2]
            assert result.distance == pytest.approx(
                EUCLIDEAN.distance(result.obj1, result.obj2)
            )


class TestPipelining:
    def test_iterator_is_resumable(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        first = take(join, 10)
        second = take(join, 10)
        expected = [t[0] for t in truth[:20]]
        assert distances(first + second) == pytest.approx(expected)

    def test_first_pair_cheaper_than_full_join(self, medium_trees):
        tree_a, tree_b, *__ = medium_trees
        counters = CounterRegistry()
        join = IncrementalDistanceJoin(tree_a, tree_b, counters=counters)
        next(join)
        first_cost = counters.value("dist_calcs")
        take(join, 2000)
        assert counters.value("dist_calcs") > first_cost


class TestDistanceRange:
    def test_max_distance_truncates(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, max_distance=10.0, counters=CounterRegistry()
        )
        got = list(join)
        expected = [t for t in truth if t[0] <= 10.0]
        assert len(got) == len(expected)

    def test_min_distance_skips_close_pairs(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, min_distance=50.0, max_distance=60.0,
            counters=CounterRegistry(),
        )
        got = list(join)
        expected = [t for t in truth if 50.0 <= t[0] <= 60.0]
        assert len(got) == len(expected)
        assert distances(got) == pytest.approx([t[0] for t in expected])

    def test_empty_range(self, small_trees):
        tree_a, tree_b, __ = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, min_distance=1000.0, max_distance=2000.0,
            counters=CounterRegistry(),
        )
        assert list(join) == []

    def test_max_distance_prunes_queue_inserts(self, medium_trees):
        tree_a, tree_b, *__ = medium_trees
        wide = CounterRegistry()
        list(take(IncrementalDistanceJoin(
            tree_a, tree_b, counters=wide
        ), 100))
        narrow = CounterRegistry()
        list(take(IncrementalDistanceJoin(
            tree_a, tree_b, max_distance=5.0, counters=narrow
        ), 100))
        assert (
            narrow.value("queue_inserts") < wide.value("queue_inserts")
        )

    def test_invalid_range_rejected(self, small_trees):
        tree_a, tree_b, __ = small_trees
        with pytest.raises(ValueError):
            IncrementalDistanceJoin(
                tree_a, tree_b, min_distance=5.0, max_distance=1.0
            )


class TestMaxPairs:
    def test_stops_at_limit(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, max_pairs=25, counters=CounterRegistry()
        )
        got = list(join)
        assert len(got) == 25
        assert distances(got) == pytest.approx(
            [t[0] for t in truth[:25]]
        )

    def test_estimation_reduces_queue_inserts(self, medium_trees):
        tree_a, tree_b, *__ = medium_trees
        plain = CounterRegistry()
        take(IncrementalDistanceJoin(
            tree_a, tree_b, estimate=False, counters=plain
        ), 20)
        estimated = CounterRegistry()
        list(IncrementalDistanceJoin(
            tree_a, tree_b, max_pairs=20, counters=estimated
        ))
        assert (
            estimated.value("queue_inserts")
            <= plain.value("queue_inserts")
        )
        assert estimated.value("estimator_trims") > 0

    def test_aggressive_estimation_correct_with_restart(self, medium_trees):
        tree_a, tree_b, __, ___, truth = medium_trees
        counters = CounterRegistry()
        join = IncrementalDistanceJoin(
            tree_a, tree_b, max_pairs=200, aggressive=True,
            counters=counters,
        )
        got = list(join)
        assert len(got) == 200
        assert distances(got) == pytest.approx(
            [t[0] for t in truth[:200]]
        )

    def test_max_pairs_one(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, max_pairs=1, counters=CounterRegistry()
        )
        got = list(join)
        assert len(got) == 1
        assert got[0].distance == pytest.approx(truth[0][0])


class TestQueueVariants:
    def test_hybrid_queue_same_results(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, queue="hybrid", queue_dt=5.0,
            counters=CounterRegistry(),
        )
        got = take(join, 400)
        assert distances(got) == pytest.approx(
            [t[0] for t in truth[:400]]
        )

    def test_hybrid_requires_dt(self, small_trees):
        tree_a, tree_b, __ = small_trees
        with pytest.raises(ValueError):
            IncrementalDistanceJoin(tree_a, tree_b, queue="hybrid")

    def test_adaptive_queue_same_results(self, small_trees):
        """The paper's future-work item: D_T chosen dynamically from
        the queue's own early traffic must not change the output."""
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, queue="adaptive",
            counters=CounterRegistry(),
        )
        got = take(join, 400)
        assert distances(got) == pytest.approx(
            [t[0] for t in truth[:400]]
        )
        assert join._queue.dt is not None

    def test_hybrid_offloads_to_disk(self, medium_trees):
        tree_a, tree_b, *__ = medium_trees
        counters = CounterRegistry()
        join = IncrementalDistanceJoin(
            tree_a, tree_b, queue="hybrid", queue_dt=3.0,
            counters=counters,
        )
        take(join, 50)
        assert counters.value("pq_disk_writes") > 0


class TestEdgesAndHooks:
    def test_empty_tree_yields_nothing(self):
        empty = RStarTree(dim=2, max_entries=4)
        other = make_tree(make_points(10, seed=1))
        assert list(IncrementalDistanceJoin(
            empty, other, counters=CounterRegistry()
        )) == []
        assert list(IncrementalDistanceJoin(
            other, empty, counters=CounterRegistry()
        )) == []

    def test_single_object_trees(self):
        a = RStarTree(dim=2, max_entries=4)
        a.insert_point((0.0, 0.0))
        b = RStarTree(dim=2, max_entries=4)
        b.insert_point((3.0, 4.0))
        got = list(IncrementalDistanceJoin(a, b))
        assert len(got) == 1
        assert got[0].distance == 5.0

    def test_dimension_mismatch_rejected(self):
        a = RStarTree(dim=2, max_entries=4)
        b = RStarTree(dim=3, max_entries=4)
        with pytest.raises(JoinError):
            IncrementalDistanceJoin(a, b)

    def test_pair_filter_hook(self, small_trees):
        tree_a, tree_b, truth = small_trees
        # Keep only pairs whose first item lies left of x = 50: a
        # spatial criterion on R1 (Section 2.2.5).
        def left_half(pair):
            return pair.item1.rect.lo[0] <= 50.0

        join = IncrementalDistanceJoin(
            tree_a, tree_b, pair_filter=left_half,
            counters=CounterRegistry(),
        )
        got = take(join, 100)
        assert all(r.obj1.x <= 50.0 for r in got)

    def test_check_consistency_clean_run(self, small_trees):
        tree_a, tree_b, __ = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, check_consistency=True,
            counters=CounterRegistry(),
        )
        take(join, 100)  # must not raise

    def test_identical_trees_self_join(self):
        points = make_points(30, seed=55)
        a = make_tree(points)
        b = make_tree(points)
        join = IncrementalDistanceJoin(a, b, counters=CounterRegistry())
        got = take(join, 30)
        # The 30 closest pairs of a self-join are the diagonal (d = 0).
        assert all(r.distance == 0.0 for r in got)

    def test_counters_report_table1_measures(self, medium_trees):
        tree_a, tree_b, *__ = medium_trees
        counters = CounterRegistry()
        join = IncrementalDistanceJoin(tree_a, tree_b, counters=counters)
        take(join, 100)
        assert counters.value("dist_calcs") > 0
        assert counters.peak("queue_size") > 0
        assert counters.value("node_reads") > 0

    def test_invalid_policy_rejected(self, small_trees):
        tree_a, tree_b, __ = small_trees
        with pytest.raises(ValueError):
            IncrementalDistanceJoin(tree_a, tree_b, node_policy="magic")
        with pytest.raises(ValueError):
            IncrementalDistanceJoin(tree_a, tree_b, tie_break="magic")
        with pytest.raises(ValueError):
            IncrementalDistanceJoin(tree_a, tree_b, max_pairs=0)
        with pytest.raises(ValueError):
            IncrementalDistanceJoin(tree_a, tree_b, queue="floppy")


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=30,
    ),
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=30,
    ),
    st.sampled_from(POLICIES),
)
def test_property_join_equals_brute_force(raw_a, raw_b, policy):
    """Property: for arbitrary point sets and any node policy, the join
    enumerates exactly the Cartesian product in distance order."""
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    tree_a = make_tree(points_a, max_entries=4)
    tree_b = make_tree(points_b, max_entries=4)
    join = IncrementalDistanceJoin(
        tree_a, tree_b, node_policy=policy, counters=CounterRegistry()
    )
    got = list(join)
    truth = brute_force_pairs(points_a, points_b)
    assert len(got) == len(truth)
    for result, (dist, *__) in zip(got, truth):
        assert math.isclose(
            result.distance, dist, rel_tol=1e-9, abs_tol=1e-9
        )
