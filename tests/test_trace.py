"""Tests for the execution tracer."""

import pytest

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.knn_join import KNearestNeighborJoin
from repro.core.reverse import ReverseDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.core.trace import JoinTrace, traced_join
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_pairs, make_points, make_tree


@pytest.fixture(scope="module")
def trees():
    points_a = make_points(30, seed=231)
    points_b = make_points(30, seed=232)
    return (
        make_tree(points_a), make_tree(points_b), points_a, points_b
    )


class TestTracedJoin:
    def test_results_unchanged(self, trees):
        tree_a, tree_b, points_a, points_b = trees
        join, __ = traced_join(
            IncrementalDistanceJoin, tree_a, tree_b,
            counters=CounterRegistry(),
        )
        got = [next(join).distance for __ in range(40)]
        truth = [
            t[0] for t in brute_force_pairs(points_a, points_b)[:40]
        ]
        assert got == pytest.approx(truth)

    def test_events_recorded(self, trees):
        tree_a, tree_b, *__ = trees
        join, trace = traced_join(
            IncrementalDistanceJoin, tree_a, tree_b,
            counters=CounterRegistry(),
        )
        next(join)
        kinds = {event.kind for event in trace.events}
        assert kinds == {"push", "pop", "expand", "report"}
        # The very first push is the root/root pair.
        assert trace.events[0].kind == "push"
        assert "node#" in trace.events[0].label

    def test_tallies_consistent(self, trees):
        tree_a, tree_b, *__ = trees
        join, trace = traced_join(
            IncrementalDistanceJoin, tree_a, tree_b,
            counters=CounterRegistry(),
        )
        for __ in range(10):
            next(join)
        assert trace.reported == 10
        assert trace.pops >= trace.expansions + trace.reported - 1
        assert trace.pushes >= trace.pops  # queue never went negative

    def test_pop_distances_monotone(self, trees):
        """The trace exposes the paper's core invariant directly:
        popped pair distances never decrease."""
        tree_a, tree_b, *__ = trees
        join, trace = traced_join(
            IncrementalDistanceJoin, tree_a, tree_b,
            counters=CounterRegistry(),
        )
        for __ in range(30):
            next(join)
        pops = [e.distance for e in trace.events if e.kind == "pop"]
        assert pops == sorted(pops)

    def test_render(self, trees):
        tree_a, tree_b, *__ = trees
        join, trace = traced_join(
            IncrementalDistanceJoin, tree_a, tree_b,
            counters=CounterRegistry(),
        )
        next(join)
        text = trace.render(limit=5)
        assert "push" in text
        assert "totals:" in text

    def test_max_events_bounds_memory(self, trees):
        tree_a, tree_b, *__ = trees
        trace = JoinTrace(max_events=10)
        join, trace = traced_join(
            IncrementalDistanceJoin, tree_a, tree_b, trace=trace,
            counters=CounterRegistry(),
        )
        for __ in range(20):
            next(join)
        assert len(trace.events) == 10
        assert trace.reported == 20  # tallies keep counting

    def test_works_with_semi_join(self, trees):
        tree_a, tree_b, points_a, __ = trees
        join, trace = traced_join(
            IncrementalDistanceSemiJoin, tree_a, tree_b,
            counters=CounterRegistry(),
        )
        results = list(join)
        assert len(results) == len(points_a)
        assert trace.reported == len(points_a)

    def test_works_with_reverse_join(self, trees):
        tree_a, tree_b, *__ = trees
        join, trace = traced_join(
            ReverseDistanceJoin, tree_a, tree_b,
            counters=CounterRegistry(),
        )
        first = next(join)
        second = next(join)
        assert first.distance >= second.distance
        assert trace.reported == 2

    def test_works_with_knn_join(self, trees):
        tree_a, tree_b, points_a, __ = trees
        join, trace = traced_join(
            KNearestNeighborJoin, tree_a, tree_b, k=2,
            counters=CounterRegistry(),
        )
        results = list(join)
        assert len(results) == 2 * len(points_a)
        assert trace.reported == len(results)
