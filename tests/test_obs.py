"""Unit tests for the observability layer (repro.util.obs)."""

import json
import pickle

import pytest

from repro.util.counters import CounterRegistry
from repro.util.obs import (
    KEEP_FIRST,
    KEEP_LAST,
    NULL_OBSERVER,
    EventLog,
    ObsSnapshot,
    Observer,
    SpanStats,
    metrics_records,
    prometheus_text,
    write_metrics,
)


class TestSpans:
    def test_span_records_count_and_total(self):
        obs = Observer()
        for __ in range(3):
            with obs.span("phase"):
                pass
        assert obs.span_count("phase") == 3
        assert obs.span_seconds("phase") >= 0.0

    def test_span_stats_extrema(self):
        stats = SpanStats("x")
        stats.record(0.5)
        stats.record(0.1)
        stats.record(0.9)
        assert stats.count == 3
        assert stats.total_s == pytest.approx(1.5)
        assert stats.min_s == pytest.approx(0.1)
        assert stats.max_s == pytest.approx(0.9)
        assert stats.mean_s == pytest.approx(0.5)

    def test_record_span_folds_external_measurement(self):
        obs = Observer()
        obs.record_span("io", 0.25)
        obs.record_span("io", 0.75, count=4)
        assert obs.span_count("io") == 5
        assert obs.span_seconds("io") == pytest.approx(1.0)

    def test_unknown_span_is_zero(self):
        obs = Observer()
        assert obs.span_seconds("never") == 0.0
        assert obs.span_count("never") == 0

    def test_disabled_span_is_noop(self):
        obs = Observer(enabled=False)
        with obs.span("phase"):
            pass
        assert obs.span_count("phase") == 0

    def test_null_observer_records_nothing(self):
        with NULL_OBSERVER.span("x"):
            pass
        NULL_OBSERVER.gauge("g", 1.0)
        NULL_OBSERVER.event("e")
        snap = NULL_OBSERVER.snapshot()
        assert snap.spans == {}
        assert snap.gauges == {}
        assert NULL_OBSERVER.events.total == 0

    def test_null_observer_span_is_shared_singleton(self):
        # The disabled path must be allocation-free.
        assert NULL_OBSERVER.span("a") is NULL_OBSERVER.span("b")


class TestGauges:
    def test_gauge_tracks_last_and_extrema(self):
        obs = Observer()
        for value in (3.0, 1.0, 7.0):
            obs.gauge("g", value)
        assert obs.gauge_value("g") == 7.0
        timeline = obs.gauge_timeline("g")
        assert [v for __, v in timeline] == [3.0, 1.0, 7.0]
        snap = obs.snapshot()
        count, last, mn, mx = snap.gauges["g"]
        assert (count, last, mn, mx) == (3, 7.0, 1.0, 7.0)

    def test_gauge_sampling_thins_timeline(self):
        obs = Observer(sample_every=10)
        for i in range(100):
            obs.gauge("g", float(i))
        timeline = obs.gauge_timeline("g")
        assert len(timeline) == 10  # every 10th sample retained

    def test_gauge_timeline_is_bounded(self):
        obs = Observer(max_samples=16)
        for i in range(100):
            obs.gauge("g", float(i))
        timeline = obs.gauge_timeline("g")
        assert len(timeline) == 16
        assert timeline[-1][1] == 99.0  # newest retained

    def test_unknown_gauge_is_none(self):
        assert Observer().gauge_value("never") is None

    def test_sample_every_validation(self):
        with pytest.raises(ValueError):
            Observer(sample_every=0)


class TestEventLog:
    def test_keep_first_policy(self):
        log = EventLog(max_events=3, policy=KEEP_FIRST)
        for i in range(10):
            log.append(0.0, "k", label=str(i))
        assert log.total == 10
        assert len(log) == 3
        assert [e.label for e in log] == ["0", "1", "2"]

    def test_ring_policy_keeps_last(self):
        log = EventLog(max_events=3, policy=KEEP_LAST)
        for i in range(10):
            log.append(0.0, "k", label=str(i))
        assert log.total == 10
        assert [e.label for e in log] == ["7", "8", "9"]

    def test_sequence_numbers_are_global(self):
        log = EventLog(max_events=2, policy=KEEP_LAST)
        for i in range(5):
            log.append(0.0, "k")
        assert [e.seq for e in log] == [3, 4]

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            EventLog(policy="sometimes")

    def test_observer_event_api(self):
        obs = Observer(max_events=4)
        obs.event("pop", label="pair", value=1.5)
        event = obs.events.as_list()[0]
        assert event.kind == "pop"
        assert event.label == "pair"
        assert event.value == 1.5
        assert event.t >= 0.0


class TestSnapshots:
    def test_snapshot_pickles(self):
        obs = Observer()
        with obs.span("a"):
            pass
        obs.gauge("g", 2.0)
        snap = obs.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert isinstance(clone, ObsSnapshot)
        assert clone.span_count("a") == 1
        assert clone.gauge_last("g") == 2.0

    def test_delta_from_subtracts_counts_and_totals(self):
        obs = Observer()
        obs.record_span("a", 1.0)
        earlier = obs.snapshot()
        obs.record_span("a", 2.0)
        obs.record_span("b", 0.5)
        delta = obs.snapshot().delta_from(earlier)
        assert delta.span_count("a") == 1
        assert delta.span_seconds("a") == pytest.approx(2.0)
        assert delta.span_count("b") == 1

    def test_delta_from_guards_against_reset(self):
        obs = Observer()
        obs.record_span("a", 5.0)
        earlier = obs.snapshot()
        obs.reset()
        obs.record_span("a", 1.0)
        delta = obs.snapshot().delta_from(earlier)
        # Work since the reset, never a negative flow.
        assert delta.span_count("a") == 1
        assert delta.span_seconds("a") == pytest.approx(1.0)

    def test_merge_reconstructs_totals_from_deltas(self):
        # The parallel engine's scheme: workers ship cumulative
        # snapshots; the parent merges per-batch deltas.
        worker = Observer()
        parent = Observer()
        previous = None
        for __ in range(3):
            worker.record_span("worker.join", 0.5)
            snap = worker.snapshot()
            delta = snap.delta_from(previous) if previous else snap
            parent.merge(delta)
            previous = snap
        assert parent.span_count("worker.join") == 3
        assert parent.span_seconds("worker.join") == pytest.approx(
            worker.span_seconds("worker.join")
        )

    def test_merge_accepts_observer(self):
        a = Observer()
        b = Observer()
        b.record_span("x", 0.25)
        b.gauge("g", 4.0)
        a.merge(b)
        assert a.span_count("x") == 1
        assert a.gauge_value("g") == 4.0

    def test_reset_clears_everything(self):
        obs = Observer()
        obs.record_span("a", 1.0)
        obs.gauge("g", 1.0)
        obs.event("e")
        obs.reset()
        assert obs.snapshot().spans == {}
        assert obs.snapshot().gauges == {}
        assert obs.events.total == 0


class TestMetricsExport:
    def _sample(self):
        counters = CounterRegistry()
        counters.add("dist_calcs", 42)
        counters.observe("queue_size", 17)
        obs = Observer()
        obs.record_span("join.expand", 0.5, count=10)
        obs.gauge("pq_adaptive_dt", 0.37)
        return counters, obs

    def test_records_cover_all_types(self):
        counters, obs = self._sample()
        records = metrics_records(counters, obs, labels={"run": "t"})
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert {r["metric"] for r in by_type["counter"]} == {"dist_calcs"}
        assert {r["metric"] for r in by_type["peak"]} >= {"queue_size"}
        assert by_type["span"][0]["seconds"] == pytest.approx(0.5)
        assert by_type["span"][0]["count"] == 10
        assert by_type["gauge"][0]["value"] == pytest.approx(0.37)
        assert all(r["labels"] == {"run": "t"} for r in records)

    def test_prometheus_text_shape(self):
        counters, obs = self._sample()
        text = prometheus_text(metrics_records(counters, obs))
        assert "# TYPE repro_dist_calcs counter" in text
        assert "repro_dist_calcs 42" in text
        assert "repro_queue_size_peak 17" in text
        assert "repro_join_expand_seconds" in text
        assert "repro_join_expand_count 10" in text

    def test_write_metrics_emits_jsonl_and_prom(self, tmp_path):
        counters, obs = self._sample()
        path = str(tmp_path / "metrics.jsonl")
        written = write_metrics(path, counters, obs,
                                labels={"bench": "smoke"})
        lines = [
            json.loads(line)
            for line in open(path).read().splitlines() if line
        ]
        assert lines == written
        assert all(r["labels"] == {"bench": "smoke"} for r in lines)
        prom = open(path + ".prom").read()
        assert "repro_dist_calcs" in prom

    def test_label_values_escaped_per_exposition_format(self):
        # Regression: label values holding backslashes, quotes, or
        # newlines must be escaped, else the text format is corrupt
        # (a label like sql='SELECT "x"' used to split the line).
        counters, obs = self._sample()
        text = prometheus_text(metrics_records(
            counters, obs,
            labels={"sql": 'SELECT "d"\nSTOP', "path": "C:\\tmp"},
        ))
        assert '\\"d\\"' in text
        assert "\\n" in text
        assert "C:\\\\tmp" in text
        # No raw newline may survive inside a label block.
        for line in text.splitlines():
            if "{" in line:
                assert line.count("{") == 1 and "}" in line

    def test_escaped_labels_stay_parseable(self):
        counters, obs = self._sample()
        text = prometheus_text(metrics_records(
            counters, obs, labels={"q": 'a"b\\c\nd'},
        ))
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_dist_calcs{")
        )
        # value part after the label block is still a bare number
        assert line.rsplit(" ", 1)[1] == "42"

    def test_write_metrics_append(self, tmp_path):
        counters, obs = self._sample()
        path = str(tmp_path / "metrics.jsonl")
        write_metrics(path, counters, labels={"run": "1"})
        write_metrics(path, counters, labels={"run": "2"}, append=True)
        lines = [
            json.loads(line)
            for line in open(path).read().splitlines() if line
        ]
        runs = {r["labels"]["run"] for r in lines}
        assert runs == {"1", "2"}
        # The .prom dump is rewritten whole and covers both runs.
        prom = open(path + ".prom").read()
        assert 'run="1"' in prom and 'run="2"' in prom


class TestTraceAnnotatedMerge:
    """Observer.merge / ObsSnapshot.delta_from with trace-recording
    observers: aggregates fold correctly while each observer's trace
    identity and span-event timeline stay its own."""

    def _traced(self, ctx_tag, spans):
        obs = Observer(trace_spans=True, event_policy=KEEP_LAST,
                       max_events=8)
        obs.trace_ctx = ctx_tag
        for name, seconds in spans:
            obs.record_span(name, seconds)
        return obs

    def test_merge_adds_aggregates_not_events(self):
        left = self._traced("trace-a", [("join.expand", 0.2)])
        right = self._traced("trace-b", [("join.expand", 0.3),
                                         ("pq.refill", 0.1)])
        events_before = left.events.total
        left.merge(right)
        assert left.span_count("join.expand") == 2
        assert left.span_seconds("join.expand") == pytest.approx(0.5)
        assert left.span_seconds("pq.refill") == pytest.approx(0.1)
        # Merging folds aggregates only: the span-event timeline and
        # the trace identity belong to the recording observer.
        assert left.events.total == events_before
        assert left.trace_ctx == "trace-a"
        assert right.trace_ctx == "trace-b"

    def test_merge_accepts_snapshots_from_traced_observers(self):
        worker = self._traced("trace-w", [("worker.join", 0.4)])
        parent = Observer(max_events=0)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        assert parent.span_count("worker.join") == 2
        assert parent.span_seconds("worker.join") == pytest.approx(0.8)

    def test_delta_from_between_traced_snapshots(self):
        obs = self._traced("trace-d", [("join.expand", 0.2)])
        first = obs.snapshot()
        obs.record_span("join.expand", 0.3)
        obs.gauge("queue_len", 7.0)
        delta = obs.snapshot().delta_from(first)
        assert delta.span_count("join.expand") == 1
        assert delta.span_seconds("join.expand") == pytest.approx(0.3)
        assert delta.gauge_last("queue_len") == 7.0
        # Unchanged phases drop out of the delta entirely.
        obs.record_span("pq.refill", 0.0, count=0)
        assert "pq.refill" not in obs.snapshot().delta_from(
            obs.snapshot()
        ).spans

    def test_span_events_ride_the_ring_policy(self):
        obs = self._traced("trace-r", [])
        for i in range(20):
            obs.record_span("join.expand", 0.01)
        assert len(obs.events) == 8  # ring keeps the last 8
        assert obs.events.total == 20
        kept = [e.seq for e in obs.events]
        assert kept == list(range(12, 20))
        assert all(e.kind == "span" for e in obs.events)


class TestLongRunBoundedness:
    """Ring EventLog and GaugeTimeline over service-shaped long runs:
    memory stays bounded, totals and extrema stay exact."""

    def test_event_ring_over_many_quanta(self):
        log = EventLog(max_events=64, policy=KEEP_LAST)
        for quantum in range(5000):
            log.append(quantum * 0.01, "flight", f"q{quantum}", 1.0)
        assert len(log) == 64
        assert log.total == 5000
        assert [e.seq for e in log] == list(range(4936, 5000))
        assert log[0].label == "q4936"

    def test_keep_first_log_over_many_quanta(self):
        log = EventLog(max_events=64, policy=KEEP_FIRST)
        for quantum in range(5000):
            log.append(quantum * 0.01, "flight", f"q{quantum}", 1.0)
        assert len(log) == 64
        assert log.total == 5000
        assert [e.seq for e in log] == list(range(64))

    def test_gauge_timeline_bounded_with_exact_extrema(self):
        obs = Observer(max_samples=32)
        for quantum in range(4000):
            obs.gauge("service.queue_len", float(quantum % 977))
        timeline = obs.gauge_timeline("service.queue_len")
        assert len(timeline) == 32
        snapshot = obs.snapshot()
        count, last, mn, mx = snapshot.gauges["service.queue_len"]
        assert count == 4000
        assert mn == 0.0 and mx == 976.0
        assert last == float(3999 % 977)
