"""Golden-value drift check for the sequential join's work counters.

The TIGER-like workload is fully seeded and the join is deterministic,
so the work counters for a fixed configuration are exact constants.
Pinning them turns any accidental change in traversal order, pruning,
or counter accounting into a loud CI failure instead of silent metric
drift (the bench artifacts would quietly shift otherwise).

If a change *intentionally* alters the work done (better pruning, a
different expansion policy), update the golden values here and say so
in the commit message.
"""

from repro.bench.workloads import build_tiger_workload
from repro.core.distance_join import IncrementalDistanceJoin

#: Fixed-seed workload configuration the goldens are pinned against.
SCALE = 0.005
PAIRS = 100

#: Golden values for the workload above (seeds in
#: repro/datasets/tiger_like.py; STR bulk load; best-first join).
GOLDEN_DIST_CALCS = 6023
GOLDEN_NODE_IO = 28


def test_sequential_join_work_counters_match_golden():
    load = build_tiger_workload(scale=SCALE)
    join = IncrementalDistanceJoin(
        load.tree1, load.tree2,
        max_pairs=PAIRS, counters=load.counters,
    )
    produced = sum(1 for __ in join)
    assert produced == PAIRS
    assert load.counters.value("dist_calcs") == GOLDEN_DIST_CALCS
    assert load.counters.value("node_io") == GOLDEN_NODE_IO
    assert load.counters.value("pairs_reported") == PAIRS


def test_goldens_are_repeatable_within_process():
    # Two cold runs in one process agree exactly -- the goldens pin a
    # deterministic quantity, not a flaky one.
    results = []
    for __ in range(2):
        load = build_tiger_workload(scale=SCALE)
        load.cold_caches()
        load.reset_counters()
        join = IncrementalDistanceJoin(
            load.tree1, load.tree2,
            max_pairs=PAIRS, counters=load.counters,
        )
        sum(1 for __ in join)
        results.append((
            load.counters.value("dist_calcs"),
            load.counters.value("node_io"),
        ))
    assert results[0] == results[1] == (GOLDEN_DIST_CALCS, GOLDEN_NODE_IO)
