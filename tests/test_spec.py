"""Tests for the unified join configuration (``repro.core.spec``):
one frozen spec type shared by every operator family, validated in
exactly one place."""

import dataclasses
import pickle

import pytest

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.knn_join import KNearestNeighborJoin
from repro.core.reverse import ReverseDistanceJoin, ReverseDistanceSemiJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.core.spec import JoinSpec
from repro.parallel.join import ParallelDistanceJoin

from tests.conftest import make_points, make_tree


@pytest.fixture(scope="module")
def trees():
    return (
        make_tree(make_points(40, seed=31)),
        make_tree(make_points(50, seed=32)),
    )


SEQUENTIAL_OPERATORS = [
    IncrementalDistanceJoin,
    IncrementalDistanceSemiJoin,
    KNearestNeighborJoin,
    ReverseDistanceJoin,
    ReverseDistanceSemiJoin,
]


class TestSpecBasics:
    def test_frozen(self):
        spec = JoinSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.max_pairs = 5

    def test_evolve_returns_new_spec(self):
        spec = JoinSpec(max_pairs=10)
        changed = spec.evolve(max_pairs=None, node_policy="basic")
        assert spec.max_pairs == 10
        assert changed.max_pairs is None
        assert changed.node_policy == "basic"

    def test_picklable(self):
        spec = JoinSpec(queue="hybrid", queue_dt=3.0, max_pairs=7)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_coalesce_from_knobs(self):
        spec = JoinSpec.coalesce(None, {"max_pairs": 3})
        assert spec.max_pairs == 3

    def test_coalesce_overrides_spec(self):
        base = JoinSpec(max_pairs=3, node_policy="basic")
        spec = JoinSpec.coalesce(base, {"max_pairs": 9})
        assert spec.max_pairs == 9
        assert spec.node_policy == "basic"

    def test_coalesce_rejects_unknown_knob(self):
        with pytest.raises(TypeError):
            JoinSpec.coalesce(None, {"max_paris": 3})


class TestSingleValidationPoint:
    """Every operator rejects bad knobs through JoinSpec.validate."""

    @pytest.mark.parametrize("operator", SEQUENTIAL_OPERATORS)
    @pytest.mark.parametrize("bad", [
        {"tie_break": "sideways"},
        {"node_policy": "odd"},
        {"queue": "punchcard"},
        {"queue": "hybrid"},  # hybrid requires a positive D_T
        {"queue": "hybrid", "queue_dt": -1.0},
        {"leaf_mode": "indirect"},
        {"min_distance": -1.0},
        {"min_distance": 5.0, "max_distance": 1.0},
        {"max_pairs": 0},
        {"filter_strategy": "outside9"},
        {"dmax_strategy": "galactic"},
        {"dmax_strategy": "local", "filter_strategy": "outside"},
    ])
    def test_rejected_everywhere(self, trees, operator, bad):
        with pytest.raises(ValueError):
            operator(*trees, **bad)

    @pytest.mark.parametrize("operator", SEQUENTIAL_OPERATORS)
    def test_spec_positional_accepted(self, trees, operator):
        join = operator(*trees, JoinSpec(max_pairs=4))
        assert join.spec.max_pairs == 4

    def test_validate_directly(self):
        with pytest.raises(ValueError):
            JoinSpec(queue="hybrid").validate()
        JoinSpec(queue="hybrid", queue_dt=2.0).validate()


class TestBackCompatKeywords:
    """The old keyword constructors still work and agree with specs."""

    def test_join_kwargs_equal_spec(self, trees):
        by_kwargs = list(IncrementalDistanceJoin(
            *trees, max_pairs=25, node_policy="basic",
            tie_break="breadth_first",
        ))
        by_spec = list(IncrementalDistanceJoin(
            *trees, JoinSpec(
                max_pairs=25, node_policy="basic",
                tie_break="breadth_first",
            ),
        ))
        assert [
            (r.distance, r.oid1, r.oid2) for r in by_kwargs
        ] == [
            (r.distance, r.oid1, r.oid2) for r in by_spec
        ]

    def test_semi_join_kwargs_equal_spec(self, trees):
        by_kwargs = list(IncrementalDistanceSemiJoin(
            *trees, dmax_strategy="global_all",
        ))
        by_spec = list(IncrementalDistanceSemiJoin(
            *trees, JoinSpec(dmax_strategy="global_all"),
        ))
        assert [
            (r.oid1, r.oid2) for r in by_kwargs
        ] == [
            (r.oid1, r.oid2) for r in by_spec
        ]

    def test_spec_knobs_combine(self, trees):
        join = IncrementalDistanceJoin(
            *trees, JoinSpec(node_policy="basic"), max_pairs=5,
        )
        assert join.spec.node_policy == "basic"
        assert join.spec.max_pairs == 5
        assert len(list(join)) == 5

    def test_reverse_join_forces_descending(self, trees):
        join = ReverseDistanceJoin(*trees, JoinSpec(max_pairs=3))
        assert join.spec.descending
        assert join.descending


class TestSemiJoinDirectionGuard:
    def test_semi_join_rejects_descending(self, trees):
        with pytest.raises(ValueError, match="ReverseDistanceSemiJoin"):
            IncrementalDistanceSemiJoin(*trees, descending=True)

    def test_reverse_semi_join_is_the_blessed_path(self, trees):
        join = ReverseDistanceSemiJoin(*trees)
        assert join.spec.descending


class TestParallelValidation:
    """The engine validates the spec explicitly instead of silently
    ignoring unsupported knobs."""

    def test_queue_request_rejected(self, trees):
        with pytest.raises(ValueError, match="in-memory queue"):
            ParallelDistanceJoin(
                *trees, workers=2, backend="thread",
                queue="hybrid", queue_dt=2.0,
            )

    def test_descending_rejected(self, trees):
        with pytest.raises(ValueError, match="min-merge"):
            ParallelDistanceJoin(
                *trees, workers=2, backend="thread", descending=True,
            )

    def test_spec_threaded_to_tasks(self, trees):
        engine = ParallelDistanceJoin(
            *trees, JoinSpec(max_pairs=10, node_policy="basic"),
            workers=2, backend="thread",
        )
        assert engine.spec.max_pairs == 10
        for task in engine.tasks:
            assert task.spec.node_policy == "basic"

    def test_semi_join_workers_uncapped(self, trees):
        from repro.parallel.join import ParallelDistanceSemiJoin

        engine = ParallelDistanceSemiJoin(
            *trees, JoinSpec(max_pairs=5),
            workers=2, backend="thread",
        )
        # The parent bound stays; workers must stream unbounded so the
        # post-merge dedup sees every outer object's best partner.
        assert engine.max_pairs == 5
        for task in engine.tasks:
            assert task.spec.max_pairs is None
