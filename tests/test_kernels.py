"""Tests for the vectorized batch kernels (repro.kernels).

The load-bearing property is *bit*-identity: every batch kernel must
equal the scalar ``Metric`` evaluation exactly (``==``, not approx),
and a ``kernel="vector"`` join must reproduce a ``kernel="scalar"``
join down to row order, tie-break sequence, and every counter value
and peak.  See docs/KERNELS.md for why that is achievable.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.core.spec import JoinSpec
from repro.core.tiebreak import KeyMaker
from repro.errors import KernelError
from repro.geometry.metrics import (
    CHESSBOARD,
    EUCLIDEAN,
    MANHATTAN,
    MinkowskiMetric,
)
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.kernels import (
    DISABLE_ENV,
    kernels_available,
    resolve_kernels,
    support_reason,
)
from repro.util.counters import CounterRegistry

from tests.conftest import make_points, make_tree

requires_numpy = pytest.mark.skipif(
    not kernels_available(), reason="numpy not importable"
)

METRICS = [EUCLIDEAN, MANHATTAN, CHESSBOARD]

#: Wide-range coordinates including huge magnitudes and zero-area
#: rectangles (a == b collapses a side).
_coord = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False
)


def _rect_pair(a, b):
    return Rect(
        tuple(min(x, y) for x, y in zip(a, b)),
        tuple(max(x, y) for x, y in zip(a, b)),
    )


def coords(dim=2):
    return st.tuples(*([_coord] * dim))


def rects(dim=2):
    return st.builds(_rect_pair, coords(dim), coords(dim))


# ----------------------------------------------------------------------
# elementwise bit-identity of the kernels vs the scalar Metric
# ----------------------------------------------------------------------


@requires_numpy
class TestKernelBitIdentity:
    @pytest.mark.parametrize("metric", METRICS)
    @settings(max_examples=200, deadline=None)
    @given(rs=st.lists(st.tuples(rects(), rects()), min_size=1,
                       max_size=8))
    def test_mindist_matches_scalar_exactly(self, metric, rs):
        kern = resolve_kernels("vector", metric)
        lo1 = [r1.lo for r1, _ in rs]
        hi1 = [r1.hi for r1, _ in rs]
        lo2 = [r2.lo for _, r2 in rs]
        hi2 = [r2.hi for _, r2 in rs]
        batch = kern.mindist(lo1, hi1, lo2, hi2).tolist()
        scalar = [metric.mindist_rect_rect(r1, r2) for r1, r2 in rs]
        assert batch == scalar  # exact, not approx

    @pytest.mark.parametrize("metric", METRICS)
    @settings(max_examples=200, deadline=None)
    @given(rs=st.lists(st.tuples(rects(), rects()), min_size=1,
                       max_size=8))
    def test_maxdist_matches_scalar_exactly(self, metric, rs):
        kern = resolve_kernels("vector", metric)
        batch = kern.maxdist(
            [r1.lo for r1, _ in rs], [r1.hi for r1, _ in rs],
            [r2.lo for _, r2 in rs], [r2.hi for _, r2 in rs],
        ).tolist()
        scalar = [metric.maxdist_rect_rect(r1, r2) for r1, r2 in rs]
        assert batch == scalar

    @pytest.mark.parametrize("metric", METRICS)
    @settings(max_examples=200, deadline=None)
    @given(rs=st.lists(st.tuples(rects(), rects()), min_size=1,
                       max_size=8))
    def test_minmaxdist_matches_scalar_exactly(self, metric, rs):
        kern = resolve_kernels("vector", metric)
        batch = kern.minmaxdist(
            [r1.lo for r1, _ in rs], [r1.hi for r1, _ in rs],
            [r2.lo for _, r2 in rs], [r2.hi for _, r2 in rs],
        ).tolist()
        scalar = [metric.minmaxdist_rect_rect(r1, r2) for r1, r2 in rs]
        assert batch == scalar

    @pytest.mark.parametrize("metric", METRICS)
    @settings(max_examples=200, deadline=None)
    @given(ps=st.lists(st.tuples(coords(), coords()), min_size=1,
                       max_size=8))
    def test_point_distance_matches_scalar_exactly(self, metric, ps):
        kern = resolve_kernels("vector", metric)
        batch = kern.point_distance(
            [a for a, _ in ps], [b for _, b in ps]
        ).tolist()
        scalar = [
            metric.distance(Point(a), Point(b)) for a, b in ps
        ]
        assert batch == scalar

    def test_single_rect_broadcasts_against_batch(self):
        kern = resolve_kernels("vector", EUCLIDEAN)
        query = Rect((0.0, 0.0), (1.0, 1.0))
        others = [
            Rect((2.0, 0.0), (3.0, 1.0)),
            Rect((0.5, 0.5), (0.75, 0.75)),
            Rect((-4.0, -4.0), (-3.0, -3.0)),
        ]
        batch = kern.mindist(
            [r.lo for r in others], [r.hi for r in others],
            query.lo, query.hi,
        ).tolist()
        scalar = [
            EUCLIDEAN.mindist_rect_rect(r, query) for r in others
        ]
        assert batch == scalar

    def test_degenerate_zero_area_and_infinite(self):
        kern = resolve_kernels("vector", EUCLIDEAN)
        inf = math.inf
        cases = [
            (Rect((1.0, 1.0), (1.0, 1.0)), Rect((1.0, 1.0), (1.0, 1.0))),
            (Rect((0.0, 0.0), (0.0, 5.0)), Rect((3.0, 1.0), (3.0, 1.0))),
            (Rect((-inf, 0.0), (0.0, 0.0)), Rect((1.0, 0.0), (inf, 0.0))),
            (Rect((-inf, -inf), (inf, inf)), Rect((0.0, 0.0), (1.0, 1.0))),
        ]
        for name in ("mindist", "maxdist", "minmaxdist"):
            batch = getattr(kern, name)(
                [a.lo for a, _ in cases], [a.hi for a, _ in cases],
                [b.lo for _, b in cases], [b.hi for _, b in cases],
            ).tolist()
            scalar = [
                getattr(EUCLIDEAN, f"{name}_rect_rect")(a, b)
                for a, b in cases
            ]
            for got, want in zip(batch, scalar):
                assert got == want or (
                    math.isnan(got) and math.isnan(want)
                )


# ----------------------------------------------------------------------
# kernel resolution and the spec knob
# ----------------------------------------------------------------------


class TestResolution:
    def test_scalar_mode_never_resolves(self):
        assert resolve_kernels("scalar", EUCLIDEAN) is None

    @requires_numpy
    def test_auto_resolves_supported_metrics(self):
        for metric in METRICS:
            assert resolve_kernels("auto", metric) is not None

    def test_general_p_unsupported(self):
        metric = MinkowskiMetric(3.0)
        assert support_reason(metric) is not None
        assert resolve_kernels("auto", metric) is None
        if kernels_available():
            with pytest.raises(KernelError):
                resolve_kernels("vector", metric)

    def test_vector_without_numpy_raises(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert not kernels_available()
        with pytest.raises(KernelError):
            resolve_kernels("vector", EUCLIDEAN)

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert resolve_kernels("auto", EUCLIDEAN) is None
        join = IncrementalDistanceJoin(
            make_tree(make_points(10, seed=1)),
            make_tree(make_points(10, seed=2)),
            JoinSpec(kernel="auto"),
            counters=CounterRegistry(),
        )
        assert join._kern is None
        assert len(list(join)) == 100

    def test_vector_join_without_numpy_raises(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        with pytest.raises(KernelError):
            IncrementalDistanceJoin(
                make_tree(make_points(5, seed=1)),
                make_tree(make_points(5, seed=2)),
                JoinSpec(kernel="vector"),
                counters=CounterRegistry(),
            )

    def test_spec_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            JoinSpec(kernel="simd").validate()


# ----------------------------------------------------------------------
# the columnar mirror and its invalidation
# ----------------------------------------------------------------------


@requires_numpy
class TestEntrySoA:
    def test_mirror_matches_entries(self):
        tree = make_tree(make_points(40, seed=7))
        node = tree.read_node(tree.root_id)
        soa = node.entries_soa()
        assert soa.n == len(node.entries)
        for i, entry in enumerate(node.entries):
            assert tuple(soa.lo[i]) == entry.rect.lo
            assert tuple(soa.hi[i]) == entry.rect.hi

    def test_leaf_points_mirrored(self):
        points = make_points(6, seed=3)
        tree = make_tree(points, max_entries=8)
        node = tree.read_node(tree.root_id)
        if node.level == 0:
            soa = node.entries_soa()
            assert soa.pts is not None
            assert soa.pts.shape == (len(points), 2)

    def test_cache_reused_until_mutation(self):
        tree = make_tree(make_points(20, seed=9))
        node = tree.read_node(tree.root_id)
        first = node.entries_soa()
        assert node.entries_soa() is first
        tree.insert(obj=Point((1.5, 2.5)))
        root = tree.read_node(tree.root_id)
        assert root.entries_soa() is not first

    def test_delete_invalidates(self):
        points = make_points(10, seed=13)
        tree = make_tree(points, max_entries=16)
        node = tree.read_node(tree.root_id)
        before = node.entries_soa()
        tree.delete(oid=0, rect=Rect.from_point(points[0]))
        root = tree.read_node(tree.root_id)
        after = root.entries_soa()
        assert after is not before
        assert after.n == before.n - 1


# ----------------------------------------------------------------------
# whole-join bit-identity (rows, tie order, counters, peaks)
# ----------------------------------------------------------------------


def _run(operator, knobs, kernel, limit=400):
    # Fresh trees per run: a shared tree's buffer pool would hand the
    # second run warm node reads and skew node_io.
    counters = CounterRegistry()
    tree_a = make_tree(make_points(60, seed=11), counters=counters)
    tree_b = make_tree(make_points(80, seed=22), counters=counters)
    join = operator(
        tree_a, tree_b, JoinSpec(kernel=kernel, **knobs),
        counters=counters,
    )
    rows = []
    for r in join:
        rows.append((r.distance, r.oid1, r.oid2))
        if len(rows) >= limit:
            break
    snap = counters.full_snapshot()
    return rows, dict(snap.values), dict(snap.peaks)


JOIN_CONFIGS = [
    ("even_depth", IncrementalDistanceJoin,
     dict(node_policy="even", tie_break="depth_first")),
    ("even_breadth", IncrementalDistanceJoin,
     dict(node_policy="even", tie_break="breadth_first")),
    ("basic", IncrementalDistanceJoin,
     dict(node_policy="basic")),
    ("simultaneous", IncrementalDistanceJoin,
     dict(node_policy="simultaneous")),
    ("ranged", IncrementalDistanceJoin,
     dict(min_distance=5.0, max_distance=40.0)),
    ("estimated", IncrementalDistanceJoin,
     dict(max_pairs=150, estimate=True)),
    ("manhattan", IncrementalDistanceJoin,
     dict(metric=MANHATTAN)),
    ("chessboard_sim", IncrementalDistanceJoin,
     dict(metric=CHESSBOARD, node_policy="simultaneous")),
    ("semi_local", IncrementalDistanceSemiJoin,
     dict(dmax_strategy="local")),
    ("semi_global", IncrementalDistanceSemiJoin,
     dict(dmax_strategy="global_all")),
]


@requires_numpy
class TestJoinBitIdentity:
    @pytest.mark.parametrize(
        "name,operator,knobs",
        JOIN_CONFIGS,
        ids=[c[0] for c in JOIN_CONFIGS],
    )
    def test_vector_equals_scalar(self, name, operator, knobs):
        scalar = _run(operator, knobs, "scalar")
        vector = _run(operator, knobs, "vector")
        assert vector[0] == scalar[0]  # rows, order included
        assert vector[1] == scalar[1]  # counter values
        assert vector[2] == scalar[2]  # counter peaks

    def test_full_result_identical(self):
        # Drain the whole join, not just a prefix: the tail is where
        # tie-break sequence drift would surface.
        rows_s = _run(IncrementalDistanceJoin, {}, "scalar",
                      limit=10_000)[0]
        rows_v = _run(IncrementalDistanceJoin, {}, "vector",
                      limit=10_000)[0]
        assert len(rows_s) == 60 * 80
        assert rows_v == rows_s


# ----------------------------------------------------------------------
# bulk-push plumbing
# ----------------------------------------------------------------------


class TestBulkPush:
    def test_pairing_heap_push_many_matches_push(self):
        from repro.core.heap import PairingHeap

        keys = [5, 1, 3, 3, 2, 8, 1, 9, 0, 3]
        one = PairingHeap()
        for i, k in enumerate(keys):
            one.push(k, i)
        bulk = PairingHeap()
        bulk.push_many([(k, i) for i, k in enumerate(keys)])
        assert len(bulk) == len(one)
        drained_one = [one.pop() for __ in range(len(keys))]
        drained_bulk = [bulk.pop() for __ in range(len(keys))]
        # Equal keys included: bulk insertion builds the identical
        # heap structure, so even tie order matches.
        assert drained_bulk == drained_one

    def test_key_batch_matches_per_pair_keys(self):
        from repro.core.pairs import NODE, Item, Pair

        rect = Rect((0.0, 0.0), (1.0, 1.0))
        for tie in ("depth_first", "breadth_first"):
            for descending in (False, True):
                pairs = [
                    Pair(Item(NODE, rect, node_id=i, level=2),
                         Item(NODE, rect, node_id=9, level=1),
                         float(i))
                    for i in range(5)
                ]
                a = KeyMaker(tie, descending=descending)
                b = KeyMaker(tie, descending=descending)
                singles = [a.key(p, p.distance) for p in pairs]
                batch = b.key_batch(pairs[0], [p.distance for p in pairs])
                assert batch == singles
                assert a.seq == b.seq
