"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestGenerate:
    def test_generate_uniform(self, tmp_path, capsys):
        out = str(tmp_path / "pts.csv")
        code, stdout, __ = run(
            capsys, "generate", "uniform", "--count", "25", "--out", out
        )
        assert code == 0
        assert "25 points" in stdout
        lines = open(out).read().strip().splitlines()
        assert len(lines) == 25
        assert all(len(line.split(",")) == 2 for line in lines)

    def test_generate_water_roads(self, tmp_path, capsys):
        for kind in ("water", "roads"):
            out = str(tmp_path / f"{kind}.csv")
            code, *__ = run(
                capsys, "generate", kind, "--count", "40", "--out", out
            )
            assert code == 0

    def test_generate_deterministic(self, tmp_path, capsys):
        a = str(tmp_path / "a.csv")
        b = str(tmp_path / "b.csv")
        run(capsys, "generate", "clusters", "--count", "30",
            "--seed", "7", "--out", a)
        run(capsys, "generate", "clusters", "--count", "30",
            "--seed", "7", "--out", b)
        assert open(a).read() == open(b).read()


class TestIndexAndInfo:
    @pytest.fixture
    def csv_file(self, tmp_path, capsys):
        out = str(tmp_path / "pts.csv")
        run(capsys, "generate", "uniform", "--count", "120",
            "--out", out)
        return out

    def test_index_and_info(self, tmp_path, capsys, csv_file):
        snapshot = str(tmp_path / "tree.json")
        code, stdout, __ = run(
            capsys, "index", csv_file, "--out", snapshot,
            "--fanout", "8",
        )
        assert code == 0
        assert "indexed 120 points" in stdout
        code, stdout, __ = run(capsys, "info", snapshot)
        assert code == 0
        assert "objects:     120" in stdout
        assert "RStarTree" in stdout

    def test_index_guttman(self, tmp_path, capsys, csv_file):
        snapshot = str(tmp_path / "g.json")
        code, stdout, __ = run(
            capsys, "index", csv_file, "--out", snapshot,
            "--fanout", "8", "--guttman",
        )
        assert code == 0
        assert "GuttmanRTree" in stdout

    def test_bad_csv_row(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("1,2\nnot,a,point\n")
        with pytest.raises(SystemExit):
            main(["index", str(bad), "--out", str(tmp_path / "x.json")])


class TestQueryAndExplain:
    @pytest.fixture
    def sources(self, tmp_path, capsys):
        a = str(tmp_path / "a.csv")
        b = str(tmp_path / "b.csv")
        run(capsys, "generate", "uniform", "--count", "50",
            "--seed", "1", "--out", a)
        run(capsys, "generate", "uniform", "--count", "60",
            "--seed", "2", "--out", b)
        return a, b

    SQL = (
        "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
        "ORDER BY d STOP AFTER 5"
    )

    def test_query_csv_relations(self, capsys, sources):
        a, b = sources
        code, stdout, stderr = run(
            capsys, "query", self.SQL,
            "--relation", f"a={a}", "--relation", f"b={b}",
        )
        assert code == 0
        rows = stdout.strip().splitlines()
        assert len(rows) == 5
        distances = [float(r.split("\t")[0]) for r in rows]
        assert distances == sorted(distances)
        assert "5 row(s)" in stderr

    def test_query_snapshot_relation(self, tmp_path, capsys, sources):
        a, b = sources
        snapshot = str(tmp_path / "a.tree")
        run(capsys, "index", a, "--out", snapshot, "--fanout", "8")
        code, stdout, __ = run(
            capsys, "query", self.SQL,
            "--relation", f"a={snapshot}", "--relation", f"b={b}",
        )
        assert code == 0
        assert len(stdout.strip().splitlines()) == 5

    def test_query_limit_flag(self, capsys, sources):
        a, b = sources
        sql = (
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "ORDER BY d"
        )
        code, stdout, __ = run(
            capsys, "query", sql, "--relation", f"a={a}",
            "--relation", f"b={b}", "--limit", "3",
        )
        assert code == 0
        assert len(stdout.strip().splitlines()) == 3

    def test_explain(self, capsys, sources):
        a, b = sources
        code, stdout, __ = run(
            capsys, "explain", self.SQL,
            "--relation", f"a={a}", "--relation", f"b={b}",
        )
        assert code == 0
        assert "IncrementalDistanceJoin" in stdout
        assert "est. cost" in stdout

    def test_bad_relation_argument(self, capsys, sources):
        with pytest.raises(SystemExit):
            main(["query", self.SQL, "--relation", "nonsense"])

    def test_syntax_error_is_reported(self, capsys, sources):
        a, b = sources
        code, __, stderr = run(
            capsys, "query", "SELECT banana",
            "--relation", f"a={a}", "--relation", f"b={b}",
        )
        assert code == 1
        assert "error:" in stderr

    def test_missing_file_is_reported(self, capsys):
        code, __, stderr = run(
            capsys, "query", self.SQL,
            "--relation", "a=/does/not/exist.csv",
        )
        assert code == 1
        assert "error:" in stderr


class TestBenchCommand:
    def test_unknown_benchmark_reported(self, capsys):
        code, __, stderr = run(capsys, "bench", "not_a_real_bench")
        assert code == 1
        assert "no benchmark named" in stderr

    def test_bench_json_passthrough(self, capsys):
        import json

        code, stdout, __ = run(
            capsys, "bench", "table1", "--scale", "0.002", "--json",
        )
        assert code == 0
        payload = json.loads(stdout)
        assert payload["rows"]
        assert payload["rows"][0]["Pairs"] == 1

    def test_bench_profile_writes_pstats(self, tmp_path, capsys):
        import pstats

        profile = str(tmp_path / "bench.prof")
        code, __, stderr = run(
            capsys, "bench", "table1", "--scale", "0.002",
            "--profile", profile,
        )
        assert code == 0
        assert "profile ->" in stderr
        stats = pstats.Stats(profile)
        assert stats.total_calls > 0


class TestQueryTraceAndProfile:
    SQL = TestQueryAndExplain.SQL

    @pytest.fixture
    def sources(self, tmp_path, capsys):
        a = str(tmp_path / "a.csv")
        b = str(tmp_path / "b.csv")
        run(capsys, "generate", "uniform", "--count", "50",
            "--seed", "1", "--out", a)
        run(capsys, "generate", "uniform", "--count", "60",
            "--seed", "2", "--out", b)
        return a, b

    def test_query_trace_export(self, tmp_path, capsys, sources):
        import json

        a, b = sources
        trace = str(tmp_path / "query_trace.json")
        code, stdout, stderr = run(
            capsys, "query", self.SQL,
            "--relation", f"a={a}", "--relation", f"b={b}",
            "--trace", trace,
        )
        assert code == 0
        assert len(stdout.strip().splitlines()) == 5
        assert "trace ->" in stderr
        payload = json.loads(open(trace).read())
        events = payload["traceEvents"]
        assert payload["metadata"]["sql"] == self.SQL
        # Real per-occurrence spans: join.init / join.expand phases.
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert any(name.startswith("join.") for name in names)

    def test_query_profile_writes_pstats(self, tmp_path, capsys,
                                         sources):
        import pstats

        a, b = sources
        profile = str(tmp_path / "query.prof")
        code, __, stderr = run(
            capsys, "query", self.SQL,
            "--relation", f"a={a}", "--relation", f"b={b}",
            "--profile", profile,
        )
        assert code == 0
        assert "profile ->" in stderr
        stats = pstats.Stats(profile)
        assert stats.total_calls > 0

    def test_explain_analyze_profile(self, tmp_path, capsys, sources):
        import pstats

        a, b = sources
        profile = str(tmp_path / "explain.prof")
        code, stdout, __ = run(
            capsys, "query", "EXPLAIN ANALYZE " + self.SQL,
            "--relation", f"a={a}", "--relation", f"b={b}",
            "--profile", profile,
        )
        assert code == 0
        assert pstats.Stats(profile).total_calls > 0
