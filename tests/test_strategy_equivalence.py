"""Property: the two predicate plans are semantically equivalent.

The pipeline plan (predicates pushed into the join as a pair filter)
and the prefilter plan (predicates materialized into temporary
indexes) must return the same rows for any query -- same object-id
pairs, same distances, and the same order up to permutations within
equal-distance tie groups (the two plans may traverse ties in
different orders, which the paper's ordering contract permits)."""

import operator
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry.point import Point
from repro.query.executor import Database
from repro.util.counters import CounterRegistry

OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
}

SQL = (
    "SELECT * FROM lhs, rhs, DISTANCE(lhs.geom, rhs.geom) AS d "
    "WHERE lhs.score {op1} {cut1} AND rhs.score {op2} {cut2} "
    "ORDER BY d STOP AFTER {stop}"
)

point_lists = st.lists(
    st.tuples(
        st.floats(0, 50, allow_nan=False),
        st.floats(0, 50, allow_nan=False),
    ),
    min_size=2,
    max_size=20,
)


def _tie_groups(rows):
    """Rows bucketed by exact distance, each bucket unordered.

    Both plans compute each pair's distance with the same metric over
    the same geometries, so equal distances are bitwise equal and the
    grouping needs no tolerance.
    """
    groups = []
    for row in rows:
        key = (row.oid1, row.oid2)
        if groups and groups[-1][0] == row.d:
            groups[-1][1].add(key)
        else:
            groups.append((row.d, {key}))
    return [(d, frozenset(keys)) for d, keys in groups]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    point_lists,
    point_lists,
    st.integers(0, 10_000),
    st.sampled_from(sorted(OPS)),
    st.integers(0, 100),
    st.sampled_from(["<", "<=", ">", ">="]),
    st.integers(0, 100),
    st.integers(1, 30),
)
def test_pipeline_and_prefilter_agree(
    raw_a, raw_b, seed, op1, cut1, op2, cut2, stop
):
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    rng = random.Random(seed)
    scores_a = [rng.randint(0, 100) for __ in points_a]
    scores_b = [rng.randint(0, 100) for __ in points_b]
    db = Database(counters=CounterRegistry())
    db.create_relation("lhs", points_a,
                       attributes={"score": scores_a})
    db.create_relation("rhs", points_b,
                       attributes={"score": scores_b})
    sql = SQL.format(op1=op1, cut1=cut1, op2=op2, cut2=cut2,
                     stop=stop)

    pipeline = list(db.execute(sql, strategy="pipeline"))
    prefilter = list(db.execute(sql, strategy="prefilter"))

    assert _tie_groups(pipeline) == _tie_groups(prefilter)
    # Both respect the predicate, not just each other: cross-check
    # the pipeline rows against the raw attribute arrays.
    for row in pipeline:
        assert OPS[op1](scores_a[row.oid1], cut1)
        assert OPS[op2](scores_b[row.oid2], cut2)
