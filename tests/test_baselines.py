"""Tests for the non-incremental baselines and their equivalence to
the incremental algorithms."""

import pytest

from repro.baselines.nested_loop import nested_loop_join, nested_loop_join_iter
from repro.baselines.nn_semijoin import nn_semi_join
from repro.baselines.within_join import within_join, within_join_adaptive
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.util.counters import CounterRegistry

from tests.conftest import (
    brute_force_nn,
    brute_force_pairs,
    make_points,
    make_tree,
)


@pytest.fixture(scope="module")
def base_setup():
    points_a = make_points(30, seed=81)
    points_b = make_points(40, seed=82)
    return (
        points_a,
        points_b,
        make_tree(points_a),
        make_tree(points_b),
        brute_force_pairs(points_a, points_b),
    )


class TestNestedLoop:
    def test_full_join(self, base_setup):
        points_a, points_b, __, ___, truth = base_setup
        got = nested_loop_join(points_a, points_b)
        assert len(got) == len(truth)
        assert [r.distance for r in got] == pytest.approx(
            [t[0] for t in truth]
        )

    def test_max_pairs_bounded_heap(self, base_setup):
        points_a, points_b, __, ___, truth = base_setup
        got = nested_loop_join(points_a, points_b, max_pairs=17)
        assert len(got) == 17
        assert [r.distance for r in got] == pytest.approx(
            [t[0] for t in truth[:17]]
        )

    def test_distance_range(self, base_setup):
        points_a, points_b, __, ___, truth = base_setup
        got = nested_loop_join(
            points_a, points_b, min_distance=10.0, max_distance=20.0
        )
        expected = [t for t in truth if 10.0 <= t[0] <= 20.0]
        assert len(got) == len(expected)

    def test_counts_all_distances(self, base_setup):
        points_a, points_b, *__ = base_setup
        counters = CounterRegistry()
        nested_loop_join(points_a, points_b, counters=counters)
        assert counters.value("dist_calcs") == len(points_a) * len(points_b)

    def test_iter_variant_pays_everything_up_front(self, base_setup):
        points_a, points_b, *__ = base_setup
        counters = CounterRegistry()
        iterator = nested_loop_join_iter(
            points_a, points_b, counters=counters
        )
        next(iterator)
        # Even one result costs the full Cartesian product.
        assert counters.value("dist_calcs") == len(points_a) * len(points_b)

    def test_agrees_with_incremental(self, base_setup):
        points_a, points_b, tree_a, tree_b, __ = base_setup
        incremental = list(IncrementalDistanceJoin(
            tree_a, tree_b, max_pairs=50, counters=CounterRegistry()
        ))
        brute = nested_loop_join(points_a, points_b, max_pairs=50)
        assert [r.distance for r in incremental] == pytest.approx(
            [r.distance for r in brute]
        )


class TestNNSemiJoin:
    def test_matches_brute_force(self, base_setup):
        points_a, points_b, __, tree_b, ___ = base_setup
        nn = brute_force_nn(points_a, points_b)
        got = nn_semi_join(list(enumerate(points_a)), tree_b)
        assert len(got) == len(points_a)
        for result in got:
            assert result.distance == pytest.approx(nn[result.oid1][0])

    def test_sorted_output(self, base_setup):
        points_a, __, ___, tree_b, ____ = base_setup
        got = nn_semi_join(list(enumerate(points_a)), tree_b)
        ds = [r.distance for r in got]
        assert ds == sorted(ds)

    def test_max_pairs_truncates(self, base_setup):
        points_a, __, ___, tree_b, ____ = base_setup
        got = nn_semi_join(list(enumerate(points_a)), tree_b, max_pairs=5)
        assert len(got) == 5

    def test_agrees_with_incremental_semi_join(self, base_setup):
        points_a, __, tree_a, tree_b, ___ = base_setup
        incremental = list(IncrementalDistanceSemiJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ))
        baseline = nn_semi_join(list(enumerate(points_a)), tree_b)
        assert [r.distance for r in incremental] == pytest.approx(
            [r.distance for r in baseline]
        )

    def test_empty_outer(self, base_setup):
        __, ___, ____, tree_b, _____ = base_setup
        assert nn_semi_join([], tree_b) == []


class TestWithinJoin:
    def test_matches_brute_force(self, base_setup):
        __, ___, tree_a, tree_b, truth = base_setup
        got = within_join(tree_a, tree_b, distance=15.0)
        expected = [t for t in truth if t[0] <= 15.0]
        assert len(got) == len(expected)
        assert [r.distance for r in got] == pytest.approx(
            [t[0] for t in expected]
        )

    def test_min_distance(self, base_setup):
        __, ___, tree_a, tree_b, truth = base_setup
        got = within_join(
            tree_a, tree_b, distance=15.0, min_distance=5.0
        )
        expected = [t for t in truth if 5.0 <= t[0] <= 15.0]
        assert len(got) == len(expected)

    def test_zero_distance_finds_coincident_only(self, base_setup):
        __, ___, tree_a, tree_b, truth = base_setup
        got = within_join(tree_a, tree_b, distance=0.0)
        expected = [t for t in truth if t[0] == 0.0]
        assert len(got) == len(expected)

    def test_adaptive_restarts_until_enough(self, base_setup):
        __, ___, tree_a, tree_b, truth = base_setup
        counters = CounterRegistry()
        got = within_join_adaptive(
            tree_a, tree_b, max_pairs=20, initial_distance=0.01,
            counters=counters,
        )
        assert len(got) == 20
        assert [r.distance for r in got] == pytest.approx(
            [t[0] for t in truth[:20]]
        )
        assert counters.value("within_join_restarts") > 0

    def test_empty_tree(self):
        from repro.rtree.rstar import RStarTree
        empty = RStarTree(dim=2, max_entries=4)
        other = make_tree(make_points(5, seed=1))
        assert within_join(empty, other, distance=10.0) == []
