"""End-to-end property tests across configurations, plus failure
injection for the consistency checker."""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.pairs import PairDistance
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.errors import ConsistencyError
from repro.geometry.metrics import (
    CHESSBOARD,
    EUCLIDEAN,
    MANHATTAN,
    Metric,
)
from repro.geometry.point import Point
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_pairs, make_points, make_tree

point_lists = st.lists(
    st.tuples(st.floats(0, 100), st.floats(0, 100)),
    min_size=1,
    max_size=25,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    point_lists,
    point_lists,
    st.sampled_from([EUCLIDEAN, MANHATTAN, CHESSBOARD]),
    st.floats(0.5, 60.0),
    st.integers(1, 50),
)
def test_property_full_configuration_matrix(
    raw_a, raw_b, metric, queue_dt, max_pairs
):
    """Property: hybrid queue + estimation + any metric still yields
    exactly the brute-force prefix."""
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    join = IncrementalDistanceJoin(
        make_tree(points_a, max_entries=4),
        make_tree(points_b, max_entries=4),
        metric=metric,
        queue="hybrid",
        queue_dt=queue_dt,
        max_pairs=max_pairs,
        counters=CounterRegistry(),
    )
    got = [r.distance for r in join]
    truth = [
        t[0] for t in brute_force_pairs(points_a, points_b, metric)
    ][:max_pairs]
    assert len(got) == len(truth)
    for g, t in zip(got, truth):
        assert math.isclose(g, t, rel_tol=1e-9, abs_tol=1e-9)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    point_lists,
    point_lists,
    st.floats(0.0, 40.0),
    st.floats(0.0, 60.0),
)
def test_property_range_with_estimation(raw_a, raw_b, dmin, width):
    """Property: [dmin, dmax] plus max_pairs plus estimation returns
    exactly the in-range brute-force prefix."""
    dmax = dmin + width
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    join = IncrementalDistanceJoin(
        make_tree(points_a, max_entries=4),
        make_tree(points_b, max_entries=4),
        min_distance=dmin,
        max_distance=dmax,
        max_pairs=10,
        counters=CounterRegistry(),
    )
    got = [r.distance for r in join]
    truth = [
        t[0]
        for t in brute_force_pairs(points_a, points_b)
        if dmin <= t[0] <= dmax
    ][:10]
    assert len(got) == len(truth)
    for g, t in zip(got, truth):
        assert math.isclose(g, t, rel_tol=1e-9, abs_tol=1e-9)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(point_lists, point_lists, st.booleans())
def test_property_aggressive_estimation_never_loses_results(
    raw_a, raw_b, semi
):
    """Property: the aggressive estimator (with restarts) still
    produces the exact result."""
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    tree_a = make_tree(points_a, max_entries=4)
    tree_b = make_tree(points_b, max_entries=4)
    k = min(8, len(points_a) * len(points_b))
    if semi:
        k = min(8, len(points_a))
        join = IncrementalDistanceSemiJoin(
            tree_a, tree_b, max_pairs=k, aggressive=True,
            counters=CounterRegistry(),
        )
        truth = sorted(
            min(EUCLIDEAN.distance(a, b) for b in points_b)
            for a in points_a
        )[:k]
    else:
        join = IncrementalDistanceJoin(
            tree_a, tree_b, max_pairs=k, aggressive=True,
            counters=CounterRegistry(),
        )
        truth = [
            t[0] for t in brute_force_pairs(points_a, points_b)
        ][:k]
    got = [r.distance for r in join]
    assert len(got) == len(truth)
    for g, t in zip(got, truth):
        assert math.isclose(g, t, rel_tol=1e-9, abs_tol=1e-9)


class _BrokenMetric(Metric):
    """A deliberately inconsistent 'metric': rectangle bounds report a
    distance larger than the true point distance, violating the
    consistency contract the paper requires."""

    name = "broken"

    def combine(self, deltas):
        return sum(deltas)

    def mindist_rect_rect(self, r1, r2):
        honest = super().mindist_rect_rect(r1, r2)
        # Inflate node-level bounds: children will look *closer* than
        # the pair that generated them.
        if not (r1.is_degenerate() and r2.is_degenerate()):
            return honest + 10.0
        return honest


class TestConsistencyInjection:
    def test_broken_metric_detected(self):
        points_a = make_points(40, seed=201)
        points_b = make_points(40, seed=202)
        join = IncrementalDistanceJoin(
            make_tree(points_a),
            make_tree(points_b),
            metric=_BrokenMetric(),
            check_consistency=True,
            counters=CounterRegistry(),
        )
        with pytest.raises(ConsistencyError):
            for __ in range(500):
                next(join)

    def test_honest_metric_passes_checker(self):
        points_a = make_points(40, seed=203)
        points_b = make_points(40, seed=204)
        join = IncrementalDistanceJoin(
            make_tree(points_a),
            make_tree(points_b),
            check_consistency=True,
            counters=CounterRegistry(),
        )
        results = [next(join) for __ in range(100)]
        assert len(results) == 100

    def test_pair_distance_checker_unit(self):
        pd = PairDistance(EUCLIDEAN, check_consistency=True)
        from repro.core.pairs import OBJ, Item, Pair
        from repro.geometry.rectangle import Rect
        parent = Pair(
            Item(OBJ, Rect((0, 0), (0, 0)), oid=0),
            Item(OBJ, Rect((5, 0), (5, 0)), oid=1),
            5.0,
        )
        with pytest.raises(ConsistencyError):
            pd.check_child(parent, 1.0)
