"""Tests for the exception hierarchy contract.

Library users catch ``ReproError`` to get everything this package
raises; these tests pin that contract and the error-message quality.
"""

import pytest

from repro.errors import (
    ConsistencyError,
    DimensionMismatchError,
    GeometryError,
    JoinError,
    PageNotFoundError,
    QueryError,
    QuerySyntaxError,
    ReproError,
    RestartRequired,
    StorageError,
    TreeError,
    TreeInvariantError,
)

LEAVES = [
    DimensionMismatchError(2, 3),
    PageNotFoundError(7),
    TreeInvariantError("x"),
    QuerySyntaxError("bad", 5),
    RestartRequired("restart"),
    ConsistencyError("inconsistent"),
    GeometryError("geo"),
    StorageError("store"),
    TreeError("tree"),
    QueryError("query"),
    JoinError("join"),
]


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for error in LEAVES:
            assert isinstance(error, ReproError)

    def test_specific_parentage(self):
        assert isinstance(DimensionMismatchError(2, 3), GeometryError)
        assert isinstance(PageNotFoundError(1), StorageError)
        assert isinstance(TreeInvariantError("x"), TreeError)
        assert isinstance(QuerySyntaxError("x"), QueryError)
        assert isinstance(RestartRequired("x"), JoinError)
        assert isinstance(ConsistencyError("x"), JoinError)

    def test_repro_error_is_an_exception(self):
        with pytest.raises(Exception):
            raise ReproError("boom")


class TestMessages:
    def test_dimension_mismatch_carries_dims(self):
        error = DimensionMismatchError(2, 3)
        assert error.expected == 2
        assert error.got == 3
        assert "2" in str(error) and "3" in str(error)

    def test_page_not_found_carries_id(self):
        error = PageNotFoundError(42)
        assert error.page_id == 42
        assert "42" in str(error)

    def test_query_syntax_position(self):
        error = QuerySyntaxError("unexpected", 17)
        assert error.position == 17
        assert "position 17" in str(error)

    def test_query_syntax_without_position(self):
        error = QuerySyntaxError("unexpected")
        assert error.position == -1
        assert "position" not in str(error)


class TestOneCatchGetsAll:
    def test_geometry_path(self):
        from repro.geometry.rectangle import Rect
        with pytest.raises(ReproError):
            Rect((1, 0), (0, 1))

    def test_storage_path(self):
        from repro.storage.pager import PageStore
        with pytest.raises(ReproError):
            PageStore().read(99)

    def test_query_path(self):
        from repro.query.parser import parse
        with pytest.raises(ReproError):
            parse("SELECT banana")

    def test_join_path(self):
        from repro.core.distance_join import IncrementalDistanceJoin
        from repro.rtree.rstar import RStarTree
        with pytest.raises(ReproError):
            IncrementalDistanceJoin(
                RStarTree(dim=2), RStarTree(dim=3)
            )
