"""Unit + property tests for metrics and the MINDIST / MAXDIST /
MINMAXDIST bounds.

The property tests verify exactly the contracts the join algorithms'
correctness rests on (paper Section 2.2): MINDIST lower-bounds and
MAXDIST upper-bounds all point-pair distances, MINMAXDIST sits between
them, and all bounds are *consistent* under containment (shrinking a
rectangle can only increase MINDIST and decrease MAXDIST).
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.metrics import (
    CHESSBOARD,
    EUCLIDEAN,
    MANHATTAN,
    MinkowskiMetric,
)
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

METRICS = [EUCLIDEAN, MANHATTAN, CHESSBOARD, MinkowskiMetric(3.0)]


def coords(dim=2):
    return st.tuples(*([st.floats(-50, 50)] * dim))


def points(dim=2):
    return st.builds(Point, coords(dim))


def rects(dim=2):
    return st.builds(
        lambda a, b: Rect(
            tuple(min(x, y) for x, y in zip(a, b)),
            tuple(max(x, y) for x, y in zip(a, b)),
        ),
        coords(dim),
        coords(dim),
    )


def sample_inside(rect, fractions):
    """A point inside ``rect`` at the given per-dim fractions."""
    return Point(
        lo + f * (hi - lo)
        for lo, hi, f in zip(rect.lo, rect.hi, fractions)
    )


class TestPointMetrics:
    def test_euclidean(self):
        assert EUCLIDEAN.distance(Point((0, 0)), Point((3, 4))) == 5.0

    def test_manhattan(self):
        assert MANHATTAN.distance(Point((0, 0)), Point((3, 4))) == 7.0

    def test_chessboard(self):
        assert CHESSBOARD.distance(Point((0, 0)), Point((3, 4))) == 4.0

    def test_minkowski_general(self):
        m = MinkowskiMetric(3)
        assert m.distance(Point((0,)), Point((2,))) == pytest.approx(2.0)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            MinkowskiMetric(0.5)

    def test_names(self):
        assert EUCLIDEAN.name == "euclidean"
        assert MANHATTAN.name == "manhattan"
        assert CHESSBOARD.name == "chessboard"

    def test_equality(self):
        assert MinkowskiMetric(2) == EUCLIDEAN
        assert MinkowskiMetric(2) != MANHATTAN


class TestRectBounds:
    def test_mindist_point_inside_is_zero(self):
        r = Rect((0, 0), (2, 2))
        assert EUCLIDEAN.mindist_point_rect(Point((1, 1)), r) == 0.0

    def test_mindist_point_outside(self):
        r = Rect((0, 0), (2, 2))
        assert EUCLIDEAN.mindist_point_rect(Point((5, 2)), r) == 3.0
        assert EUCLIDEAN.mindist_point_rect(Point((5, 6)), r) == 5.0

    def test_maxdist_point(self):
        r = Rect((0, 0), (2, 2))
        assert EUCLIDEAN.maxdist_point_rect(Point((0, 0)), r) == pytest.approx(
            math.sqrt(8)
        )

    def test_mindist_rects_disjoint(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((4, 5), (6, 7))
        assert EUCLIDEAN.mindist_rect_rect(a, b) == 5.0

    def test_mindist_rects_overlapping_is_zero(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 1), (3, 3))
        assert EUCLIDEAN.mindist_rect_rect(a, b) == 0.0

    def test_maxdist_rects(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((4, 0), (5, 1))
        assert EUCLIDEAN.maxdist_rect_rect(a, b) == pytest.approx(
            math.hypot(5, 1)
        )

    def test_minmaxdist_point_known_value(self):
        # Query at origin, rect [1,2] x [1,2]: there is an object point
        # on the nearer x-face (x=1, y at worst 2) and on the nearer
        # y-face (y=1, x at worst 2); minimum of those worst cases.
        r = Rect((1, 1), (2, 2))
        value = EUCLIDEAN.minmaxdist_point_rect(Point((0, 0)), r)
        assert value == pytest.approx(math.hypot(1, 2))

    def test_degenerate_rects_all_bounds_equal(self):
        a = Rect.from_point(Point((0, 0)))
        b = Rect.from_point(Point((3, 4)))
        for metric in METRICS:
            d = metric.distance(Point((0, 0)), Point((3, 4)))
            assert metric.mindist_rect_rect(a, b) == pytest.approx(d)
            assert metric.maxdist_rect_rect(a, b) == pytest.approx(d)
            assert metric.minmaxdist_rect_rect(a, b) == pytest.approx(d)


class TestBoundProperties:
    @given(points(), rects())
    def test_point_bound_sandwich(self, p, r):
        for metric in METRICS:
            lo = metric.mindist_point_rect(p, r)
            mid = metric.minmaxdist_point_rect(p, r)
            hi = metric.maxdist_point_rect(p, r)
            assert lo <= mid + 1e-9
            assert mid <= hi + 1e-9

    @given(rects(), rects())
    def test_rect_bound_sandwich(self, a, b):
        for metric in METRICS:
            lo = metric.mindist_rect_rect(a, b)
            mid = metric.minmaxdist_rect_rect(a, b)
            hi = metric.maxdist_rect_rect(a, b)
            assert lo <= mid + 1e-9
            assert mid <= hi + 1e-9

    @given(
        rects(),
        rects(),
        st.tuples(st.floats(0, 1), st.floats(0, 1)),
        st.tuples(st.floats(0, 1), st.floats(0, 1)),
    )
    def test_mindist_maxdist_bound_point_pairs(self, a, b, fa, fb):
        pa = sample_inside(a, fa)
        pb = sample_inside(b, fb)
        for metric in METRICS:
            d = metric.distance(pa, pb)
            assert metric.mindist_rect_rect(a, b) <= d + 1e-9
            assert metric.maxdist_rect_rect(a, b) >= d - 1e-9

    @given(
        rects(),
        points(),
        st.tuples(st.floats(0, 1), st.floats(0, 1)),
    )
    def test_consistency_under_containment(self, outer, p, f):
        """Shrinking one side (child rect inside parent) can only move
        MINDIST up and MAXDIST down -- the paper's consistency rule."""
        inner = Rect.from_point(sample_inside(outer, f))
        query = Rect.from_point(p)
        for metric in METRICS:
            assert (
                metric.mindist_rect_rect(inner, query)
                >= metric.mindist_rect_rect(outer, query) - 1e-9
            )
            assert (
                metric.maxdist_rect_rect(inner, query)
                <= metric.maxdist_rect_rect(outer, query) + 1e-9
            )

    @given(
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
    )
    def test_minmaxdist_bounds_minimally_bounded_objects(
        self, a1, b1, a2, b2
    ):
        """The estimation-soundness claim (Section 2.2.4): for objects
        that touch every face of their MBR, MINMAXDIST of the MBRs
        upper-bounds the objects' exact minimum distance.  Diagonal
        segments touch all four faces of their bounding box."""
        from repro.geometry.shapes import LineSegment

        seg1 = LineSegment(Point(a1), Point(b1))
        seg2 = LineSegment(Point(a2), Point(b2))
        exact = seg1.distance_to(seg2)
        bound = EUCLIDEAN.minmaxdist_rect_rect(seg1.mbr(), seg2.mbr())
        assert exact <= bound + 1e-6

    @given(points(), points())
    def test_metric_symmetry_and_identity(self, p, q):
        for metric in METRICS:
            assert metric.distance(p, q) == pytest.approx(
                metric.distance(q, p)
            )
            assert metric.distance(p, p) == 0.0

    @given(points(), points(), points())
    def test_triangle_inequality(self, p, q, r):
        for metric in METRICS:
            assert metric.distance(p, r) <= (
                metric.distance(p, q) + metric.distance(q, r) + 1e-7
            )
