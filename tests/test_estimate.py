"""Unit tests for the maximum-distance estimators (Section 2.2.4/2.3)."""

from repro.core.estimate import JoinEstimator, SemiJoinEstimator
from repro.core.pairs import NODE, OBJ, Item, Pair
from repro.geometry.rectangle import Rect
from repro.util.counters import CounterRegistry

INF = float("inf")
R = Rect((0, 0), (1, 1))


def node_pair(id1, id2, distance=0.0):
    return Pair(
        Item(NODE, R, node_id=id1, level=1),
        Item(NODE, R, node_id=id2, level=1),
        distance,
    )


def obj_pair(o1, o2, distance=0.0):
    return Pair(
        Item(OBJ, R, oid=o1),
        Item(OBJ, R, oid=o2),
        distance,
    )


class TestJoinEstimator:
    def make(self, k, dmin=0.0, dmax=INF):
        return JoinEstimator(k, dmin, dmax, CounterRegistry())

    def test_no_trim_below_k(self):
        est = self.make(k=100)
        est.offer(node_pair(1, 2), 0.0, 10.0, 50)
        assert est.current_dmax == INF
        assert not est.trimmed

    def test_trims_when_counts_exceed_k(self):
        est = self.make(k=10)
        est.offer(node_pair(1, 2), 0.0, 5.0, 8)
        est.offer(node_pair(3, 4), 0.0, 9.0, 8)
        # 16 >= 10 even without the 9.0 pair -> Dmax drops to 9.0... no:
        # removing the 9.0 pair leaves 8 < 10, so nothing is evicted yet.
        assert est.current_dmax == INF
        est.offer(node_pair(5, 6), 0.0, 7.0, 8)
        # total 24; evicting the largest (9.0, count 8) leaves 16 >= 10.
        assert est.current_dmax == 9.0
        assert est.trimmed

    def test_trim_cascades(self):
        est = self.make(k=1)
        est.offer(node_pair(1, 2), 0.0, 5.0, 10)
        est.offer(node_pair(3, 4), 0.0, 3.0, 10)
        # Evicting 5.0 leaves 10 >= 1; evicting 3.0 would leave 0 < 1.
        assert est.current_dmax == 5.0
        assert est.tracked_pairs == 1

    def test_ineligible_when_dmax_exceeds_current(self):
        est = self.make(k=1, dmax=4.0)
        est.offer(node_pair(1, 2), 0.0, 9.0, 100)
        assert est.tracked_pairs == 0

    def test_ineligible_when_below_dmin(self):
        est = self.make(k=1, dmin=2.0)
        est.offer(node_pair(1, 2), 1.0, 3.0, 100)
        assert est.tracked_pairs == 0

    def test_dequeue_removes_pair(self):
        est = self.make(k=5)
        pair = node_pair(1, 2)
        est.offer(pair, 0.0, 5.0, 4)
        est.on_dequeue(pair)
        assert est.tracked_pairs == 0
        assert est.tracked_total == 0

    def test_dequeue_of_untracked_pair_is_noop(self):
        est = self.make(k=5)
        est.on_dequeue(node_pair(8, 9))
        assert est.tracked_total == 0

    def test_report_decrements_k_and_retrims(self):
        est = self.make(k=2)
        est.offer(node_pair(1, 2), 0.0, 5.0, 2)
        est.offer(node_pair(3, 4), 0.0, 8.0, 2)
        # total 4; evicting 8.0 leaves 2 >= 2 -> Dmax = 8.
        assert est.current_dmax == 8.0
        est.on_report()  # k = 1
        # Now evicting 5.0 would leave 0 < 1, so 5.0 stays.
        assert est.current_dmax == 8.0
        est.offer(node_pair(5, 6), 0.0, 4.0, 2)
        # total 4; evicting 5.0 leaves 2 >= 1 -> Dmax = 5.
        assert est.current_dmax == 5.0

    def test_dmax_never_increases(self):
        est = self.make(k=1)
        est.offer(node_pair(1, 2), 0.0, 5.0, 10)
        first = est.current_dmax
        est.offer(node_pair(3, 4), 0.0, 50.0, 10)
        assert est.current_dmax <= first


class TestSemiJoinEstimator:
    def make(self, k, dmin=0.0, dmax=INF):
        return SemiJoinEstimator(k, dmin, dmax, CounterRegistry())

    def test_unique_first_item_keeps_tighter(self):
        est = self.make(k=100)
        est.offer(node_pair(1, 2), 0.0, 9.0, 5)
        est.offer(node_pair(1, 3), 0.0, 4.0, 5)  # same first item, tighter
        assert est.tracked_pairs == 1
        assert est.tracked_total == 5
        est.offer(node_pair(1, 4), 0.0, 7.0, 5)  # looser: ignored
        assert est.tracked_pairs == 1

    def test_counts_only_first_subtree(self):
        est = self.make(k=4)
        est.offer(node_pair(1, 2), 0.0, 5.0, 3)
        est.offer(node_pair(2, 3), 0.0, 8.0, 3)
        # total 6; evicting 8.0 leaves 3 < 4 -> no trim.
        assert est.current_dmax == INF
        est.offer(node_pair(3, 4), 0.0, 6.0, 3)
        # total 9; evicting 8.0 leaves 6 >= 4.
        assert est.current_dmax == 8.0

    def test_expanded_node_barred_from_m(self):
        est = self.make(k=100)
        pair = node_pair(1, 2)
        est.on_expand_first(pair)
        est.offer(node_pair(1, 3), 0.0, 4.0, 5)
        assert est.tracked_pairs == 0

    def test_expand_removes_existing_entry(self):
        est = self.make(k=100)
        est.offer(node_pair(1, 2), 0.0, 4.0, 5)
        est.on_expand_first(node_pair(1, 9))
        assert est.tracked_pairs == 0
        assert est.tracked_total == 0

    def test_dequeue_only_removes_matching_second(self):
        est = self.make(k=100)
        est.offer(node_pair(1, 2), 0.0, 4.0, 5)
        est.on_dequeue(node_pair(1, 3))  # different second item
        assert est.tracked_pairs == 1
        est.on_dequeue(node_pair(1, 2))  # exact pair
        assert est.tracked_pairs == 0

    def test_report_purges_first_item(self):
        est = self.make(k=10)
        est.offer(obj_pair(7, 1), 2.0, 2.0, 1)
        est.on_report_first(("o", 7))
        assert est.tracked_pairs == 0
        assert est.k == 9

    def test_objects_as_first_items(self):
        est = self.make(k=1)
        est.offer(obj_pair(1, 1), 1.0, 1.0, 1)
        est.offer(obj_pair(2, 1), 3.0, 3.0, 1)
        # total 2; evicting 3.0 leaves 1 >= 1.
        assert est.current_dmax == 3.0
