"""Tests for the reverse (farthest-first) join variants."""

import pytest

from repro.core.reverse import ReverseDistanceJoin, ReverseDistanceSemiJoin
from repro.geometry.metrics import EUCLIDEAN
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_pairs, make_points, make_tree


def take(iterator, n):
    out = []
    for item in iterator:
        out.append(item)
        if len(out) == n:
            break
    return out


@pytest.fixture(scope="module")
def reverse_setup():
    points_a = make_points(40, seed=71)
    points_b = make_points(50, seed=72)
    tree_a = make_tree(points_a)
    tree_b = make_tree(points_b)
    truth = brute_force_pairs(points_a, points_b)
    return tree_a, tree_b, points_a, points_b, truth


class TestReverseJoin:
    def test_farthest_pairs_first(self, reverse_setup):
        tree_a, tree_b, __, ___, truth = reverse_setup
        join = ReverseDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        got = take(join, 100)
        expected = [t[0] for t in truth[::-1][:100]]
        assert [r.distance for r in got] == pytest.approx(expected)

    def test_full_reverse_join(self, reverse_setup):
        tree_a, tree_b, points_a, points_b, truth = reverse_setup
        got = list(ReverseDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ))
        assert len(got) == len(points_a) * len(points_b)
        ds = [r.distance for r in got]
        assert ds == sorted(ds, reverse=True)

    def test_range_restriction(self, reverse_setup):
        tree_a, tree_b, __, ___, truth = reverse_setup
        join = ReverseDistanceJoin(
            tree_a, tree_b, min_distance=40.0, max_distance=80.0,
            counters=CounterRegistry(),
        )
        got = list(join)
        expected = [t[0] for t in truth if 40.0 <= t[0] <= 80.0]
        assert len(got) == len(expected)
        assert got[0].distance == pytest.approx(max(expected))

    def test_max_pairs(self, reverse_setup):
        tree_a, tree_b, __, ___, truth = reverse_setup
        got = list(ReverseDistanceJoin(
            tree_a, tree_b, max_pairs=7, counters=CounterRegistry()
        ))
        assert len(got) == 7
        assert got[0].distance == pytest.approx(truth[-1][0])

    def test_hybrid_queue_degenerates_safely(self, reverse_setup):
        """Descending keys are negative, so the hybrid queue's bands
        never activate -- it must still produce correct order (it
        simply behaves like the memory queue)."""
        tree_a, tree_b, __, ___, truth = reverse_setup
        join = ReverseDistanceJoin(
            tree_a, tree_b, queue="hybrid", queue_dt=10.0,
            counters=CounterRegistry(),
        )
        got = take(join, 50)
        expected = [t[0] for t in truth[::-1][:50]]
        assert [r.distance for r in got] == pytest.approx(expected)

    def test_breadth_first_tie_break(self, reverse_setup):
        tree_a, tree_b, __, ___, truth = reverse_setup
        join = ReverseDistanceJoin(
            tree_a, tree_b, tie_break="breadth_first",
            counters=CounterRegistry(),
        )
        got = take(join, 50)
        expected = [t[0] for t in truth[::-1][:50]]
        assert [r.distance for r in got] == pytest.approx(expected)


class TestReverseSemiJoin:
    def test_farthest_neighbor_per_outer(self, reverse_setup):
        tree_a, tree_b, points_a, points_b, __ = reverse_setup
        got = list(ReverseDistanceSemiJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ))
        assert len(got) == len(points_a)
        for result in got:
            farthest = max(
                EUCLIDEAN.distance(points_a[result.oid1], b)
                for b in points_b
            )
            assert result.distance == pytest.approx(farthest)

    def test_descending_order(self, reverse_setup):
        tree_a, tree_b, *__ = reverse_setup
        ds = [
            r.distance
            for r in ReverseDistanceSemiJoin(
                tree_a, tree_b, counters=CounterRegistry()
            )
        ]
        assert ds == sorted(ds, reverse=True)

    def test_unique_outer_objects(self, reverse_setup):
        tree_a, tree_b, points_a, __, ___ = reverse_setup
        got = list(ReverseDistanceSemiJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ))
        oids = [r.oid1 for r in got]
        assert sorted(oids) == list(range(len(points_a)))

    def test_pipelined(self, reverse_setup):
        tree_a, tree_b, points_a, __, ___ = reverse_setup
        semi = ReverseDistanceSemiJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        first = take(semi, 3)
        rest = list(semi)
        assert len(first) + len(rest) == len(points_a)
