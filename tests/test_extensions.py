"""Tests for the Section 5 future-work extensions: segment data sets,
deferred leaf processing, and dimension-agnostic behaviour."""

import pytest

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.datasets.tiger_like import (
    EXTENT,
    roads_segments,
    water_segments,
)
from repro.geometry.shapes import LineSegment
from repro.rtree.bulk import bulk_load_str
from repro.util.counters import CounterRegistry

from tests.conftest import make_points, make_tree


class TestSegmentDatasets:
    def test_counts_and_types(self):
        water = water_segments(50)
        roads = roads_segments(120)
        assert len(water) == 50
        assert len(roads) == 120
        assert all(isinstance(s, LineSegment) for s in water + roads)

    def test_deterministic(self):
        a = water_segments(30)
        b = water_segments(30)
        assert all(
            x.a == y.a and x.b == y.b for x, y in zip(a, b)
        )

    def test_within_universe(self):
        for segment in water_segments(100) + roads_segments(100):
            for point in (segment.a, segment.b):
                assert 0.0 <= point.x <= EXTENT
                assert 0.0 <= point.y <= EXTENT

    def test_segments_have_extent(self):
        assert all(s.length() > 0.0 for s in water_segments(50))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            water_segments(0)
        with pytest.raises(ValueError):
            roads_segments(-1)


class TestSegmentJoins:
    def test_join_matches_brute_force(self):
        water = water_segments(25)
        roads = roads_segments(40)
        join = IncrementalDistanceJoin(
            bulk_load_str(water, max_entries=8),
            bulk_load_str(roads, max_entries=8),
            counters=CounterRegistry(),
        )
        got = []
        for result in join:
            got.append(result.distance)
            if len(got) == 100:
                break
        truth = sorted(
            w.distance_to(r) for w in water for r in roads
        )[:100]
        assert got == pytest.approx(truth)

    def test_obr_mode_same_answers_fewer_dist_calcs(self):
        water = water_segments(30)
        roads = roads_segments(60)
        tree_w = bulk_load_str(water, max_entries=8)
        tree_r = bulk_load_str(roads, max_entries=8)

        counters_direct = CounterRegistry()
        direct = IncrementalDistanceJoin(
            tree_w, tree_r, leaf_mode="direct",
            counters=counters_direct,
        )
        got_direct = [next(direct).distance for __ in range(50)]

        counters_obr = CounterRegistry()
        obr = IncrementalDistanceJoin(
            tree_w, tree_r, leaf_mode="obr", counters=counters_obr,
        )
        got_obr = [next(obr).distance for __ in range(50)]

        assert got_direct == pytest.approx(got_obr)
        # Deferred resolution computes exact segment distances only
        # for surfaced obr/obr pairs.
        assert (
            counters_obr.value("dist_calcs")
            < counters_direct.value("dist_calcs")
        )
        assert counters_obr.value("object_accesses") > 0

    def test_segment_semi_join(self):
        water = water_segments(20)
        roads = roads_segments(35)
        semi = IncrementalDistanceSemiJoin(
            bulk_load_str(water, max_entries=8),
            bulk_load_str(roads, max_entries=8),
            counters=CounterRegistry(),
        )
        got = list(semi)
        assert len(got) == len(water)
        for result in got:
            expected = min(
                water[result.oid1].distance_to(r) for r in roads
            )
            assert result.distance == pytest.approx(expected)


class TestEstimatorOnExtendedObjects:
    def test_max_pairs_with_segments_obr_mode(self):
        """The estimator's MINMAXDIST path (live only for objects with
        extent) must never lose results: K pairs requested, K exact
        closest pairs delivered."""
        import pytest as pt

        water = water_segments(40)
        roads = roads_segments(60)
        join = IncrementalDistanceJoin(
            bulk_load_str(water, max_entries=8),
            bulk_load_str(roads, max_entries=8),
            leaf_mode="obr",
            max_pairs=25,
            counters=CounterRegistry(),
        )
        got = [r.distance for r in join]
        truth = sorted(
            w.distance_to(r) for w in water for r in roads
        )[:25]
        assert got == pt.approx(truth)

    def test_semijoin_estimation_with_segments(self):
        import pytest as pt

        water = water_segments(30)
        roads = roads_segments(50)
        semi = IncrementalDistanceSemiJoin(
            bulk_load_str(water, max_entries=8),
            bulk_load_str(roads, max_entries=8),
            leaf_mode="obr",
            max_pairs=10,
            counters=CounterRegistry(),
        )
        got = [r.distance for r in semi]
        truth = sorted(
            min(w.distance_to(r) for r in roads) for w in water
        )[:10]
        assert got == pt.approx(truth)


class TestDeferredLeafProcessing:
    def test_same_results_as_default(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, process_leaves_together=True,
            counters=CounterRegistry(),
        )
        got = [next(join).distance for __ in range(200)]
        assert got == pytest.approx([t[0] for t in truth[:200]])

    def test_composes_with_breadth_first(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = IncrementalDistanceJoin(
            tree_a, tree_b, process_leaves_together=True,
            tie_break="breadth_first", counters=CounterRegistry(),
        )
        got = [next(join).distance for __ in range(100)]
        assert got == pytest.approx([t[0] for t in truth[:100]])

    def test_fewer_node_expansions(self):
        points_a = make_points(200, seed=191)
        points_b = make_points(200, seed=192)
        tree_a = make_tree(points_a)
        tree_b = make_tree(points_b)

        def run(together):
            counters = CounterRegistry()
            join = IncrementalDistanceJoin(
                tree_a, tree_b, process_leaves_together=together,
                counters=counters,
            )
            for __, ___ in zip(range(2000), join):
                pass
            return counters.value("node_reads")

        # Leaf/leaf pairs expand once instead of twice.
        assert run(True) <= run(False)
