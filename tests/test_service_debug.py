"""Service observability end to end: trace propagation through the
scheduler and over HTTP, the per-session flight recorder, slow-quantum
dumps, /debug introspection, structured request logs, and the metrics
exposition's content type and label escaping."""

import asyncio
import http.client
import io
import json
import pickle
import threading

import pytest

from repro.errors import ServiceError
from repro.query.executor import Database
from repro.service import JoinService, ServiceClient
from repro.service.cursor import CursorStore
from repro.service.scheduler import JoinScheduler
from repro.service.session import QuerySource, Session
from repro.util.counters import CounterRegistry
from repro.util.obs import prometheus_text
from repro.util.telemetry import TraceContext

from tests.conftest import make_points

SQL = (
    "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "ORDER BY d STOP AFTER 40"
)


def build_db():
    db = Database(counters=CounterRegistry())
    db.create_relation("a", make_points(90, seed=81))
    db.create_relation("b", make_points(110, seed=82))
    return db


def build_scheduler(tmp_path=None, **kwargs):
    store = CursorStore(str(tmp_path / "spool")) \
        if tmp_path is not None else None
    kwargs.setdefault("telemetry", True)
    return JoinScheduler(
        quantum_pairs=5, cursor_store=store, **kwargs
    )


class TestSchedulerTelemetry:
    def test_admit_adopts_trace_context(self):
        scheduler = build_scheduler()
        ctx = TraceContext.mint()
        session = scheduler.admit(
            QuerySource(build_db(), SQL), trace_ctx=ctx
        )
        assert session.tel.enabled
        assert session.tel.ctx is ctx
        # The operator observer is injected and trace-stamped.
        assert session.source.join_kwargs["observer"] is session.obs
        assert session.obs.trace_ctx is ctx
        assert session.obs.trace_spans

    def test_admit_mints_when_no_context_given(self):
        scheduler = build_scheduler()
        session = scheduler.admit(QuerySource(build_db(), SQL))
        assert session.tel.enabled
        assert len(session.tel.ctx.trace_id) == 32

    def test_telemetry_off_keeps_null_path(self):
        scheduler = JoinScheduler(quantum_pairs=5, telemetry=False)
        session = scheduler.admit(QuerySource(build_db(), SQL))
        assert not session.tel.enabled
        assert "observer" not in session.source.join_kwargs
        with pytest.raises(ServiceError):
            scheduler.trace_dump(session.id)

    def test_quanta_record_telemetry_spans(self):
        scheduler = build_scheduler()
        session = scheduler.admit(QuerySource(build_db(), SQL))
        scheduler.fetch(session.id, 12)
        quanta = [r for r in session.tel.spans
                  if r.name == "service.quantum"]
        assert len(quanta) == session.quanta >= 3
        assert all(r.attrs["session"] == session.id for r in quanta)
        # Quantum numbers are consecutive from 0.
        assert [r.attrs["quantum"] for r in quanta] == \
            list(range(session.quanta))

    def test_trace_dump_is_connected_and_idempotent(self):
        scheduler = build_scheduler()
        session = scheduler.admit(QuerySource(build_db(), SQL))
        scheduler.fetch(session.id, 12)
        tree = scheduler.trace_dump(session.id)
        assert tree["name"] == "request"
        assert tree["trace_id"] == session.tel.ctx.trace_id
        quanta = [c for c in tree["children"]
                  if c["name"] == "service.quantum"]
        assert len(quanta) == session.quanta
        # Operator spans grafted under the quanta that ran them.
        assert any(c["children"] for c in quanta)
        # Stitching is pure: dumping twice yields the same shape.
        again = scheduler.trace_dump(session.id)
        assert len(again["children"]) == len(tree["children"])

    def test_chrome_dump_is_loadable_shape(self):
        scheduler = build_scheduler()
        session = scheduler.admit(QuerySource(build_db(), SQL))
        scheduler.fetch(session.id, 8)
        dump = scheduler.trace_dump(session.id, fmt="chrome")
        assert "traceEvents" in dump
        names = {e["name"] for e in dump["traceEvents"]
                 if e.get("ph") == "X"}
        assert {"request", "service.quantum"} <= names
        with pytest.raises(ServiceError):
            scheduler.trace_dump(session.id, fmt="svg")

    def test_progress_and_debug_sessions(self):
        scheduler = build_scheduler()
        session = scheduler.admit(QuerySource(build_db(), SQL))
        scheduler.fetch(session.id, 10)
        progress = scheduler.progress()[session.id]
        assert progress["lower_bound"] == pytest.approx(10 / 40)
        (record,) = scheduler.debug_sessions()
        assert record["session"] == session.id
        assert record["trace_id"] == session.tel.ctx.trace_id
        assert record["progress"]["lower_bound"] == \
            progress["lower_bound"]
        assert record["trace_spans"] == len(session.tel.spans)

    def test_flight_recorder_ring_stays_bounded(self):
        """Satellite: over a long multi-quantum run the per-session
        ring (KEEP_LAST event log) and gauge timelines stay bounded
        while totals keep counting every sample."""
        scheduler = JoinScheduler(quantum_pairs=1, telemetry=True)
        sql = SQL.replace("STOP AFTER 40", "STOP AFTER 600")
        session = scheduler.admit(QuerySource(build_db(), sql))
        scheduler.fetch(session.id, 600)
        assert session.quanta >= 600
        obs = session.obs
        assert obs.events.policy == "ring"
        assert len(obs.events) <= obs.events.max_events == 256
        assert obs.events.total > 256  # every append still counted
        # The newest events are retained (flight recorder, not prefix).
        flights = [e for e in obs.events if e.kind == "flight"]
        assert flights and flights[-1].seq == max(
            e.seq for e in obs.events
        )
        for name in ("service.queue_len", "service.head_distance"):
            timeline = obs.gauge_timeline(name)
            assert 0 < len(timeline) <= 256  # bounded deque
        # Telemetry spans hit their own bound without growing past it.
        assert len(session.tel.spans) <= session.tel.max_spans
        assert session.tel.dropped > 0

    def test_latency_budget_dumps_slow_quanta(self, tmp_path):
        counters = CounterRegistry()
        scheduler = JoinScheduler(
            quantum_pairs=5, telemetry=True, counters=counters,
            latency_budget_seconds=1e-9,  # everything is slow
            dump_dir=str(tmp_path / "dumps"),
        )
        session = scheduler.admit(QuerySource(build_db(), SQL))
        scheduler.fetch(session.id, 10)
        assert counters.value("service_slow_quanta") == session.quanta
        dumps = sorted((tmp_path / "dumps").glob("slow-*.json"))
        assert len(dumps) == session.quanta
        payload = json.loads(dumps[0].read_text())
        assert payload["session"] == session.id
        assert payload["trace_id"] == session.tel.ctx.trace_id
        assert payload["elapsed_s"] > payload["budget_s"]
        assert payload["trace"]["name"] == "request"
        assert any(e["kind"] == "flight" for e in payload["ring"])

    def test_no_budget_means_no_slow_counter(self):
        counters = CounterRegistry()
        scheduler = JoinScheduler(
            quantum_pairs=5, telemetry=True, counters=counters
        )
        session = scheduler.admit(QuerySource(build_db(), SQL))
        scheduler.fetch(session.id, 10)
        assert "service_slow_quanta" not in counters.snapshot()


class TestSuspendResumeTrace:
    def test_trace_survives_cross_process_resume(self):
        """The acceptance path: suspend to a pickled cursor, rebuild
        the session in a 'fresh process' (a new Session with no live
        telemetry), and the request still renders as one connected
        trace with monotone time."""
        db = build_db()
        scheduler = build_scheduler()
        session = scheduler.admit(QuerySource(db, SQL))
        scheduler.fetch(session.id, 10)
        floor_before = session.progress_est.lower_bound
        spans_before = len(session.tel.spans)
        state = pickle.loads(pickle.dumps(session.suspend_to_state()))

        fresh = Session("resumed", QuerySource(db, SQL))
        assert not fresh.tel.enabled
        fresh.resume_from_state(state)
        assert fresh.tel.enabled
        assert fresh.tel.ctx == session.tel.ctx
        assert len(fresh.tel.spans) == spans_before
        assert fresh.progress_est.lower_bound == floor_before
        # Time keeps moving forward after the resume.
        with fresh.tel.span("service.quantum"):
            pass
        last = fresh.tel.spans[-1]
        assert all(
            last.t0 >= r.t0 for r in fresh.tel.spans[:-1]
        )

    def test_scheduler_eviction_roundtrip_keeps_trace(self, tmp_path):
        scheduler = build_scheduler(tmp_path)
        session = scheduler.admit(QuerySource(build_db(), SQL))
        scheduler.fetch(session.id, 10)
        trace_id = session.tel.ctx.trace_id
        quanta_before = session.quanta
        assert scheduler.evict_idle(0.0) == [session.id]
        assert session.evicted
        assert session.spooled_bytes > 0
        scheduler.fetch(session.id, 10)
        assert not session.evicted
        assert session.tel.ctx.trace_id == trace_id
        tree = scheduler.trace_dump(session.id)
        assert tree["trace_id"] == trace_id
        quanta = [c for c in tree["children"]
                  if c["name"] == "service.quantum"]
        # Pre- and post-eviction quanta in one tree, in time order.
        assert len(quanta) > quanta_before
        starts = [c["t0"] for c in quanta]
        assert starts == sorted(starts)

    def test_progress_floor_never_regresses_across_eviction(
        self, tmp_path
    ):
        scheduler = build_scheduler(tmp_path)
        session = scheduler.admit(QuerySource(build_db(), SQL))
        bounds = []
        for __ in range(4):
            scheduler.fetch(session.id, 5)
            bounds.append(
                session.progress_report()["lower_bound"]
            )
            scheduler.evict_idle(0.0)
        assert bounds == sorted(bounds)
        assert bounds[-1] == pytest.approx(0.5)


@pytest.fixture
def served(tmp_path):
    """A telemetry-enabled JoinService with a JSON request log;
    yields (service, client, log_buffer)."""
    log = io.StringIO()
    service = JoinService(
        build_db(),
        quantum_pairs=5,
        spool_dir=str(tmp_path / "spool"),
        idle_evict_seconds=1e9,
        log_json=True,
        log_stream=log,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start(port=0))
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield service, ServiceClient(port=service.port, timeout=30), log
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


TRACEPARENT = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"


class TestHTTPTracePropagation:
    def test_query_adopts_traceparent(self, served):
        __, client, __log = served
        reply = client.admit(SQL, traceparent=TRACEPARENT)
        assert reply["trace_id"] == "ab" * 16
        assert reply["traceparent"].startswith("00-" + "ab" * 16)
        assert reply["status"]["trace_id"] == "ab" * 16

    def test_malformed_traceparent_mints_fresh(self, served):
        __, client, __log = served
        reply = client.admit(SQL, traceparent="00-bogus-bogus-01")
        assert len(reply["trace_id"]) == 32
        assert reply["trace_id"] != "ab" * 16

    def test_debug_trace_over_http(self, served):
        __, client, __log = served
        reply = client.admit(SQL, traceparent=TRACEPARENT)
        sid = reply["session"]
        client.next(sid, k=10)
        tree = client.debug_trace(sid)
        assert tree["trace_id"] == "ab" * 16
        assert tree["parent_id"] == "cd" * 8
        assert [c["name"] for c in tree["children"]].count(
            "service.quantum"
        ) >= 2
        chrome = client.debug_trace(sid, fmt="chrome")
        assert chrome["traceEvents"]

    def test_progress_endpoint_is_monotone(self, served):
        __, client, __log = served
        sid = client.query(SQL)
        bounds = []
        for __i in range(3):
            client.next(sid, k=8)
            bounds.append(
                client.progress(sid)["progress"]["lower_bound"]
            )
        assert bounds == sorted(bounds)
        assert bounds[-1] == pytest.approx(24 / 40)
        everyone = client.progress()
        assert sid in everyone["sessions"]

    def test_debug_sessions_endpoint(self, served):
        __, client, __log = served
        sid = client.query(SQL)
        client.next(sid, k=5)
        (record,) = client.debug_sessions()
        assert record["session"] == sid
        assert record["quanta"] >= 1
        assert "progress" in record and "spooled_bytes" in record

    def test_structured_log_carries_trace_ids(self, served):
        __, client, log = served
        reply = client.admit(SQL, traceparent=TRACEPARENT)
        sid = reply["session"]
        client.next(sid, k=5)
        client.progress(sid)
        lines = [json.loads(line)
                 for line in log.getvalue().splitlines()]
        assert len(lines) == 3
        for line in lines:
            assert {"ts", "method", "path", "status", "dur_ms",
                    "session", "trace_id"} <= set(line)
            assert line["status"] == 200
            assert line["trace_id"] == "ab" * 16
            assert line["session"] == sid
        assert [line["path"] for line in lines] == \
            ["/query", "/next", "/progress"]


class TestMetricsExposition:
    def test_metrics_content_type_is_prometheus(self, served):
        """Satellite regression: the exposition must declare the
        Prometheus text format version, not bare text/plain."""
        service, client, __log = served
        sid = client.query(SQL)
        client.next(sid, k=5)
        conn = http.client.HTTPConnection(
            "127.0.0.1", service.port, timeout=10
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "text/plain; version=0.0.4"
            assert "repro_service_sessions" in body
        finally:
            conn.close()

    def test_session_labels_are_escaped(self):
        """Satellite regression: label values with quotes, backslashes
        and newlines must render escaped per the exposition format."""
        scheduler = build_scheduler()
        hostile = 'x"y\\z\nw'
        scheduler.admit(
            QuerySource(build_db(), SQL), session_id=hostile
        )
        scheduler.fetch(hostile, 5)
        text = prometheus_text(
            scheduler.metrics(labels={"query": 'a"b'})
        )
        assert 'session="x\\"y\\\\z\\nw"' in text
        assert 'query="a\\"b"' in text
        # No raw newline may survive inside any label value.
        for line in text.splitlines():
            assert line == "" or line.startswith("#") or " " in line
