"""Scheduler semantics: round-robin fairness under concurrent
mixed-cost sessions, slot lifecycle for finished STOP AFTER k
streams, admission control, and eviction/resume through the spool."""

import pytest

from repro.errors import ServiceError
from repro.query.executor import Database
from repro.service import CursorStore, JoinScheduler, QuerySource
from repro.util.counters import CounterRegistry

from tests.conftest import make_points


def build_db():
    db = Database(counters=CounterRegistry())
    db.create_relation("a", make_points(100, seed=61))
    db.create_relation("b", make_points(120, seed=62))
    return db


def sql(stop_after):
    return (
        "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
        f"ORDER BY d STOP AFTER {stop_after}"
    )


@pytest.fixture
def db():
    return build_db()


class TestFairness:
    def test_every_pending_session_progresses_each_round(self, db):
        """No starvation: with N sessions of very different cost all
        demanding rows, every session gains rows on every full round
        until it is done."""
        sched = JoinScheduler(quantum_pairs=4, quantum_seconds=10.0)
        stops = [8, 40, 120, 300]  # mixed-cost STOP AFTER k streams
        sessions = [
            sched.admit(QuerySource(db, sql(k), strategy="pipeline"))
            for k in stops
        ]
        for session in sessions:
            sched.request(session.id, 10_000)

        rounds = 0
        while any(s.pending for s in sessions):
            was_pending = [s.pending for s in sessions]
            before = [s.emitted_total + len(s.buffer) for s in sessions]
            sched.run_round()
            rounds += 1
            after = [s.emitted_total + len(s.buffer) for s in sessions]
            for session, live, b, a in zip(
                sessions, was_pending, before, after
            ):
                # A pending session either gains rows this round or its
                # stream ended at the quantum boundary -- never stalls.
                if live and not session.done:
                    assert a > b, (
                        f"session {session.id} starved in round "
                        f"{rounds}"
                    )
            assert rounds < 1000
        # The cheap stream finished long before the expensive one.
        assert sessions[0].done and sessions[-1].done
        counts = [len(sched.take(s.id)[0]) for s in sessions]
        assert counts == stops

    def test_quantum_bounds_rows_per_turn(self, db):
        sched = JoinScheduler(quantum_pairs=5, quantum_seconds=10.0)
        session = sched.admit(QuerySource(db, sql(50)))
        sched.request(session.id, 50)
        produced = sched.run_quantum(session)
        assert produced == 5
        assert len(session.buffer) == 5

    def test_fetch_interleaves_other_sessions(self, db):
        """fetch() for one session still advances the others --
        clients cannot monopolize the scheduler."""
        sched = JoinScheduler(quantum_pairs=5, quantum_seconds=10.0)
        foreground = sched.admit(QuerySource(db, sql(60)))
        background = sched.admit(QuerySource(db, sql(60)))
        sched.request(background.id, 30)

        rows, done = sched.fetch(foreground.id, 30)
        assert len(rows) == 30 and not done
        assert len(background.buffer) == 30  # rode along fairly


class TestLifecycle:
    def test_finished_stream_reports_done_and_frees_slot(self, db):
        sched = JoinScheduler(quantum_pairs=64, max_sessions=2)
        session = sched.admit(QuerySource(db, sql(12)))
        rows, done = sched.fetch(session.id, 100)
        assert len(rows) == 12 and done
        sched.remove(session.id)
        # The slot is free again: two more admissions succeed.
        sched.admit(QuerySource(db, sql(5)))
        sched.admit(QuerySource(db, sql(5)))

    def test_admission_cap(self, db):
        sched = JoinScheduler(max_sessions=2)
        sched.admit(QuerySource(db, sql(5)))
        sched.admit(QuerySource(db, sql(5)))
        with pytest.raises(ServiceError):
            sched.admit(QuerySource(db, sql(5)))

    def test_unknown_session(self, db):
        sched = JoinScheduler()
        with pytest.raises(ServiceError):
            sched.fetch("nope", 1)

    def test_duplicate_session_id(self, db):
        sched = JoinScheduler()
        sched.admit(QuerySource(db, sql(5)), session_id="x")
        with pytest.raises(ServiceError):
            sched.admit(QuerySource(db, sql(5)), session_id="x")


class TestEviction:
    def test_idle_session_spools_and_resumes(self, db, tmp_path):
        store = CursorStore(str(tmp_path / "spool"))
        sched = JoinScheduler(
            quantum_pairs=7, quantum_seconds=10.0, cursor_store=store
        )
        reference_rows = list(
            build_db().physical_plan(sql(40), strategy="pipeline").rows()
        )
        session = sched.admit(QuerySource(db, sql(40),
                                          strategy="pipeline"))
        first, __ = sched.fetch(session.id, 15)

        session.last_touch -= 1_000.0  # long idle
        assert sched.evict_idle(60.0) == [session.id]
        assert session.evicted
        assert store.exists(session.id)
        assert session.source.plan is None  # plan truly dropped

        rest, done = sched.fetch(session.id, 100)
        assert done
        assert list(first) + list(rest) == reference_rows
        assert not store.exists(session.id)  # consumed on resume

    def test_busy_or_fresh_sessions_not_evicted(self, db, tmp_path):
        store = CursorStore(str(tmp_path / "spool"))
        sched = JoinScheduler(cursor_store=store)
        fresh = sched.admit(QuerySource(db, sql(20)))
        busy = sched.admit(QuerySource(db, sql(20)))
        sched.request(busy.id, 5)
        busy.last_touch -= 1_000.0
        assert sched.evict_idle(60.0) == []
        assert not fresh.evicted and not busy.evicted

    def test_eviction_disabled_without_store(self, db):
        sched = JoinScheduler()
        session = sched.admit(QuerySource(db, sql(10)))
        session.last_touch -= 1_000.0
        assert sched.evict_idle(1.0) == []


class TestObservability:
    def test_status_and_metrics_cover_sessions(self, db):
        sched = JoinScheduler(quantum_pairs=5, quantum_seconds=10.0)
        session = sched.admit(QuerySource(db, sql(20)))
        sched.fetch(session.id, 20)

        status = sched.status()
        assert status["session_count"] == 1
        stats = status["sessions"][0]
        assert stats["session"] == session.id
        assert stats["quanta"] >= 4  # 20 rows / 5-pair quanta

        records = sched.metrics(labels={"suite": "test"})
        names = {r["metric"] for r in records}
        assert "service_quanta" in names
        assert "service.quantum_pairs" in names
        assert any(r["labels"].get("session") == session.id
                   for r in records if r.get("labels"))
