"""Unit tests for STR bulk loading."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.bulk import bulk_load_str
from repro.rtree.rstar import RStarTree
from repro.rtree.validate import validate_tree

from tests.conftest import make_points


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load_str([], max_entries=8)
        assert len(tree) == 0

    def test_single_object(self):
        tree = bulk_load_str([Point((1, 1))], max_entries=8)
        assert len(tree) == 1
        validate_tree(tree, allow_underfull=True)

    def test_oids_follow_input_order(self):
        points = make_points(50, seed=1)
        tree = bulk_load_str(points, max_entries=8)
        by_oid = {e.oid: e.obj for e in tree.items()}
        for i, point in enumerate(points):
            assert by_oid[i] == point

    def test_structure_valid_various_sizes(self):
        for count in (1, 7, 8, 9, 63, 64, 65, 500):
            points = make_points(count, seed=count)
            tree = bulk_load_str(points, max_entries=8)
            validate_tree(tree, allow_underfull=True)
            assert len(tree) == count

    def test_fill_factor_controls_height(self):
        points = make_points(400, seed=2)
        packed = bulk_load_str(points, fill=1.0, max_entries=8)
        loose = bulk_load_str(points, fill=0.5, max_entries=8)
        validate_tree(packed, allow_underfull=True)
        validate_tree(loose, allow_underfull=True)
        assert packed.root().level <= loose.root().level

    def test_invalid_fill_rejected(self):
        with pytest.raises(ValueError):
            bulk_load_str([Point((0, 0))], fill=0.0)
        with pytest.raises(ValueError):
            bulk_load_str([Point((0, 0))], fill=1.5)

    def test_requires_empty_tree(self):
        tree = RStarTree(dim=2, max_entries=8)
        tree.insert_point((0, 0))
        with pytest.raises(ValueError):
            bulk_load_str([Point((1, 1))], tree=tree)

    def test_load_into_supplied_tree(self):
        tree = RStarTree(dim=2, max_entries=4)
        returned = bulk_load_str(make_points(30, seed=3), tree=tree)
        assert returned is tree
        assert len(tree) == 30

    def test_rect_objects(self):
        rects = [Rect((i, 0), (i + 1, 1)) for i in range(40)]
        tree = bulk_load_str(rects, max_entries=8)
        validate_tree(tree, allow_underfull=True)
        assert len(tree) == 40

    def test_inserts_still_work_after_bulk_load(self):
        tree = bulk_load_str(make_points(100, seed=4), max_entries=8)
        oid = tree.insert_point((50.0, 50.0))
        assert oid == 100
        validate_tree(tree, allow_underfull=True)
        assert len(tree) == 101

    def test_3d_bulk_load(self):
        import random
        rng = random.Random(5)
        points = [
            Point((rng.random(), rng.random(), rng.random()))
            for __ in range(200)
        ]
        tree = bulk_load_str(points, max_entries=8)
        validate_tree(tree, allow_underfull=True)
        assert tree.dim == 3
