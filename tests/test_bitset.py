"""Unit tests for the bit-string set (the semi-join's S_A)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bitset import Bitset


class TestBasics:
    def test_empty(self):
        s = Bitset(16)
        assert len(s) == 0
        assert 0 not in s
        assert 15 not in s

    def test_add_and_contains(self):
        s = Bitset(16)
        assert s.add(3)
        assert 3 in s
        assert 4 not in s
        assert len(s) == 1

    def test_add_duplicate_returns_false(self):
        s = Bitset(16)
        assert s.add(7)
        assert not s.add(7)
        assert len(s) == 1

    def test_discard(self):
        s = Bitset(16)
        s.add(5)
        assert s.discard(5)
        assert 5 not in s
        assert len(s) == 0

    def test_discard_absent_returns_false(self):
        s = Bitset(16)
        assert not s.discard(5)

    def test_clear(self):
        s = Bitset(16, items=[1, 2, 3])
        s.clear()
        assert len(s) == 0
        assert 2 not in s

    def test_init_items(self):
        s = Bitset(8, items=[0, 7, 3])
        assert sorted(s) == [0, 3, 7]

    def test_negative_index_rejected(self):
        s = Bitset(8)
        with pytest.raises(ValueError):
            s.add(-1)

    def test_negative_contains_is_false(self):
        s = Bitset(8)
        assert -3 not in s

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Bitset(-1)


class TestGrowth:
    def test_grows_beyond_capacity(self):
        s = Bitset(8)
        s.add(1000)
        assert 1000 in s
        assert s.capacity >= 1001

    def test_contains_beyond_capacity_is_false(self):
        s = Bitset(8)
        assert 1000 not in s

    def test_zero_capacity(self):
        s = Bitset(0)
        s.add(0)
        assert 0 in s

    def test_memory_is_one_bit_per_index(self):
        s = Bitset(1_000_000)
        # The paper: 1M elements ~ 122 KB.
        assert s.memory_bytes() == 125_000


class TestIteration:
    def test_iteration_sorted_by_construction(self):
        s = Bitset(64, items=[40, 2, 17])
        assert list(s) == [2, 17, 40]

    def test_repr_small(self):
        s = Bitset(8, items=[1])
        assert "1" in repr(s)


@given(st.sets(st.integers(min_value=0, max_value=2000)))
def test_matches_python_set(items):
    """Property: Bitset behaves exactly like a set of small ints."""
    s = Bitset(16)
    for item in items:
        s.add(item)
    assert len(s) == len(items)
    assert sorted(s) == sorted(items)
    for item in items:
        assert item in s


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=500)),
        max_size=200,
    )
)
def test_add_discard_sequence(ops):
    """Property: arbitrary add/discard interleavings match a set."""
    s = Bitset(8)
    model = set()
    for is_add, value in ops:
        if is_add:
            assert s.add(value) == (value not in model)
            model.add(value)
        else:
            assert s.discard(value) == (value in model)
            model.discard(value)
    assert sorted(s) == sorted(model)
    assert len(s) == len(model)
