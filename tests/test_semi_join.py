"""Tests for the incremental distance semi-join and its strategies."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.semi_join import (
    DMAX_GLOBAL_ALL,
    DMAX_GLOBAL_NODES,
    DMAX_LOCAL,
    DMAX_NONE,
    INSIDE1,
    INSIDE2,
    OUTSIDE,
    IncrementalDistanceSemiJoin,
)
from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.point import Point
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_nn, make_points, make_tree

STRATEGIES = [
    (OUTSIDE, DMAX_NONE),
    (INSIDE1, DMAX_NONE),
    (INSIDE2, DMAX_NONE),
    (INSIDE2, DMAX_LOCAL),
    (INSIDE2, DMAX_GLOBAL_NODES),
    (INSIDE2, DMAX_GLOBAL_ALL),
]


def take(iterator, n):
    out = []
    for item in iterator:
        out.append(item)
        if len(out) == n:
            break
    return out


@pytest.fixture(scope="module")
def semi_setup():
    points_a = make_points(70, seed=61)
    points_b = make_points(90, seed=62)
    tree_a = make_tree(points_a)
    tree_b = make_tree(points_b)
    nn = brute_force_nn(points_a, points_b)
    return tree_a, tree_b, points_a, points_b, nn


class TestCorrectness:
    @pytest.mark.parametrize("filter_strategy,dmax_strategy", STRATEGIES)
    def test_every_strategy_finds_all_nearest_neighbors(
        self, semi_setup, filter_strategy, dmax_strategy
    ):
        tree_a, tree_b, points_a, __, nn = semi_setup
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b,
            filter_strategy=filter_strategy,
            dmax_strategy=dmax_strategy,
            counters=CounterRegistry(),
        )
        got = list(semi)
        assert len(got) == len(points_a)
        seen = set()
        for result in got:
            assert result.oid1 not in seen
            seen.add(result.oid1)
            assert result.distance == pytest.approx(nn[result.oid1][0])

    @pytest.mark.parametrize("filter_strategy,dmax_strategy", STRATEGIES)
    def test_output_sorted_by_distance(
        self, semi_setup, filter_strategy, dmax_strategy
    ):
        tree_a, tree_b, *__ = semi_setup
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b,
            filter_strategy=filter_strategy,
            dmax_strategy=dmax_strategy,
            counters=CounterRegistry(),
        )
        ds = [r.distance for r in semi]
        assert ds == sorted(ds)

    @pytest.mark.parametrize("policy", ["basic", "even", "simultaneous"])
    def test_node_policies(self, semi_setup, policy):
        tree_a, tree_b, points_a, __, nn = semi_setup
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b, node_policy=policy,
            counters=CounterRegistry(),
        )
        got = list(semi)
        assert len(got) == len(points_a)
        for result in got:
            assert result.distance == pytest.approx(nn[result.oid1][0])

    def test_deferred_leaf_processing(self, semi_setup):
        tree_a, tree_b, points_a, __, nn = semi_setup
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b, process_leaves_together=True,
            counters=CounterRegistry(),
        )
        got = list(semi)
        assert len(got) == len(points_a)
        for result in got:
            assert result.distance == pytest.approx(nn[result.oid1][0])

    def test_asymmetry(self, semi_setup):
        """Semi-join of A with B differs from B with A (paper Sec. 1)."""
        tree_a, tree_b, points_a, points_b, __ = semi_setup
        forward = list(IncrementalDistanceSemiJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ))
        backward = list(IncrementalDistanceSemiJoin(
            tree_b, tree_a, counters=CounterRegistry()
        ))
        assert len(forward) == len(points_a)
        assert len(backward) == len(points_b)

    def test_voronoi_clustering_semantics(self):
        """Each store maps to its closest warehouse (paper's example)."""
        warehouses = [Point((0, 0)), Point((100, 0)), Point((50, 100))]
        stores = make_points(40, seed=63)
        semi = IncrementalDistanceSemiJoin(
            make_tree(stores, max_entries=4),
            make_tree(warehouses, max_entries=4),
            counters=CounterRegistry(),
        )
        for result in semi:
            store = stores[result.oid1]
            best = min(
                range(3),
                key=lambda i: EUCLIDEAN.distance(store, warehouses[i]),
            )
            assert result.oid2 == best


class TestStrategyEffects:
    def test_inside2_prunes_more_than_outside(self, semi_setup):
        tree_a, tree_b, *__ = semi_setup
        outside = CounterRegistry()
        list(IncrementalDistanceSemiJoin(
            tree_a, tree_b, filter_strategy=OUTSIDE,
            dmax_strategy=DMAX_NONE, counters=outside,
        ))
        inside2 = CounterRegistry()
        list(IncrementalDistanceSemiJoin(
            tree_a, tree_b, filter_strategy=INSIDE2,
            dmax_strategy=DMAX_NONE, counters=inside2,
        ))
        assert (
            inside2.value("queue_inserts") <= outside.value("queue_inserts")
        )

    def test_dmax_strategies_prune(self, semi_setup):
        tree_a, tree_b, *__ = semi_setup
        for strategy in (DMAX_LOCAL, DMAX_GLOBAL_NODES, DMAX_GLOBAL_ALL):
            counters = CounterRegistry()
            list(IncrementalDistanceSemiJoin(
                tree_a, tree_b, filter_strategy=INSIDE2,
                dmax_strategy=strategy, counters=counters,
            ))
            assert counters.value("pruned_dmax") > 0, strategy

    def test_global_all_inserts_fewest(self, semi_setup):
        tree_a, tree_b, *__ = semi_setup
        inserts = {}
        for strategy in (DMAX_NONE, DMAX_LOCAL, DMAX_GLOBAL_ALL):
            counters = CounterRegistry()
            list(IncrementalDistanceSemiJoin(
                tree_a, tree_b, filter_strategy=INSIDE2,
                dmax_strategy=strategy, counters=counters,
            ))
            inserts[strategy] = counters.value("queue_inserts")
        assert inserts[DMAX_GLOBAL_ALL] <= inserts[DMAX_LOCAL]
        assert inserts[DMAX_LOCAL] <= inserts[DMAX_NONE]

    def test_dmax_requires_inside2(self, semi_setup):
        tree_a, tree_b, *__ = semi_setup
        with pytest.raises(ValueError):
            IncrementalDistanceSemiJoin(
                tree_a, tree_b, filter_strategy=OUTSIDE,
                dmax_strategy=DMAX_LOCAL,
            )

    def test_unknown_strategies_rejected(self, semi_setup):
        tree_a, tree_b, *__ = semi_setup
        with pytest.raises(ValueError):
            IncrementalDistanceSemiJoin(tree_a, tree_b,
                                        filter_strategy="inside9")
        with pytest.raises(ValueError):
            IncrementalDistanceSemiJoin(tree_a, tree_b,
                                        dmax_strategy="psychic")

    def test_descending_kwarg_rejected(self, semi_setup):
        tree_a, tree_b, *__ = semi_setup
        with pytest.raises(ValueError):
            IncrementalDistanceSemiJoin(tree_a, tree_b, descending=True)


class TestLimits:
    def test_max_pairs(self, semi_setup):
        tree_a, tree_b, __, ___, nn = semi_setup
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b, max_pairs=10, counters=CounterRegistry()
        )
        got = list(semi)
        assert len(got) == 10
        expected = sorted(d for d, __ in nn.values())[:10]
        assert [r.distance for r in got] == pytest.approx(expected)

    def test_max_pairs_with_estimation_prunes(self, semi_setup):
        tree_a, tree_b, *__ = semi_setup
        plain = CounterRegistry()
        take(IncrementalDistanceSemiJoin(
            tree_a, tree_b, estimate=False, counters=plain
        ), 10)
        estimated = CounterRegistry()
        list(IncrementalDistanceSemiJoin(
            tree_a, tree_b, max_pairs=10, counters=estimated
        ))
        assert (
            estimated.value("queue_inserts") <= plain.value("queue_inserts")
        )

    def test_max_distance(self, semi_setup):
        tree_a, tree_b, __, ___, nn = semi_setup
        limit = 5.0
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b, max_distance=limit,
            counters=CounterRegistry(),
        )
        got = list(semi)
        expected = [d for d, __ in nn.values() if d <= limit]
        assert len(got) == len(expected)

    def test_pipelined_consumption(self, semi_setup):
        tree_a, tree_b, __, ___, nn = semi_setup
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        first = take(semi, 5)
        rest = list(semi)
        assert len(first) + len(rest) == len(nn)

    def test_aggressive_estimation_with_restart(self, semi_setup):
        tree_a, tree_b, __, ___, nn = semi_setup
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b, max_pairs=30, aggressive=True,
            counters=CounterRegistry(),
        )
        got = list(semi)
        assert len(got) == 30
        expected = sorted(d for d, __ in nn.values())[:30]
        assert [r.distance for r in got] == pytest.approx(expected)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=25,
    ),
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=25,
    ),
    st.sampled_from(STRATEGIES),
)
def test_property_semi_join_equals_per_object_nn(raw_a, raw_b, strategy):
    """Property: every strategy produces exactly each outer object's
    nearest inner object, sorted by distance."""
    filter_strategy, dmax_strategy = strategy
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    semi = IncrementalDistanceSemiJoin(
        make_tree(points_a, max_entries=4),
        make_tree(points_b, max_entries=4),
        filter_strategy=filter_strategy,
        dmax_strategy=dmax_strategy,
        counters=CounterRegistry(),
    )
    got = list(semi)
    nn = brute_force_nn(points_a, points_b)
    assert len(got) == len(points_a)
    for result in got:
        assert result.distance == pytest.approx(nn[result.oid1][0])
    ds = [r.distance for r in got]
    assert ds == sorted(ds)
