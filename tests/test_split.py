"""Unit tests for the R* and quadratic split algorithms."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TreeError
from repro.geometry.rectangle import Rect
from repro.rtree.entry import LeafEntry
from repro.rtree.split import quadratic_split, rstar_split


def entries_from_boxes(boxes):
    return [
        LeafEntry(Rect(lo, hi), oid) for oid, (lo, hi) in enumerate(boxes)
    ]


def random_entries(count, seed):
    rng = random.Random(seed)
    boxes = []
    for __ in range(count):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        boxes.append(((x, y), (x + rng.uniform(0, 5), y + rng.uniform(0, 5))))
    return entries_from_boxes(boxes)


@pytest.mark.parametrize("split", [rstar_split, quadratic_split])
class TestSplitContracts:
    def test_partition_is_exact(self, split):
        entries = random_entries(11, seed=1)
        g1, g2 = split(entries, min_entries=4)
        assert len(g1) + len(g2) == len(entries)
        ids = sorted(e.oid for e in g1) + sorted(e.oid for e in g2)
        assert sorted(ids) == list(range(len(entries)))

    def test_min_fill_respected(self, split):
        for seed in range(5):
            entries = random_entries(9, seed=seed)
            g1, g2 = split(entries, min_entries=4)
            assert len(g1) >= 4
            assert len(g2) >= 4

    def test_too_few_entries_rejected(self, split):
        entries = random_entries(5, seed=0)
        with pytest.raises(TreeError):
            split(entries, min_entries=3)

    def test_minimum_possible_split(self, split):
        entries = random_entries(2, seed=3)
        g1, g2 = split(entries, min_entries=1)
        assert len(g1) == len(g2) == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 21))
    def test_random_partitions(self, split, seed, count):
        entries = random_entries(count, seed=seed)
        min_entries = max(1, count // 3)
        if count < 2 * min_entries:
            return
        g1, g2 = split(entries, min_entries)
        assert len(g1) >= min_entries
        assert len(g2) >= min_entries
        assert len(g1) + len(g2) == count


class TestRStarSplitQuality:
    def test_separates_two_clusters(self):
        # Two well-separated clusters must end up in different groups.
        left = [((i, 0), (i + 1, 1)) for i in range(5)]
        right = [((i + 100, 0), (i + 101, 1)) for i in range(5)]
        entries = entries_from_boxes(left + right)
        g1, g2 = rstar_split(entries, min_entries=4)
        sides = [
            {("L" if e.rect.lo[0] < 50 else "R") for e in group}
            for group in (g1, g2)
        ]
        # One group may need an entry of the other cluster to meet the
        # minimum fill (5 vs 4), but no group may mix both clusters
        # when a clean 5/5 split exists.
        assert sides[0] != sides[1] or all(len(s) == 1 for s in sides)

    def test_zero_overlap_when_possible(self):
        entries = entries_from_boxes(
            [((i * 10, 0), (i * 10 + 1, 1)) for i in range(10)]
        )
        g1, g2 = rstar_split(entries, min_entries=4)
        bb1 = Rect.union_of([e.rect for e in g1])
        bb2 = Rect.union_of([e.rect for e in g2])
        assert bb1.overlap_area(bb2) == 0.0


class TestQuadraticSplitQuality:
    def test_seeds_are_extreme_pair(self):
        entries = entries_from_boxes(
            [((0, 0), (1, 1)), ((100, 100), (101, 101)), ((1, 1), (2, 2))]
        )
        g1, g2 = quadratic_split(entries, min_entries=1)
        all_x = {e.rect.lo[0] for e in g1} | {e.rect.lo[0] for e in g2}
        assert all_x == {0.0, 100.0, 1.0}
        # The far-away box sits alone in its group.
        lonely = g1 if len(g1) == 1 else g2
        assert lonely[0].rect.lo[0] == 100.0
