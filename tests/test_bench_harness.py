"""Tests for the benchmark harness (workloads, runner, reporting)."""

import pytest

from repro.bench.reporting import format_series, format_table
from repro.bench.runner import MeasuredRun, consume, run_join
from repro.bench.workloads import build_tiger_workload, suggest_dt
from repro.core.distance_join import IncrementalDistanceJoin
from repro.rtree.validate import validate_tree


@pytest.fixture(scope="module")
def tiny_workload():
    return build_tiger_workload(scale=0.004, max_entries=8)


class TestWorkloads:
    def test_sizes_scale(self, tiny_workload):
        assert len(tiny_workload.tree1) == int(37495 * 0.004)
        assert len(tiny_workload.tree2) == int(200482 * 0.004)

    def test_trees_valid(self, tiny_workload):
        validate_tree(tiny_workload.tree1, allow_underfull=True)
        validate_tree(tiny_workload.tree2, allow_underfull=True)

    def test_counters_reset_after_build(self):
        workload = build_tiger_workload(scale=0.004, max_entries=8)
        assert workload.counters.value("node_io") == 0

    def test_swapped(self, tiny_workload):
        swapped = tiny_workload.swapped()
        assert swapped.tree1 is tiny_workload.tree2
        assert swapped.tree2 is tiny_workload.tree1
        assert swapped.counters is tiny_workload.counters

    def test_suggest_dt_positive(self, tiny_workload):
        assert suggest_dt(tiny_workload) > 0.0
        assert suggest_dt(tiny_workload, bands=10) > suggest_dt(
            tiny_workload, bands=1000
        )

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            build_tiger_workload(scale=0.0)
        with pytest.raises(ValueError):
            build_tiger_workload(scale=1.5)


class TestRunner:
    def test_consume_limit(self):
        assert consume(iter(range(100)), 7) == 7
        assert consume(iter(range(5)), None) == 5
        assert consume(iter([]), 3) == 0

    def test_run_join_measures(self, tiny_workload):
        run = run_join(
            lambda: IncrementalDistanceJoin(
                tiny_workload.tree1, tiny_workload.tree2,
                counters=tiny_workload.counters,
            ),
            pairs=20,
            counters=tiny_workload.counters,
            label="demo",
        )
        assert run.pairs_produced == 20
        assert run.seconds > 0.0
        assert run.dist_calcs > 0
        assert run.max_queue_size > 0
        assert run.row()["label"] == "demo"

    def test_run_join_resets_counters(self, tiny_workload):
        tiny_workload.counters.add("dist_calcs", 10_000_000)
        run = run_join(
            lambda: IncrementalDistanceJoin(
                tiny_workload.tree1, tiny_workload.tree2,
                counters=tiny_workload.counters,
            ),
            pairs=1,
            counters=tiny_workload.counters,
        )
        assert run.dist_calcs < 10_000_000


class TestReporting:
    def test_format_table(self):
        text = format_table(
            [{"a": 1, "b": 2.5}, {"a": 10_000, "b": 0.1}],
            columns=["a", "b"],
            title="T",
        )
        assert "T" in text
        assert "10,000" in text
        assert "2.5" in text

    def test_format_table_missing_cells(self):
        text = format_table([{"a": 1}], columns=["a", "b"])
        assert "a" in text and "b" in text

    def test_format_series(self):
        text = format_series(
            {"fast": [1.0, 2.0], "slow": [3.0, 4.0]},
            x_values=[10, 100],
            x_label="pairs",
        )
        lines = text.splitlines()
        assert "pairs" in lines[0]
        assert "fast" in lines[0]
        assert len(lines) == 4

    def test_measured_run_row_keys(self):
        run = MeasuredRun("x", 1, 1, 0.5)
        assert set(run.row()) == {
            "label", "pairs", "time_s", "dist_calcs", "max_queue", "node_io"
        }
