"""Tests for tree snapshots (save/load)."""

import json

import pytest

from repro.core.distance_join import IncrementalDistanceJoin
from repro.errors import StorageError
from repro.geometry.rectangle import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.validate import validate_tree
from repro.storage.snapshot import load_tree, save_tree
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_pairs, make_points, make_tree


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        points = make_points(150, seed=181)
        tree = make_tree(points)
        path = str(tmp_path / "tree.json")
        save_tree(tree, path)
        loaded = load_tree(path)

        assert type(loaded) is type(tree)
        assert len(loaded) == len(tree)
        assert loaded.height == tree.height
        assert loaded.max_entries == tree.max_entries
        validate_tree(loaded)
        original = {(e.oid, e.obj) for e in tree.items()}
        restored = {(e.oid, e.obj) for e in loaded.items()}
        assert original == restored

    def test_loaded_tree_answers_queries(self, tmp_path):
        points_a = make_points(60, seed=182)
        points_b = make_points(60, seed=183)
        path = str(tmp_path / "a.json")
        save_tree(make_tree(points_a), path)
        loaded = load_tree(path)
        join = IncrementalDistanceJoin(
            loaded, make_tree(points_b), counters=CounterRegistry()
        )
        got = [next(join).distance for __ in range(50)]
        truth = [t[0] for t in brute_force_pairs(points_a, points_b)[:50]]
        assert got == pytest.approx(truth)

    def test_loaded_tree_accepts_inserts(self, tmp_path):
        points = make_points(50, seed=184)
        path = str(tmp_path / "tree.json")
        save_tree(make_tree(points), path)
        loaded = load_tree(path)
        oid = loaded.insert_point((1.0, 1.0))
        assert oid == 50
        validate_tree(loaded)

    def test_guttman_round_trip(self, tmp_path):
        tree = GuttmanRTree(dim=2, max_entries=8)
        for point in make_points(80, seed=185):
            tree.insert(obj=point)
        path = str(tmp_path / "g.json")
        save_tree(tree, path)
        loaded = load_tree(path)
        assert isinstance(loaded, GuttmanRTree)
        validate_tree(loaded)

    def test_rect_only_objects_round_trip(self, tmp_path):
        from repro.rtree.rstar import RStarTree
        tree = RStarTree(dim=2, max_entries=4)
        for i in range(20):
            tree.insert(rect=Rect((i, 0), (i + 1, 1)))
        path = str(tmp_path / "rects.json")
        save_tree(tree, path)
        loaded = load_tree(path)
        assert len(loaded) == 20
        rects = sorted(e.rect.lo[0] for e in loaded.items())
        assert rects == [float(i) for i in range(20)]

    def test_empty_tree_round_trip(self, tmp_path):
        from repro.rtree.rstar import RStarTree
        path = str(tmp_path / "empty.json")
        save_tree(RStarTree(dim=2, max_entries=4), path)
        loaded = load_tree(path)
        assert len(loaded) == 0
        loaded.insert_point((0.0, 0.0))
        assert len(loaded) == 1

    def test_runtime_overrides(self, tmp_path):
        points = make_points(30, seed=186)
        path = str(tmp_path / "tree.json")
        save_tree(make_tree(points), path)
        loaded = load_tree(path, buffer_pages=4)
        assert loaded.pool.capacity == 4


from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry.point import Point
from tests.conftest import make_tree


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow, HealthCheck.function_scoped_fixture,
    ],
)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=60,
    )
)
def test_property_round_trip(tmp_path, raw):
    """Property: save/load preserves structure and content for
    arbitrary point sets."""
    points = [Point(xy) for xy in raw]
    tree = make_tree(points, max_entries=4)
    path = str(tmp_path / "t.json")
    save_tree(tree, path)
    loaded = load_tree(path)
    validate_tree(loaded)
    assert {(e.oid, e.obj) for e in loaded.items()} == {
        (e.oid, e.obj) for e in tree.items()
    }


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(StorageError):
            load_tree(str(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps(
            {"format": "repro-rtree", "version": 99}
        ))
        with pytest.raises(StorageError):
            load_tree(str(path))

    def test_unknown_class_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({
            "format": "repro-rtree", "version": 1,
            "tree_class": "MysteryTree",
        }))
        with pytest.raises(StorageError):
            load_tree(str(path))

    def test_dangling_child_rejected(self, tmp_path):
        points = make_points(80, seed=187)
        path = str(tmp_path / "tree.json")
        save_tree(make_tree(points), path)
        snapshot = json.loads(open(path).read())
        # Drop one non-root node to corrupt the reference graph.
        victim = next(
            n for n in snapshot["nodes"] if n["id"] != snapshot["root"]
        )
        snapshot["nodes"].remove(victim)
        open(path, "w").write(json.dumps(snapshot))
        with pytest.raises(StorageError):
            load_tree(str(path))
