"""Unit + property tests for the pairing heap, binary heap, and the
addressable max-queue (Q_M)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.heap import AddressableMaxQueue, BinaryHeap, PairingHeap

HEAPS = [PairingHeap, BinaryHeap]


@pytest.mark.parametrize("heap_class", HEAPS)
class TestHeapBasics:
    def test_empty(self, heap_class):
        h = heap_class()
        assert len(h) == 0
        assert not h
        with pytest.raises(IndexError):
            h.pop()
        with pytest.raises(IndexError):
            h.peek()

    def test_push_pop_single(self, heap_class):
        h = heap_class()
        h.push(5, "five")
        assert h.peek() == (5, "five")
        assert h.pop() == (5, "five")
        assert not h

    def test_sorted_output(self, heap_class):
        h = heap_class()
        values = [5, 3, 8, 1, 9, 2, 7]
        for v in values:
            h.push(v, str(v))
        out = [h.pop()[0] for __ in range(len(values))]
        assert out == sorted(values)

    def test_tuple_keys(self, heap_class):
        h = heap_class()
        h.push((1.0, 2, 0), "a")
        h.push((1.0, 1, 5), "b")
        h.push((0.5, 9, 9), "c")
        assert h.pop()[1] == "c"
        assert h.pop()[1] == "b"

    def test_interleaved_push_pop(self, heap_class):
        h = heap_class()
        rng = random.Random(0)
        model = []
        for __ in range(500):
            if model and rng.random() < 0.45:
                expected = min(model)
                model.remove(expected)
                assert h.pop()[0] == expected
            else:
                v = rng.randint(0, 1000)
                model.append(v)
                h.push(v, None)
        assert len(h) == len(model)

    def test_clear(self, heap_class):
        h = heap_class()
        h.push(1, "a")
        h.clear()
        assert len(h) == 0


class TestPairingHeapMeld:
    def test_meld_combines(self):
        a, b = PairingHeap(), PairingHeap()
        for v in (5, 1):
            a.push(v, None)
        for v in (3, 0):
            b.push(v, None)
        a.meld(b)
        assert len(a) == 4
        assert len(b) == 0
        assert [a.pop()[0] for __ in range(4)] == [0, 1, 3, 5]

    def test_long_sibling_chain_no_recursion_error(self):
        # Pushing ascending keys creates a long child chain under the
        # root; popping must not blow the recursion limit.
        h = PairingHeap()
        for v in range(50_000, 0, -1):
            h.push(v, None)
        assert h.pop()[0] == 1
        assert h.pop()[0] == 2


@given(st.lists(st.integers(-10_000, 10_000)))
def test_property_heapsort(values):
    """Property: pushing then popping everything sorts."""
    for heap_class in HEAPS:
        h = heap_class()
        for v in values:
            h.push(v, None)
        out = [h.pop()[0] for __ in range(len(values))]
        assert out == sorted(values)


class TestAddressableMaxQueue:
    def test_pop_max_order(self):
        q = AddressableMaxQueue()
        q.insert("a", 3.0, "x")
        q.insert("b", 7.0, "y")
        q.insert("c", 5.0, "z")
        assert q.pop_max()[0] == "b"
        assert q.pop_max()[0] == "c"
        assert q.pop_max()[0] == "a"

    def test_delete_by_key(self):
        q = AddressableMaxQueue()
        q.insert("a", 3.0, None)
        q.insert("b", 7.0, None)
        assert q.delete("b")
        assert not q.delete("b")
        assert q.pop_max()[0] == "a"
        assert not q

    def test_replace_updates_priority(self):
        q = AddressableMaxQueue()
        q.insert("a", 3.0, 1)
        q.insert("a", 9.0, 2)
        assert len(q) == 1
        key, priority, value = q.pop_max()
        assert (key, priority, value) == ("a", 9.0, 2)

    def test_replace_downward(self):
        q = AddressableMaxQueue()
        q.insert("a", 9.0, 1)
        q.insert("b", 5.0, 2)
        q.insert("a", 1.0, 3)
        assert q.pop_max()[0] == "b"
        assert q.pop_max() == ("a", 1.0, 3)

    def test_get_and_contains(self):
        q = AddressableMaxQueue()
        q.insert("k", 2.5, "v")
        assert "k" in q
        assert q.get("k") == (2.5, "v")
        assert q.get("missing") is None

    def test_empty_errors(self):
        q = AddressableMaxQueue()
        with pytest.raises(IndexError):
            q.peek_max()

    def test_items_view(self):
        q = AddressableMaxQueue()
        q.insert("a", 1.0, "x")
        assert dict(q.items()) == {"a": (1.0, "x")}

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["ins", "del", "pop"]),
                st.integers(0, 20),
                st.floats(0, 100),
            ),
            max_size=200,
        )
    )
    def test_property_matches_model(self, ops):
        """Property: lazy deletion behaves like a dict + max scan."""
        q = AddressableMaxQueue()
        model = {}
        for op, key, priority in ops:
            if op == "ins":
                q.insert(key, priority, None)
                model[key] = priority
            elif op == "del":
                assert q.delete(key) == (key in model)
                model.pop(key, None)
            else:
                if model:
                    got = q.pop_max()
                    expected_priority = max(model.values())
                    assert got[1] == expected_priority
                    assert model[got[0]] == expected_priority
                    del model[got[0]]
                else:
                    with pytest.raises(IndexError):
                        q.pop_max()
            assert len(q) == len(model)
