"""Tests for the SHARDS SQL hint, EXPLAIN routing info, and the
shard CLI subcommands."""

import pytest

from repro.cli import main
from repro.errors import QueryError, QuerySyntaxError
from repro.geometry.point import Point
from repro.query.ast_nodes import Query
from repro.query.executor import Database
from repro.query.parser import parse
from repro.query.physical import _operator_for
from repro.shard import clear_caches


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def make_points(n, seed):
    return [
        Point((
            float((i * 31 + seed * 17) % 97),
            float((i * 57 + seed * 29) % 89),
        ))
        for i in range(n)
    ]


def canonical(rows):
    """Sort equal-distance runs by (oid1, oid2): the canonical order
    the router emits directly; the sequential join is free to permute
    within a tie group."""
    out, group, last = [], [], None
    for row in rows:
        if last is not None and row.d != last:
            group.sort(key=lambda r: (r.oid1, r.oid2))
            out.extend(group)
            group = []
        group.append(row)
        last = row.d
    group.sort(key=lambda r: (r.oid1, r.oid2))
    out.extend(group)
    return [tuple(r) for r in out]


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def db():
    database = Database()
    database.create_relation("a", make_points(70, 1))
    database.create_relation("b", make_points(80, 2))
    return database


BASE = (
    "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "ORDER BY d STOP AFTER 20"
)


class TestParser:
    def test_shards_hint(self):
        query = parse(BASE + " SHARDS 4")
        assert query.shards == 4
        assert query.parallel is None

    def test_shards_defaults_to_none(self):
        assert parse(BASE).shards is None

    def test_rejects_non_positive(self):
        with pytest.raises(QuerySyntaxError):
            parse(BASE + " SHARDS 0")
        with pytest.raises(QuerySyntaxError):
            parse(BASE + " SHARDS 2.5")

    def test_rejects_desc(self):
        with pytest.raises(QuerySyntaxError):
            parse(
                "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
                "ORDER BY d DESC SHARDS 2"
            )

    def test_rejects_parallel_combination(self):
        with pytest.raises(QuerySyntaxError):
            parse(BASE + " PARALLEL 2 SHARDS 2")

    def test_operator_selection_guards(self):
        query = Query(relation1="a", relation2="b", shards=2,
                      descending=True)
        with pytest.raises(QueryError):
            _operator_for(query)
        query = Query(relation1="a", relation2="b", shards=2,
                      parallel=2)
        with pytest.raises(QueryError):
            _operator_for(query)


class TestExecution:
    def test_equals_sequential(self, db):
        # Unbounded: the streams carry the same rows, canonical ties.
        full = BASE.replace(" STOP AFTER 20", "")
        sharded = [tuple(r) for r in db.execute(full + " SHARDS 4")]
        assert sharded == canonical(db.execute(full))

    def test_stop_after_prefix(self, db):
        sharded = [tuple(r) for r in db.execute(BASE + " SHARDS 4")]
        full = BASE.replace(" STOP AFTER 20", "")
        assert sharded == canonical(db.execute(full))[:20]

    def test_semi_join(self, db):
        sql = (
            "SELECT *, MIN(d) FROM a, b, DISTANCE(a.geom, b.geom) "
            "AS d GROUP BY a.geom ORDER BY d"
        )
        sharded = {
            (r.oid1, r.d) for r in db.execute(sql + " SHARDS 3")
        }
        sequential = {(r.oid1, r.d) for r in db.execute(sql)}
        assert sharded == sequential

    def test_counters_exposed(self, db):
        list(db.execute(BASE + " SHARDS 4"))
        snap = db.counters.snapshot()
        assert snap["shard_pairs_total"] == 16
        assert snap["shard_pairs_routed"] >= 1
        assert snap["shard_pairs_routed"] + snap["shard_pairs_pruned"] \
            == snap["shard_pairs_total"]

    def test_explain_reports_route(self, db):
        text = db.explain(BASE + " SHARDS 4").pretty()
        assert "shards: 4 per relation" in text
        assert "shard route (str):" in text
        assert "ShardRouterJoin" in text

    def test_explain_analyze_reports_counters(self, db):
        text = db.explain_analyze(BASE + " SHARDS 3").pretty()
        assert "shard_pairs_routed" in text

    def test_attribute_predicates(self, db):
        database = Database()
        database.create_relation(
            "a", make_points(40, 1),
            attributes={"pop": [float(i) for i in range(40)]},
        )
        database.create_relation("b", make_points(50, 2))
        sql = (
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "WHERE a.pop > 20 ORDER BY d"
        )
        sharded = [
            tuple(r) for r in database.execute(sql + " SHARDS 3")
        ]
        assert sharded == canonical(database.execute(sql))


class TestShardCli:
    @pytest.fixture
    def sources(self, tmp_path, capsys):
        a = str(tmp_path / "a.csv")
        b = str(tmp_path / "b.csv")
        run_cli(capsys, "generate", "uniform", "--count", "60",
                "--seed", "3", "--out", a)
        run_cli(capsys, "generate", "uniform", "--count", "70",
                "--seed", "4", "--out", b)
        return a, b

    def test_query_shards_flag(self, capsys, sources):
        a, b = sources
        args = ("--relation", f"a={a}", "--relation", f"b={b}")
        code, plain, __ = run_cli(capsys, "query", BASE, *args)
        assert code == 0
        code, sharded, __ = run_cli(
            capsys, "query", BASE, *args, "--shards", "3"
        )
        assert code == 0
        assert sharded == plain

    def test_shard_build_list_stats(self, tmp_path, capsys, sources):
        a, __ = sources
        catalog_dir = str(tmp_path / "cat")
        code, stdout, __ = run_cli(
            capsys, "shard", "build", a, "--out", catalog_dir,
            "--shards", "4",
        )
        assert code == 0
        assert "fingerprint:" in stdout
        code, stdout, __ = run_cli(capsys, "shard", "list", catalog_dir)
        assert code == 0
        assert "4 shards" in stdout
        code, stdout, __ = run_cli(
            capsys, "shard", "stats", catalog_dir
        )
        assert code == 0
        assert stdout.count("shard ") == 4
        code, stdout, __ = run_cli(
            capsys, "shard", "stats", catalog_dir, "--shard", "0"
        )
        assert code == 0
        assert stdout.count("shard ") == 1

    def test_paged_shards_cursor(self, tmp_path, capsys, sources):
        a, b = sources
        args = ("--relation", f"a={a}", "--relation", f"b={b}")
        cursor = str(tmp_path / "cursor.bin")
        code, first, __ = run_cli(
            capsys, "query", BASE + " SHARDS 3", *args,
            "--page", "8", "--cursor", cursor,
        )
        assert code == 0
        code, second, __ = run_cli(
            capsys, "query", "--resume", cursor, *args, "--page", "12",
        )
        assert code == 0
        code, reference, __ = run_cli(capsys, "query", BASE, *args)
        assert code == 0
        assert (first + second) == reference
