"""Unit tests for Rect."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


def coords(dim=2):
    return st.tuples(*([st.floats(-100, 100)] * dim))


def rects(dim=2):
    return st.builds(
        lambda a, b: Rect(
            tuple(min(x, y) for x, y in zip(a, b)),
            tuple(max(x, y) for x, y in zip(a, b)),
        ),
        coords(dim),
        coords(dim),
    )


class TestConstruction:
    def test_lo_hi(self):
        r = Rect((0, 1), (2, 3))
        assert r.lo == (0.0, 1.0)
        assert r.hi == (2.0, 3.0)

    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            Rect((1, 0), (0, 1))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Rect((0, 0), (1, 1, 1))

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rect((), ())

    def test_degenerate_allowed(self):
        r = Rect((1, 1), (1, 1))
        assert r.is_degenerate()
        assert r.area() == 0.0

    def test_from_point(self):
        p = Point((3, 4))
        r = Rect.from_point(p)
        assert r.lo == r.hi == (3.0, 4.0)

    def test_from_points(self):
        r = Rect.from_points([Point((0, 5)), Point((3, 1))])
        assert r == Rect((0, 1), (3, 5))

    def test_from_points_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rect.from_points([])

    def test_union_of(self):
        r = Rect.union_of([Rect((0, 0), (1, 1)), Rect((2, -1), (3, 0))])
        assert r == Rect((0, -1), (3, 1))

    def test_immutable(self):
        r = Rect((0, 0), (1, 1))
        with pytest.raises(AttributeError):
            r.lo = (5, 5)


class TestMeasures:
    def test_area(self):
        assert Rect((0, 0), (2, 3)).area() == 6.0

    def test_margin(self):
        assert Rect((0, 0), (2, 3)).margin() == 5.0

    def test_center(self):
        assert Rect((0, 0), (2, 4)).center() == Point((1, 2))

    def test_side(self):
        r = Rect((0, 1), (2, 5))
        assert r.side(0) == 2.0
        assert r.side(1) == 4.0


class TestSetOps:
    def test_union(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert a.union(b) == Rect((0, 0), (3, 3))

    def test_intersection_overlapping(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 1), (3, 3))
        assert a.intersection(b) == Rect((1, 1), (2, 2))

    def test_intersection_disjoint_is_none(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert a.intersection(b) is None

    def test_intersects_at_boundary(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((1, 1), (2, 2))
        assert a.intersects(b)

    def test_overlap_area(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 0), (3, 2))
        assert a.overlap_area(b) == 2.0
        assert a.overlap_area(Rect((5, 5), (6, 6))) == 0.0

    def test_contains_point_boundary(self):
        r = Rect((0, 0), (1, 1))
        assert r.contains_point(Point((1, 0)))
        assert not r.contains_point(Point((1.01, 0)))

    def test_contains_rect(self):
        outer = Rect((0, 0), (10, 10))
        assert outer.contains_rect(Rect((1, 1), (2, 2)))
        assert not Rect((1, 1), (2, 2)).contains_rect(outer)

    def test_enlargement(self):
        a = Rect((0, 0), (1, 1))
        assert a.enlargement(Rect((0, 0), (1, 2))) == 1.0
        assert a.enlargement(Rect((0, 0), (1, 1))) == 0.0

    def test_corners_count(self):
        assert len(list(Rect((0, 0, 0), (1, 1, 1)).corners())) == 8


class TestProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), rects())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rects(), rects())
    def test_overlap_symmetric(self, a, b):
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)
        else:
            assert not a.intersects(b)

    @given(rects())
    def test_enlargement_nonnegative(self, a):
        assert a.enlargement(Rect((0, 0), (1, 1))) >= -1e-9
