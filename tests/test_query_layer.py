"""Tests for the SQL dialect: lexer, parser, executor."""

import pytest

from repro.errors import QueryError, QuerySyntaxError
from repro.geometry.point import Point
from repro.query.executor import Database
from repro.query.lexer import tokenize
from repro.query.parser import parse
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_nn, brute_force_pairs, make_points

JOIN_SQL = (
    "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d ORDER BY d"
)
SEMI_SQL = (
    "SELECT *, MIN(d) FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "GROUP BY a.geom ORDER BY d"
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyRel")
        assert tokens[0].type == "IDENT"
        assert tokens[0].text == "MyRel"

    def test_numbers(self):
        tokens = tokenize("3 3.5 1e3 2.5e-2")
        values = [float(t.text) for t in tokens[:-1]]
        assert values == [3.0, 3.5, 1000.0, 0.025]

    def test_operators(self):
        tokens = tokenize("< <= > >= =")
        assert [t.text for t in tokens[:-1]] == ["<", "<=", ">", ">=", "="]

    def test_punctuation(self):
        tokens = tokenize("(a, b.*)")
        assert [t.text for t in tokens[:-1]] == [
            "(", "a", ",", "b", ".", "*", ")"
        ]

    def test_junk_rejected_with_position(self):
        with pytest.raises(QuerySyntaxError) as info:
            tokenize("SELECT @")
        assert info.value.position == 7

    def test_eof_token(self):
        assert tokenize("")[-1].type == "EOF"


class TestParser:
    def test_join_query(self):
        q = parse(JOIN_SQL)
        assert (q.relation1, q.relation2) == ("a", "b")
        assert not q.is_semi_join
        assert q.alias == "d"
        assert q.stop_after is None

    def test_semi_join_query(self):
        q = parse(SEMI_SQL)
        assert q.is_semi_join
        assert q.select_min

    def test_stop_after(self):
        q = parse(JOIN_SQL + " STOP AFTER 42")
        assert q.stop_after == 42

    def test_stop_after_requires_positive_integer(self):
        with pytest.raises(QuerySyntaxError):
            parse(JOIN_SQL + " STOP AFTER 2.5")
        with pytest.raises(QuerySyntaxError):
            parse(JOIN_SQL + " STOP AFTER 0")

    def test_where_range(self):
        q = parse(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
            "WHERE d >= 2 AND d <= 8"
        )
        assert q.distance_bounds() == (2.0, 8.0)

    def test_where_between(self):
        q = parse(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
            "WHERE d BETWEEN 1 AND 3"
        )
        assert q.distance_bounds() == (1.0, 3.0)

    def test_where_flipped_operands(self):
        q = parse(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d WHERE 5 >= d"
        )
        assert q.distance_bounds() == (0.0, 5.0)

    def test_order_desc(self):
        q = parse(JOIN_SQL + " DESC")
        assert q.descending

    def test_custom_alias(self):
        q = parse(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS dist "
            "WHERE dist <= 4 ORDER BY dist"
        )
        assert q.alias == "dist"
        assert q.distance_bounds() == (0.0, 4.0)

    def test_order_by_wrong_alias_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d ORDER BY x")

    def test_where_wrong_alias_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d WHERE x <= 3")

    def test_distance_args_must_match_from_order(self):
        with pytest.raises(QuerySyntaxError):
            parse("SELECT * FROM a, b, DISTANCE(b.g, a.g) AS d")

    def test_group_by_must_target_first_relation(self):
        with pytest.raises(QuerySyntaxError):
            parse(
                "SELECT *, MIN(d) FROM a, b, DISTANCE(a.g, b.g) AS d "
                "GROUP BY b.g"
            )

    def test_contradictory_range_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse(
                "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
                "WHERE d >= 9 AND d <= 2"
            )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse(JOIN_SQL + " banana")

    def test_missing_from_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("SELECT *")


class TestExecutor:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database(counters=CounterRegistry())
        self.points_a = make_points(25, seed=91)
        self.points_b = make_points(30, seed=92)
        database.create_relation("a", self.points_a)
        database.create_relation("b", self.points_b)
        database._test_points = (self.points_a, self.points_b)
        return database

    def test_join_matches_brute_force(self, db):
        points_a, points_b = db._test_points
        rows = list(db.execute(JOIN_SQL + " STOP AFTER 40"))
        truth = brute_force_pairs(points_a, points_b)[:40]
        assert [r.d for r in rows] == pytest.approx([t[0] for t in truth])

    def test_semi_join(self, db):
        points_a, points_b = db._test_points
        rows = list(db.execute(SEMI_SQL))
        nn = brute_force_nn(points_a, points_b)
        assert len(rows) == len(points_a)
        for row in rows:
            assert row.d == pytest.approx(nn[row.oid1][0])

    def test_stop_after_is_lazy(self, db):
        counters = db.counters
        counters.reset()
        rows = list(db.execute(JOIN_SQL + " STOP AFTER 1"))
        cost_one = counters.value("dist_calcs")
        counters.reset()
        list(db.execute(JOIN_SQL + " STOP AFTER 300"))
        cost_many = counters.value("dist_calcs")
        assert len(rows) == 1
        assert cost_one <= cost_many

    def test_where_range_execution(self, db):
        points_a, points_b = db._test_points
        rows = list(db.execute(
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "WHERE d BETWEEN 10 AND 20 ORDER BY d"
        ))
        truth = [
            t for t in brute_force_pairs(points_a, points_b)
            if 10.0 <= t[0] <= 20.0
        ]
        assert len(rows) == len(truth)

    def test_order_desc_execution(self, db):
        rows = list(db.execute(JOIN_SQL + " DESC STOP AFTER 10"))
        ds = [r.d for r in rows]
        assert ds == sorted(ds, reverse=True)

    def test_join_kwargs_forwarded(self, db):
        rows = list(db.execute(
            JOIN_SQL + " STOP AFTER 5", node_policy="simultaneous"
        ))
        assert len(rows) == 5

    def test_unknown_relation(self, db):
        with pytest.raises(QueryError):
            list(db.execute(
                "SELECT * FROM nope, b, DISTANCE(nope.g, b.g) AS d"
            ))

    def test_duplicate_relation_rejected(self, db):
        with pytest.raises(QueryError):
            db.create_relation("a", [Point((0, 0))])

    def test_drop_relation(self):
        db = Database()
        db.create_relation("x", [Point((0, 0))])
        db.drop_relation("x")
        assert db.relations() == []
        with pytest.raises(QueryError):
            db.drop_relation("x")

    def test_create_without_bulk(self):
        db = Database()
        tree = db.create_relation("x", make_points(20, seed=93), bulk=False)
        assert len(tree) == 20

    def test_plan_returns_configured_join(self, db):
        from repro.core.distance_join import IncrementalDistanceJoin
        from repro.core.semi_join import IncrementalDistanceSemiJoin
        from repro.query.parser import parse

        join = db.plan(parse(JOIN_SQL + " STOP AFTER 7"))
        assert isinstance(join, IncrementalDistanceJoin)
        assert join.max_pairs == 7
        semi = db.plan(parse(SEMI_SQL))
        assert isinstance(semi, IncrementalDistanceSemiJoin)

    def test_segment_relations(self):
        """Relations of extended objects flow through the SQL layer."""
        from repro.datasets.tiger_like import (
            roads_segments,
            water_segments,
        )
        water = water_segments(15)
        roads = roads_segments(25)
        db = Database()
        db.create_relation("water", water)
        db.create_relation("roads", roads)
        rows = list(db.execute(
            "SELECT * FROM water, roads, "
            "DISTANCE(water.geom, roads.geom) AS d "
            "ORDER BY d STOP AFTER 10"
        ))
        truth = sorted(
            w.distance_to(r) for w in water for r in roads
        )[:10]
        assert [r.d for r in rows] == pytest.approx(truth)

    def test_rows_carry_geometry(self, db):
        points_a, points_b = db._test_points
        row = next(iter(db.execute(JOIN_SQL + " STOP AFTER 1")))
        assert row.geom1 == points_a[row.oid1]
        assert row.geom2 == points_b[row.oid2]
