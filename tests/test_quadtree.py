"""Tests for the PR quadtree substrate and its use by the joins."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.errors import TreeError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.quadtree import PRQuadtree, validate_quadtree
from repro.rtree.queries import incremental_nearest
from repro.util.counters import CounterRegistry

from tests.conftest import (
    brute_force_nn,
    brute_force_pairs,
    make_points,
    make_tree,
)

UNIVERSE = Rect((0.0, 0.0), (100.0, 100.0))


def make_quadtree(points, bucket=4):
    tree = PRQuadtree(UNIVERSE, bucket_capacity=bucket)
    for point in points:
        tree.insert(point)
    return tree


class TestStructure:
    def test_empty(self):
        tree = PRQuadtree(UNIVERSE)
        assert len(tree) == 0
        assert tree.bounds() is None
        validate_quadtree(tree)

    def test_insert_and_validate(self):
        tree = make_quadtree(make_points(300, seed=131))
        assert len(tree) == 300
        validate_quadtree(tree)

    def test_unbalanced_by_construction(self):
        # A dense cluster plus a sparse rest makes leaf depths differ.
        rng = random.Random(132)
        cluster = [
            Point((rng.uniform(0, 2), rng.uniform(0, 2)))
            for __ in range(100)
        ]
        sparse = [Point((80.0, 80.0)), Point((60.0, 20.0))]
        tree = make_quadtree(cluster + sparse)
        validate_quadtree(tree)
        assert tree.height > 3

    def test_outside_universe_rejected(self):
        tree = PRQuadtree(UNIVERSE)
        with pytest.raises(TreeError):
            tree.insert(Point((500.0, 0.0)))

    def test_non_point_rejected(self):
        tree = PRQuadtree(UNIVERSE)
        with pytest.raises(TreeError):
            tree.insert(Rect((0, 0), (1, 1)))

    def test_duplicate_points_bounded_by_max_depth(self):
        tree = PRQuadtree(UNIVERSE, bucket_capacity=2, max_depth=6)
        for __ in range(20):
            tree.insert(Point((50.0, 50.0)))
        validate_quadtree(tree)
        assert len(tree) == 20

    def test_delete(self):
        points = make_points(100, seed=133)
        tree = make_quadtree(points)
        for oid, point in enumerate(points[:60]):
            assert tree.delete(oid, point)
            validate_quadtree(tree)
        assert len(tree) == 40

    def test_delete_missing(self):
        tree = make_quadtree(make_points(10, seed=134))
        assert not tree.delete(99, Point((1.0, 1.0)))

    def test_delete_collapses(self):
        points = make_points(50, seed=135)
        tree = make_quadtree(points, bucket=4)
        tall = tree.height
        for oid, point in enumerate(points[:46]):
            tree.delete(oid, point)
        validate_quadtree(tree)
        assert tree.height < tall

    def test_items_complete(self):
        points = make_points(70, seed=136)
        tree = make_quadtree(points)
        assert sorted(e.oid for e in tree.items()) == list(range(70))

    def test_bounds(self):
        tree = make_quadtree([Point((10.0, 20.0)), Point((30.0, 5.0))])
        assert tree.bounds() == Rect((10.0, 5.0), (30.0, 20.0))

    def test_estimator_protocol(self):
        tree = make_quadtree(make_points(60, seed=137))
        assert tree.min_subtree_count(3) == 1
        assert tree.avg_subtree_count(0) >= 1.0


class TestQuadtreeQueries:
    def test_incremental_nearest_on_quadtree(self):
        points = make_points(200, seed=138)
        tree = make_quadtree(points)
        query = Point((42.0, 58.0))
        got = [n.distance for n in incremental_nearest(tree, query)]
        from repro.geometry.metrics import EUCLIDEAN
        expected = sorted(EUCLIDEAN.distance(p, query) for p in points)
        assert got == pytest.approx(expected)


class TestQuadtreeJoins:
    def test_quadtree_quadtree_join(self):
        points_a = make_points(60, seed=141)
        points_b = make_points(70, seed=142)
        join = IncrementalDistanceJoin(
            make_quadtree(points_a),
            make_quadtree(points_b),
            counters=CounterRegistry(),
        )
        got = []
        for result in join:
            got.append(result.distance)
            if len(got) == 150:
                break
        truth = [t[0] for t in brute_force_pairs(points_a, points_b)[:150]]
        assert got == pytest.approx(truth)

    def test_mixed_rtree_quadtree_join(self):
        """The paper's generality claim: two different hierarchical
        structures joined by the same algorithm."""
        points_a = make_points(50, seed=143)
        points_b = make_points(50, seed=144)
        join = IncrementalDistanceJoin(
            make_tree(points_a),          # R*-tree
            make_quadtree(points_b),      # PR quadtree
            counters=CounterRegistry(),
        )
        got = [r.distance for r in join]
        truth = [t[0] for t in brute_force_pairs(points_a, points_b)]
        assert got == pytest.approx(truth)

    def test_quadtree_semi_join(self):
        points_a = make_points(40, seed=145)
        points_b = make_points(60, seed=146)
        semi = IncrementalDistanceSemiJoin(
            make_quadtree(points_a),
            make_quadtree(points_b),
            counters=CounterRegistry(),
        )
        got = list(semi)
        nn = brute_force_nn(points_a, points_b)
        assert len(got) == len(points_a)
        for result in got:
            assert result.distance == pytest.approx(nn[result.oid1][0])

    def test_semi_join_with_dmax_strategy(self):
        points_a = make_points(40, seed=147)
        points_b = make_points(40, seed=148)
        semi = IncrementalDistanceSemiJoin(
            make_quadtree(points_a),
            make_quadtree(points_b),
            filter_strategy="inside2",
            dmax_strategy="global_all",
            counters=CounterRegistry(),
        )
        nn = brute_force_nn(points_a, points_b)
        for result in semi:
            assert result.distance == pytest.approx(nn[result.oid1][0])

    def test_knn_join_on_quadtrees(self):
        from repro.core.knn_join import KNearestNeighborJoin

        points_a = make_points(30, seed=151)
        points_b = make_points(40, seed=152)
        join = KNearestNeighborJoin(
            make_quadtree(points_a),
            make_quadtree(points_b),
            k=2,
            counters=CounterRegistry(),
        )
        got = list(join)
        assert len(got) == 2 * len(points_a)
        from repro.geometry.metrics import EUCLIDEAN
        for result in got:
            a = points_a[result.oid1]
            two_nearest = sorted(
                EUCLIDEAN.distance(a, b) for b in points_b
            )[:2]
            assert any(
                result.distance == pytest.approx(d) for d in two_nearest
            )

    def test_max_pairs_estimation_safe_on_quadtree(self):
        # min_subtree_count == 1: the estimator must stay safe.
        points_a = make_points(50, seed=149)
        points_b = make_points(50, seed=150)
        join = IncrementalDistanceJoin(
            make_quadtree(points_a),
            make_quadtree(points_b),
            max_pairs=40,
            counters=CounterRegistry(),
        )
        got = list(join)
        truth = brute_force_pairs(points_a, points_b)[:40]
        assert [r.distance for r in got] == pytest.approx(
            [t[0] for t in truth]
        )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        max_size=80,
    )
)
def test_property_quadtree_invariants(raw):
    """Property: arbitrary insertions keep the quadtree valid and
    complete."""
    tree = PRQuadtree(UNIVERSE, bucket_capacity=3)
    for xy in raw:
        tree.insert(Point(xy))
    validate_quadtree(tree)
    assert len(tree) == len(raw)
    assert sorted(e.oid for e in tree.items()) == list(range(len(raw)))
