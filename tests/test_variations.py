"""Tests for the Section 1 / 2.2.5 variations: closest pair, all
nearest neighbours, and the reference-ordered intersection join."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.variations import (
    IntersectionJoin,
    all_nearest_neighbors,
    closest_pair,
    closest_pairs,
    intersection_join,
)
from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.point import Point
from repro.geometry.shapes import LineSegment
from repro.rtree.bulk import bulk_load_str
from repro.rtree.rstar import RStarTree
from repro.util.counters import CounterRegistry

from tests.conftest import make_points, make_tree


def brute_closest_pair(points):
    return min(
        (EUCLIDEAN.distance(a, b), i, j)
        for i, a in enumerate(points)
        for j, b in enumerate(points)
        if i < j
    )


class TestClosestPair:
    def test_matches_brute_force(self):
        points = make_points(80, seed=121)
        tree = make_tree(points)
        result = closest_pair(tree)
        expected = brute_closest_pair(points)
        assert result.distance == pytest.approx(expected[0])
        assert {result.oid1, result.oid2} == {expected[1], expected[2]}

    def test_too_few_objects(self):
        tree = RStarTree(dim=2, max_entries=4)
        assert closest_pair(tree) is None
        tree.insert_point((0, 0))
        assert closest_pair(tree) is None

    def test_closest_pairs_enumerates_all_unordered(self):
        points = make_points(15, seed=122)
        tree = make_tree(points, max_entries=4)
        got = list(closest_pairs(tree))
        n = len(points)
        assert len(got) == n * (n - 1) // 2
        assert all(r.oid1 < r.oid2 for r in got)
        ds = [r.distance for r in got]
        assert ds == sorted(ds)

    def test_no_self_pairs_even_with_duplicates(self):
        tree = RStarTree(dim=2, max_entries=4)
        for __ in range(4):
            tree.insert_point((1.0, 1.0))
        result = closest_pair(tree)
        assert result.distance == 0.0
        assert result.oid1 != result.oid2

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=2, max_size=40, unique=True,
        )
    )
    def test_property_closest_pair(self, raw):
        points = [Point(xy) for xy in raw]
        tree = make_tree(points, max_entries=4)
        result = closest_pair(tree)
        assert result.distance == pytest.approx(
            brute_closest_pair(points)[0]
        )


class TestAllNearestNeighbors:
    def test_matches_brute_force(self):
        points = make_points(50, seed=123)
        tree = make_tree(points)
        got = list(all_nearest_neighbors(tree))
        assert len(got) == len(points)
        for result in got:
            assert result.oid1 != result.oid2
            expected = min(
                EUCLIDEAN.distance(points[result.oid1], q)
                for j, q in enumerate(points)
                if j != result.oid1
            )
            assert result.distance == pytest.approx(expected)

    def test_sorted_by_distance(self):
        tree = make_tree(make_points(40, seed=124))
        ds = [r.distance for r in all_nearest_neighbors(tree)]
        assert ds == sorted(ds)

    def test_pipelined(self):
        tree = make_tree(make_points(30, seed=125))
        ann = all_nearest_neighbors(tree)
        first = next(ann)
        rest = list(ann)
        assert len(rest) == len(tree) - 1
        assert all(first.distance <= r.distance + 1e-12 for r in rest)


class TestIntersectionJoin:
    def grid_segments(self, horizontal):
        segments = []
        for i in range(5):
            c = 10.0 * i
            if horizontal:
                segments.append(
                    LineSegment(Point((0.0, c)), Point((40.0, c)))
                )
            else:
                segments.append(
                    LineSegment(Point((c, 0.0)), Point((c, 40.0)))
                )
        return segments

    def test_crossings_in_reference_order(self):
        roads = self.grid_segments(horizontal=True)
        rivers = self.grid_segments(horizontal=False)
        tree_r = bulk_load_str(roads, max_entries=4)
        tree_v = bulk_load_str(rivers, max_entries=4)
        house = Point((12.0, 17.0))
        got = list(intersection_join(tree_r, tree_v, house))
        assert len(got) == 25  # full 5x5 grid of crossings
        # Distances from the house must be non-decreasing and correct.
        previous = -1.0
        for result in got:
            crossing = Point((
                rivers[result.oid2].a.x, roads[result.oid1].a.y
            ))
            expected = EUCLIDEAN.distance(house, crossing)
            assert result.reference_distance == pytest.approx(expected)
            assert result.reference_distance >= previous - 1e-12
            previous = result.reference_distance

    def test_nearest_crossing_first(self):
        roads = self.grid_segments(horizontal=True)
        rivers = self.grid_segments(horizontal=False)
        tree_r = bulk_load_str(roads, max_entries=4)
        tree_v = bulk_load_str(rivers, max_entries=4)
        house = Point((21.0, 29.0))
        first = next(intersection_join(tree_r, tree_v, house))
        # Closest grid crossing to (21, 29) is (20, 30).
        assert first.reference_distance == pytest.approx(
            EUCLIDEAN.distance(house, Point((20.0, 30.0)))
        )

    def test_disjoint_sets_yield_nothing(self):
        a = bulk_load_str(
            [Point((float(i), 0.0)) for i in range(5)], max_entries=4
        )
        b = bulk_load_str(
            [Point((float(i), 10.0)) for i in range(5)], max_entries=4
        )
        assert list(intersection_join(a, b, Point((0, 0)))) == []

    def test_point_sets_intersect_on_equality(self):
        shared = Point((3.0, 3.0))
        a = bulk_load_str(
            [shared, Point((0.0, 0.0))], max_entries=4
        )
        b = bulk_load_str(
            [shared, Point((9.0, 9.0))], max_entries=4
        )
        got = list(intersection_join(a, b, Point((0, 0))))
        assert len(got) == 1
        assert got[0].obj1 == shared

    def test_empty_tree(self):
        empty = RStarTree(dim=2, max_entries=4)
        other = bulk_load_str([Point((0.0, 0.0))], max_entries=4)
        assert list(IntersectionJoin(
            empty, other, Point((0, 0))
        )) == []

    def test_lazy_consumption(self):
        roads = self.grid_segments(horizontal=True)
        rivers = self.grid_segments(horizontal=False)
        join = IntersectionJoin(
            bulk_load_str(roads, max_entries=4),
            bulk_load_str(rivers, max_entries=4),
            Point((0.0, 0.0)),
        )
        first = next(join)
        second = next(join)
        assert first.reference_distance <= second.reference_distance


class TestFilterInteractsWithDmax:
    def test_self_semijoin_local_dmax_correct(self):
        """Regression: the self-pair (o, o) must not poison the Local
        d_max bound -- pair_filter runs before bound derivation."""
        points = make_points(40, seed=126)
        tree = make_tree(points)
        got = list(all_nearest_neighbors(
            tree, dmax_strategy="local", counters=CounterRegistry()
        ))
        assert len(got) == len(points)
        for result in got:
            expected = min(
                EUCLIDEAN.distance(points[result.oid1], q)
                for j, q in enumerate(points)
                if j != result.oid1
            )
            assert result.distance == pytest.approx(expected)
