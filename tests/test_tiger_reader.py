"""Tests for the real TIGER/Line RT1 reader (synthetic fixture data)."""

import pytest

from repro.datasets.tiger import (
    TigerFormatError,
    iter_rt1,
    parse_rt1_line,
    read_centroids,
    read_road_centroids,
    read_water_centroids,
)


def make_rt1(cfcc: str, frlong: int, frlat: int, tolong: int,
             tolat: int) -> str:
    """Build a fixed-width Record Type 1 line with the given CFCC and
    signed 6-implied-decimal coordinates (given as raw integers)."""
    line = [" "] * 228
    line[0] = "1"
    line[55:58] = list(f"{cfcc:<3}"[:3])

    def put(start, width, value):
        text = f"{value:+0{width}d}"
        line[start:start + width] = list(text)

    put(190, 10, frlong)
    put(200, 9, frlat)
    put(209, 10, tolong)
    put(219, 9, tolat)
    return "".join(line)


ROAD = make_rt1("A41", -77038000, 38897000, -77036000, 38899000)
WATER = make_rt1("H11", -77100000, 38800000, -77050000, 38850000)
RAIL = make_rt1("B11", -77000000, 38900000, -76990000, 38910000)


class TestParseLine:
    def test_road_record(self):
        record = parse_rt1_line(ROAD)
        assert record["cfcc"] == "A41"
        assert record["start"].x == pytest.approx(-77.038)
        assert record["start"].y == pytest.approx(38.897)
        assert record["end"].x == pytest.approx(-77.036)
        assert record["centroid"].x == pytest.approx(-77.037)
        assert record["centroid"].y == pytest.approx(38.898)

    def test_non_rt1_lines_skipped(self):
        assert parse_rt1_line("2" + " " * 227) is None
        assert parse_rt1_line("") is None

    def test_short_line_rejected(self):
        with pytest.raises(TigerFormatError):
            parse_rt1_line("1" + " " * 100)

    def test_bad_coordinate_rejected(self):
        broken = ROAD[:190] + "##########" + ROAD[200:]
        with pytest.raises(TigerFormatError):
            parse_rt1_line(broken)

    def test_iter_mixed_records(self):
        lines = ["2" + " " * 227, ROAD, WATER, "3" + " " * 227, RAIL]
        records = list(iter_rt1(lines))
        assert [r["cfcc"] for r in records] == ["A41", "H11", "B11"]


class TestReadFiles:
    @pytest.fixture
    def rt1_file(self, tmp_path):
        path = tmp_path / "dc.rt1"
        path.write_text("\n".join([ROAD, WATER, RAIL, ROAD]) + "\n")
        return str(path)

    def test_read_all(self, rt1_file):
        assert len(read_centroids(rt1_file)) == 4

    def test_read_roads(self, rt1_file):
        roads = read_road_centroids(rt1_file)
        assert len(roads) == 2
        assert roads[0].x == pytest.approx(-77.037)

    def test_read_water(self, rt1_file):
        water = read_water_centroids(rt1_file)
        assert len(water) == 1
        assert water[0].x == pytest.approx(-77.075)
        assert water[0].y == pytest.approx(38.825)

    def test_feeds_the_join(self, rt1_file):
        """End to end: real-format data straight into the paper's
        operators."""
        from repro.core.distance_join import IncrementalDistanceJoin
        from repro.rtree.bulk import bulk_load_str
        from repro.util.counters import CounterRegistry

        roads = read_road_centroids(rt1_file)
        water = read_water_centroids(rt1_file)
        join = IncrementalDistanceJoin(
            bulk_load_str(water, max_entries=4),
            bulk_load_str(roads, max_entries=4),
            counters=CounterRegistry(),
        )
        results = list(join)
        assert len(results) == len(water) * len(roads)
