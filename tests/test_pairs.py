"""Unit tests for the item/pair model and the PairDistance oracle."""

import pytest

from repro.core.pairs import NODE, OBJ, OBR, Item, Pair, PairDistance
from repro.errors import ConsistencyError
from repro.geometry.metrics import EUCLIDEAN, MANHATTAN
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.shapes import LineSegment
from repro.util.counters import CounterRegistry


def P(x, y):
    return Point((x, y))


def obj_item(x, y, oid=0):
    return Item(OBJ, Rect.from_point(P(x, y)), oid=oid, obj=P(x, y))


def node_item(rect, node_id=0, level=1):
    return Item(NODE, rect, node_id=node_id, level=level)


class TestItem:
    def test_identity_distinguishes_kinds(self):
        r = Rect((0, 0), (1, 1))
        assert Item(NODE, r, node_id=5).identity() == ("n", 5)
        assert Item(OBJ, r, oid=5).identity() == ("o", 5)
        assert Item(OBR, r, oid=5).identity() == ("o", 5)

    def test_is_node(self):
        r = Rect((0, 0), (1, 1))
        assert Item(NODE, r).is_node
        assert not Item(OBJ, r).is_node


class TestPair:
    def test_is_result(self):
        assert Pair(obj_item(0, 0), obj_item(1, 1), 0.0).is_result
        r = Rect((0, 0), (1, 1))
        assert not Pair(Item(OBR, r), Item(OBR, r), 0.0).is_result

    def test_is_obr_pair(self):
        r = Rect((0, 0), (1, 1))
        assert Pair(Item(OBR, r), Item(OBR, r), 0.0).is_obr_pair
        assert not Pair(Item(OBJ, r), Item(OBR, r), 0.0).is_obr_pair

    def test_node_count(self):
        r = Rect((0, 0), (1, 1))
        assert Pair(node_item(r), node_item(r), 0.0).node_count == 2
        assert Pair(node_item(r), obj_item(0, 0), 0.0).node_count == 1
        assert Pair(obj_item(0, 0), obj_item(1, 1), 0.0).node_count == 0


class TestPairDistance:
    def test_object_distance_uses_metric(self):
        counters = CounterRegistry()
        pd = PairDistance(MANHATTAN, counters)
        d = pd.object_distance(obj_item(0, 0), obj_item(3, 4))
        assert d == 7.0
        assert counters.value("dist_calcs") == 1

    def test_mindist_objects_is_exact(self):
        pd = PairDistance(EUCLIDEAN)
        assert pd.mindist(obj_item(0, 0), obj_item(3, 4)) == 5.0

    def test_mindist_node_counts_bound_calc(self):
        counters = CounterRegistry()
        pd = PairDistance(EUCLIDEAN, counters)
        n = node_item(Rect((10, 0), (12, 2)))
        pd.mindist(n, obj_item(0, 0))
        assert counters.value("bound_calcs") == 1
        assert counters.value("dist_calcs") == 0

    def test_maxdist_upper_bounds_mindist(self):
        pd = PairDistance(EUCLIDEAN)
        a = node_item(Rect((0, 0), (2, 2)))
        b = node_item(Rect((5, 0), (7, 2)))
        assert pd.maxdist(a, b) >= pd.mindist(a, b)

    def test_estimation_maxdist_uses_minmax_for_obrs(self):
        pd = PairDistance(EUCLIDEAN)
        r1 = Rect((0, 0), (2, 2))
        r2 = Rect((10, 0), (12, 2))
        i1 = Item(OBR, r1, oid=0)
        i2 = Item(OBR, r2, oid=1)
        est = pd.estimation_maxdist(i1, i2)
        assert est <= pd.maxdist(i1, i2)
        assert est >= pd.mindist(i1, i2)
        # Node pairs must use the plain (safe) MAXDIST.
        n1 = node_item(r1)
        n2 = node_item(r2)
        assert pd.estimation_maxdist(n1, n2) == pd.maxdist(n1, n2)

    def test_shape_objects_use_exact_distance(self):
        pd = PairDistance(EUCLIDEAN)
        seg1 = LineSegment(P(0, 0), P(10, 0))
        seg2 = LineSegment(P(0, 3), P(10, 3))
        i1 = Item(OBJ, seg1.mbr(), oid=0, obj=seg1)
        i2 = Item(OBJ, seg2.mbr(), oid=1, obj=seg2)
        assert pd.object_distance(i1, i2) == 3.0

    def test_exact_shapes_disabled_falls_back_to_rects(self):
        pd = PairDistance(EUCLIDEAN, exact_shapes=False)
        seg1 = LineSegment(P(0, 0), P(10, 0))
        seg2 = LineSegment(P(5, 3), P(15, 3))
        i1 = Item(OBJ, seg1.mbr(), oid=0, obj=seg1)
        i2 = Item(OBJ, seg2.mbr(), oid=1, obj=seg2)
        # Rect mindist: y gap 3, x overlap -> 3... with rects
        # [0,10]x[0,0] and [5,15]x[3,3] the mindist is 3.
        assert pd.object_distance(i1, i2) == 3.0

    def test_none_objects_use_rect_distance(self):
        pd = PairDistance(EUCLIDEAN)
        i1 = Item(OBJ, Rect((0, 0), (1, 1)), oid=0, obj=None)
        i2 = Item(OBJ, Rect((4, 0), (5, 1)), oid=1, obj=None)
        assert pd.object_distance(i1, i2) == 3.0

    def test_counting_rule_rect_fallback_charges_bound_calcs(self):
        # The canonical counting rule: object_distance on items that
        # only carry rectangles evaluates a rectangle *bound*, so it
        # must charge bound_calcs, never dist_calcs.
        counters = CounterRegistry()
        pd = PairDistance(EUCLIDEAN, counters)
        i1 = Item(OBJ, Rect((0, 0), (1, 1)), oid=0, obj=None)
        i2 = Item(OBJ, Rect((4, 0), (5, 1)), oid=1, obj=None)
        pd.object_distance(i1, i2)
        assert counters.value("dist_calcs") == 0
        assert counters.value("bound_calcs") == 1

    def test_counting_rule_exact_objects_charge_dist_calcs(self):
        counters = CounterRegistry()
        pd = PairDistance(EUCLIDEAN, counters)
        pd.object_distance(obj_item(0, 0), obj_item(3, 4))
        seg1 = LineSegment(P(0, 0), P(10, 0))
        seg2 = LineSegment(P(0, 3), P(10, 3))
        pd.object_distance(
            Item(OBJ, seg1.mbr(), oid=0, obj=seg1),
            Item(OBJ, seg2.mbr(), oid=1, obj=seg2),
        )
        assert counters.value("dist_calcs") == 2
        assert counters.value("bound_calcs") == 0

    def test_exact_shapes_disabled_charges_bound_calcs(self):
        # With exact_shapes off, shape objects degrade to their MBRs —
        # a bound evaluation, charged as one.
        counters = CounterRegistry()
        pd = PairDistance(EUCLIDEAN, counters, exact_shapes=False)
        seg = LineSegment(P(0, 0), P(10, 0))
        pd.object_distance(
            Item(OBJ, seg.mbr(), oid=0, obj=seg),
            Item(OBJ, seg.mbr(), oid=1, obj=seg),
        )
        assert counters.value("dist_calcs") == 0
        assert counters.value("bound_calcs") == 1


class TestConsistencyCheck:
    def test_violation_detected(self):
        pd = PairDistance(EUCLIDEAN, check_consistency=True)
        parent = Pair(obj_item(0, 0), obj_item(3, 4), 5.0)
        with pytest.raises(ConsistencyError):
            pd.check_child(parent, 4.0)

    def test_no_violation_passes(self):
        pd = PairDistance(EUCLIDEAN, check_consistency=True)
        parent = Pair(obj_item(0, 0), obj_item(3, 4), 5.0)
        pd.check_child(parent, 5.0)
        pd.check_child(parent, 6.0)

    def test_disabled_by_default(self):
        pd = PairDistance(EUCLIDEAN)
        parent = Pair(obj_item(0, 0), obj_item(3, 4), 5.0)
        pd.check_child(parent, 0.0)  # no exception

    def test_slack_scales_with_magnitude(self):
        # Regression: at coordinate scale ~1e12 one ULP is ~1e-4, so a
        # fixed absolute 1e-9 slack would flag ordinary rounding noise
        # as a consistency violation.  The slack must scale with the
        # larger operand magnitude.
        pd = PairDistance(EUCLIDEAN, check_consistency=True)
        big = 1e12
        parent = Pair(obj_item(0.0, 0.0), obj_item(big, 0.0), big)
        # Within scaled slack (1e-9 * 1e12 = 1000): rounding noise.
        pd.check_child(parent, big - 0.5)
        pd.check_child(parent, big - 999.0)
        # Beyond the scaled slack: a genuine ordering violation.
        with pytest.raises(ConsistencyError):
            pd.check_child(parent, big - 5000.0)

    def test_small_scale_slack_still_absolute(self):
        # Near the origin the max(1.0, ...) floor keeps the historical
        # absolute 1e-9 slack.
        pd = PairDistance(EUCLIDEAN, check_consistency=True)
        parent = Pair(obj_item(0, 0), obj_item(3, 4), 5.0)
        pd.check_child(parent, 5.0 - 5e-10)
        with pytest.raises(ConsistencyError):
            pd.check_child(parent, 5.0 - 1e-7)
