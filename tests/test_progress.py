"""Certified progress estimation: the estimator's ratcheting lower
bound, the pure queue/operator probes feeding it, and the property
that certification survives quantum boundaries and pickled
suspend/resume without ever overstating true progress."""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.pqueue import (
    AdaptiveHybridPairQueue,
    HybridPairQueue,
    MemoryPairQueue,
)
from repro.query.executor import Database
from repro.service.session import QuerySource
from repro.util.counters import CounterRegistry
from repro.util.telemetry import ProgressEstimator

from tests.conftest import make_points, make_tree


class TestProgressEstimator:
    def test_stop_after_fraction_is_certified(self):
        est = ProgressEstimator()
        report = est.report({"produced": 3, "max_pairs": 10})
        assert report.lower_bound == pytest.approx(0.3)
        assert report.phase == "running"

    def test_done_forces_completion(self):
        est = ProgressEstimator()
        report = est.report({"produced": 0, "max_pairs": None,
                             "done": True})
        assert report.lower_bound == 1.0
        assert report.estimate == 1.0
        assert report.phase == "done"

    def test_zero_produced_is_init(self):
        report = ProgressEstimator().report(
            {"produced": 0, "max_pairs": 10}
        )
        assert report.phase == "init"
        assert report.lower_bound == 0.0

    def test_lower_bound_ratchets_against_regressing_signals(self):
        est = ProgressEstimator()
        est.report({"produced": 8, "max_pairs": 10})
        # A later probe reporting less (e.g. a different operator
        # detail after resume) must not move the floor backwards.
        report = est.report({"produced": 2, "max_pairs": 10})
        assert report.lower_bound == pytest.approx(0.8)

    def test_distance_fraction_raises_only_the_estimate(self):
        est = ProgressEstimator()
        report = est.report({
            "produced": 1, "max_pairs": 100,
            "head_distance": 50.0, "min_distance": 0.0,
            "max_distance": 100.0,
        })
        assert report.lower_bound == pytest.approx(0.01)
        assert report.estimate == pytest.approx(0.5)
        assert report.detail["distance_fraction"] == pytest.approx(0.5)

    def test_descending_distance_fraction(self):
        report = ProgressEstimator().report({
            "produced": 0, "max_pairs": None, "descending": True,
            "head_distance": 75.0, "min_distance": 0.0,
            "max_distance": 100.0,
        })
        assert report.estimate == pytest.approx(0.25)

    def test_unbounded_range_yields_no_fraction(self):
        report = ProgressEstimator().report({
            "produced": 5, "max_pairs": None,
            "head_distance": 10.0, "max_distance": float("inf"),
        })
        assert "distance_fraction" not in report.detail
        assert report.estimate == report.lower_bound

    def test_total_hint_raises_only_the_estimate(self):
        est = ProgressEstimator(total_hint=20)
        report = est.report({"produced": 10, "max_pairs": None})
        assert report.lower_bound == 0.0
        assert report.estimate == pytest.approx(0.5)

    def test_signal_supplied_hint(self):
        report = ProgressEstimator().report(
            {"produced": 5, "max_pairs": None, "total_hint": 10}
        )
        assert report.estimate == pytest.approx(0.5)

    def test_estimate_never_below_lower_bound_nor_above_one(self):
        est = ProgressEstimator(total_hint=2)
        report = est.report({"produced": 9, "max_pairs": 10})
        assert report.lower_bound <= report.estimate <= 1.0

    def test_state_roundtrip_preserves_floor(self):
        est = ProgressEstimator(total_hint=50)
        est.report({"produced": 6, "max_pairs": 10})
        restored = ProgressEstimator.restore(
            pickle.loads(pickle.dumps(est.state()))
        )
        assert restored.lower_bound == pytest.approx(0.6)
        assert restored.total_hint == 50
        report = restored.report({"produced": 0, "max_pairs": 10})
        assert report.lower_bound == pytest.approx(0.6)

    def test_restore_rejects_foreign_state(self):
        with pytest.raises(ValueError):
            ProgressEstimator.restore({"format": "nope"})


class TestQueueProbes:
    def test_memory_queue_head(self):
        queue = MemoryPairQueue()
        assert queue.head_distance() is None
        queue.push((3.0, 1), "a")
        queue.push((1.0, 2), "b")
        assert queue.head_distance() == 1.0
        assert queue.occupancy() == {
            "total": 2, "memory": 2, "disk": 0
        }

    def test_hybrid_queue_head_matches_peek(self):
        queue = HybridPairQueue(dt=2.0)
        for i in range(20):
            queue.push((float(i), i), i)
        probed = queue.head_distance()
        key, __ = queue.peek()
        assert probed <= key[0]
        occupancy = queue.occupancy()
        assert occupancy["total"] == len(queue)
        assert occupancy["disk"] + occupancy["memory"] == \
            occupancy["total"]
        assert occupancy["disk"] > 0  # bands past the cursor spilled

    def test_hybrid_disk_head_is_a_band_floor(self):
        queue = HybridPairQueue(dt=2.0)
        for i in range(30):
            queue.push((float(i), i), i)
        # The probe must stay a lower bound on every subsequent pop,
        # including while the head lives only on the disk tier.
        while len(queue):
            probed = queue.head_distance()
            key, __ = queue.pop()
            assert probed is not None and probed <= key[0]
        assert queue.head_distance() is None

    def test_probes_charge_no_counters(self):
        counters = CounterRegistry()
        queue = HybridPairQueue(dt=2.0, counters=counters)
        for i in range(30):
            queue.push((float(i), i), i)
        before = counters.full_snapshot()
        for __ in range(5):
            queue.head_distance()
            queue.occupancy()
        after = counters.full_snapshot()
        assert after.values == before.values
        assert after.peaks == before.peaks

    def test_adaptive_queue_probe_both_phases(self):
        queue = AdaptiveHybridPairQueue()
        assert queue.head_distance() is None
        queue.push((5.0, 1), "x")
        assert queue.head_distance() == 5.0
        assert queue.occupancy()["total"] == 1


def build_join(max_pairs=None, counters=None):
    tree_a = make_tree(make_points(60, seed=11), counters=counters)
    tree_b = make_tree(make_points(60, seed=12), counters=counters)
    return IncrementalDistanceJoin(
        tree_a, tree_b, max_pairs=max_pairs, counters=counters
    )


class TestOperatorSignals:
    def test_signals_shape_and_done_transition(self):
        join = build_join(max_pairs=5)
        rows = iter(join)
        signals = join.progress_signals()
        assert signals["operator"] == "IncrementalDistanceJoin"
        assert signals["produced"] == 0
        assert signals["max_pairs"] == 5
        for __ in range(5):
            next(rows)
        signals = join.progress_signals()
        assert signals["produced"] == 5
        assert signals["done"]

    def test_signals_are_counter_free(self):
        counters = CounterRegistry()
        join = build_join(max_pairs=10, counters=counters)
        rows = iter(join)
        for __ in range(3):
            next(rows)
        before = counters.full_snapshot()
        for __ in range(10):
            join.progress_signals()
        after = counters.full_snapshot()
        assert after.values == before.values
        assert after.peaks == before.peaks

    def test_head_distance_monotone_while_draining(self):
        join = build_join(max_pairs=40)
        rows = iter(join)
        heads = []
        for __ in range(40):
            next(rows)
            head = join.progress_signals()["head_distance"]
            if head is not None:
                heads.append(head)
        assert heads == sorted(heads)


SQL = (
    "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "ORDER BY d STOP AFTER 30"
)


def build_db():
    db = Database(counters=CounterRegistry())
    db.create_relation("a", make_points(50, seed=21))
    db.create_relation("b", make_points(50, seed=22))
    return db


class TestPlanSignals:
    def test_plan_surfaces_operator_signals(self):
        plan = build_db().physical_plan(SQL)
        rows = plan.rows()
        for __ in range(10):
            next(rows)
        signals = plan.progress_signals()
        assert signals["max_pairs"] == 30
        assert signals["emitted"] == 10

    def test_explanation_contributes_total_hint(self):
        plan = build_db().physical_plan(
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "ORDER BY d"
        )
        __ = plan.explanation  # price the plan first
        rows = plan.rows()
        next(rows)
        signals = plan.progress_signals()
        assert signals.get("total_hint", 0) > 0

    def test_explain_analyze_reports_progress(self):
        analyzed = build_db().explain_analyze(SQL)
        assert analyzed.progress is not None
        assert analyzed.progress["phase"] == "done"
        assert analyzed.progress["lower_bound"] == 1.0
        assert "progress:" in analyzed.pretty()


# ----------------------------------------------------------------------
# The certification property (satellite): across arbitrary quantum
# boundaries and pickled suspend/resume cycles, the session-level lower
# bound is monotone non-decreasing, never exceeds the true completed
# fraction, and ends at exactly 1.0.
# ----------------------------------------------------------------------


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    quanta=st.lists(
        st.integers(min_value=1, max_value=17),
        min_size=1, max_size=12,
    ),
    suspend_mask=st.integers(min_value=0, max_value=2 ** 12 - 1),
    stop_after=st.integers(min_value=1, max_value=60),
)
def test_certified_lower_bound_property(quanta, suspend_mask,
                                        stop_after):
    db = build_db()
    sql = (
        "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
        f"ORDER BY d STOP AFTER {stop_after}"
    )
    true_total = min(stop_after, 50 * 50)
    source = QuerySource(db, sql)
    rows = source.open()
    estimator = ProgressEstimator()
    produced = 0
    bounds = []
    exhausted = False
    for index, quantum in enumerate(quanta):
        for __ in range(quantum):
            try:
                next(rows)
            except StopIteration:
                exhausted = True
                break
            produced += 1
        signals = source.plan.progress_signals()
        if exhausted:
            signals["done"] = True
        report = estimator.report(signals)
        bounds.append(report.lower_bound)
        # Certification: never overstate the truly completed fraction.
        true_fraction = produced / true_total
        if not exhausted:
            assert report.lower_bound <= true_fraction + 1e-9
        assert 0.0 <= report.lower_bound <= 1.0
        assert report.lower_bound <= report.estimate <= 1.0
        if exhausted:
            break
        if suspend_mask & (1 << index):
            # Pickled suspend/resume: a fresh process would rebuild
            # both the source and the estimator from these bytes.
            blob = pickle.dumps(
                {"source": source.save(),
                 "progress": estimator.state()}
            )
            state = pickle.loads(blob)
            source = QuerySource(db, sql)
            source.load(state["source"])
            rows = source.open()
            estimator = ProgressEstimator.restore(state["progress"])
            assert estimator.lower_bound == bounds[-1]
    # Monotone non-decreasing across every boundary.
    assert bounds == sorted(bounds)
    # Drain to completion: the final report must certify 1.0.
    while True:
        try:
            next(rows)
        except StopIteration:
            break
    signals = source.plan.progress_signals()
    signals["done"] = True
    assert estimator.report(signals).lower_bound == 1.0
