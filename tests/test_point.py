"""Unit tests for Point."""

import pytest

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.point import Point


class TestConstruction:
    def test_coords_are_floats(self):
        p = Point((1, 2))
        assert p.coords == (1.0, 2.0)
        assert isinstance(p.coords[0], float)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Point(())

    def test_any_dimension(self):
        p = Point(range(7))
        assert p.dim == 7

    def test_immutable(self):
        p = Point((1, 2))
        with pytest.raises(AttributeError):
            p.coords = (3, 4)


class TestAccess:
    def test_xy(self):
        p = Point((3.5, 4.5))
        assert p.x == 3.5
        assert p.y == 4.5

    def test_y_on_1d_rejected(self):
        with pytest.raises(GeometryError):
            Point((1.0,)).y

    def test_indexing_and_iteration(self):
        p = Point((1, 2, 3))
        assert p[1] == 2.0
        assert list(p) == [1.0, 2.0, 3.0]
        assert len(p) == 3


class TestEquality:
    def test_value_equality(self):
        assert Point((0, 0)) == Point((0.0, 0.0))
        assert Point((0, 0)) != Point((0, 1))

    def test_hashable(self):
        assert len({Point((1, 2)), Point((1, 2)), Point((2, 1))}) == 2

    def test_not_equal_other_type(self):
        assert Point((1, 2)) != (1.0, 2.0)


class TestOps:
    def test_translated(self):
        p = Point((1, 2)).translated((0.5, -0.5))
        assert p == Point((1.5, 1.5))

    def test_translated_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Point((1, 2)).translated((1,))

    def test_check_dim(self):
        with pytest.raises(DimensionMismatchError):
            Point((1, 2)).check_dim(3)

    def test_repr_roundtrips_visually(self):
        assert repr(Point((1, 2.5))) == "Point((1, 2.5))"
