"""Unit tests for request-scoped tracing (repro.util.telemetry):
traceparent propagation, the resumable span recorder, and stitching
operator/worker observability into one span tree."""

import pickle

import pytest

from repro.util.obs import KEEP_LAST, Observer
from repro.util.telemetry import (
    NULL_TELEMETRY,
    RequestTelemetry,
    SpanRecord,
    TraceContext,
    chrome_trace_events,
    new_span_id,
    new_trace_id,
    span_tree,
    stitched_records,
)


class TestTraceContext:
    def test_mint_is_valid_and_unique(self):
        a, b = TraceContext.mint(), TraceContext.mint()
        assert len(a.trace_id) == 32 and len(a.span_id) == 16
        assert a.trace_id != b.trace_id
        assert a.parent_id == ""

    def test_traceparent_roundtrip(self):
        ctx = TraceContext.mint()
        header = ctx.to_traceparent()
        child = TraceContext.from_traceparent(header)
        assert child is not None
        assert child.trace_id == ctx.trace_id
        # The incoming span becomes the parent; a fresh local span id
        # is minted (per the W3C propagation model).
        assert child.parent_id == ctx.span_id
        assert child.span_id != ctx.span_id

    def test_header_case_and_whitespace_tolerated(self):
        ctx = TraceContext.from_traceparent(
            "  00-" + "AB" * 16 + "-" + "CD" * 8 + "-01  "
        )
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-short-deadbeefdeadbeef-01",
        "00-" + "0" * 32 + "-" + "ab" * 8 + "-01",   # all-zero trace
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span
        "00-" + "zz" * 16 + "-" + "ab" * 8 + "-01",  # non-hex
        "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # forbidden version
        "00-" + "ab" * 16 + "-" + "cd" * 8 + "-xx",  # bad flags
    ])
    def test_malformed_headers_yield_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_id_generators(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        assert new_span_id() != new_span_id()


class TestRequestTelemetry:
    def test_nested_spans_form_a_stack(self):
        tel = RequestTelemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                pass
        by_name = {record.name: record for record in tel.spans}
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["outer"].parent_id == tel.ctx.span_id
        assert by_name["inner"].t0 >= by_name["outer"].t0
        assert inner.span_id != outer.span_id

    def test_span_attributes(self):
        tel = RequestTelemetry()
        with tel.span("q", session="s1") as span:
            span.set(pairs=7)
        assert tel.spans[0].attrs == {"session": "s1", "pairs": 7}

    def test_span_bound_drops_and_counts(self):
        tel = RequestTelemetry(max_spans=2)
        for __ in range(5):
            with tel.span("s"):
                pass
        assert len(tel.spans) == 2
        assert tel.dropped == 3

    def test_event_bound(self):
        tel = RequestTelemetry(max_events=3)
        for i in range(5):
            tel.event("tick", i=i)
        assert len(tel.events) == 3
        assert tel.dropped == 2

    def test_clock_is_monotone(self):
        tel = RequestTelemetry()
        readings = [tel.now() for __ in range(5)]
        assert readings == sorted(readings)

    def test_state_restore_preserves_identity_and_spans(self):
        tel = RequestTelemetry()
        with tel.span("before"):
            pass
        tel.event("mark", k=1)
        state = pickle.loads(pickle.dumps(tel.state()))
        resumed = RequestTelemetry.restore(state)
        assert resumed.ctx == tel.ctx
        assert [r.as_dict() for r in resumed.spans] == \
            [r.as_dict() for r in tel.spans]
        assert resumed.events == tel.events

    def test_restored_clock_never_runs_backwards(self):
        tel = RequestTelemetry()
        with tel.span("before"):
            pass
        suspended_at = tel.now()
        resumed = RequestTelemetry.restore(tel.state())
        assert resumed.now() >= suspended_at
        with resumed.span("after"):
            pass
        by_name = {r.name: r for r in resumed.spans}
        assert by_name["after"].t0 >= by_name["before"].t0 + \
            by_name["before"].dur

    def test_restore_rejects_foreign_state(self):
        with pytest.raises(ValueError):
            RequestTelemetry.restore({"format": "something-else"})

    def test_null_telemetry_records_nothing(self):
        span = NULL_TELEMETRY.span("x", a=1)
        with span:
            span.set(b=2)
        NULL_TELEMETRY.event("e")
        assert NULL_TELEMETRY.spans == []
        assert NULL_TELEMETRY.events == []
        assert NULL_TELEMETRY.dropped == 0

    def test_null_telemetry_span_is_shared(self):
        # The disabled path must not allocate per call.
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")

    def test_record_span_defaults_to_root_parent(self):
        tel = RequestTelemetry()
        sid = tel.record_span("io", t0=0.1, dur=0.2)
        assert tel.spans[0].parent_id == tel.ctx.span_id
        assert tel.spans[0].span_id == sid


def _telemetry_with_quantum(duration=0.05):
    """A telemetry whose single 'service.quantum' span covers
    [0.0, duration] exactly (recorded externally for determinism)."""
    tel = RequestTelemetry()
    sid = tel.record_span("service.quantum", t0=0.0, dur=duration)
    return tel, sid


class TestStitching:
    def test_observer_spans_graft_under_containing_span(self):
        tel, quantum_sid = _telemetry_with_quantum(duration=0.05)
        obs = Observer(trace_spans=True)
        # A span event: ended at t=0.03 on the observer clock, took
        # 0.01s.  Anchor 0.0 aligns the clocks.
        obs.events.append(0.03, "span", "join.expand", 0.01)
        records = stitched_records(tel, observers=[(obs, 0.0, "")])
        grafted = [r for r in records if r.name == "join.expand"]
        assert len(grafted) == 1
        assert grafted[0].parent_id == quantum_sid
        assert grafted[0].t0 == pytest.approx(0.02)
        assert grafted[0].dur == pytest.approx(0.01)

    def test_uncontained_span_attaches_to_root(self):
        tel, __ = _telemetry_with_quantum(duration=0.05)
        obs = Observer(trace_spans=True)
        obs.events.append(9.0, "span", "late", 0.01)
        records = stitched_records(tel, observers=[(obs, 0.0, "")])
        late = [r for r in records if r.name == "late"][0]
        assert late.parent_id == tel.ctx.span_id

    def test_exclude_prefixes_drops_duplicate_surface(self):
        tel, __ = _telemetry_with_quantum()
        obs = Observer(trace_spans=True)
        with obs.span("service.quantum"):
            pass
        with obs.span("join.expand"):
            pass
        records = stitched_records(
            tel, observers=[(obs, 0.0, "")],
            exclude_prefixes=("service.",),
        )
        names = [r.name for r in records]
        # One quantum span (the telemetry one), not two.
        assert names.count("service.quantum") == 1
        assert "join.expand" in names

    def test_stitching_is_pure(self):
        tel, __ = _telemetry_with_quantum()
        obs = Observer(trace_spans=True)
        with obs.span("join.expand"):
            pass
        before = len(tel.spans)
        first = stitched_records(tel, observers=[(obs, 0.0, "")])
        second = stitched_records(tel, observers=[(obs, 0.0, "")])
        assert len(tel.spans) == before
        assert len(first) == len(second)

    def test_worker_tracks_become_stage_spans(self):
        tel, __ = _telemetry_with_quantum()
        worker = Observer()
        worker.record_span("worker.build", 0.02)
        worker.record_span("worker.join", 0.03)
        snapshots = {0: worker.snapshot(), 1: worker.snapshot()}
        workers = {0: "w0", 1: "w1"}
        records = stitched_records(
            tel, worker_tracks=[(snapshots, workers, 0.0, None)]
        )
        worker_spans = [r for r in records
                        if r.name.startswith("worker:")]
        assert {r.name for r in worker_spans} == \
            {"worker:w0", "worker:w1"}
        for span in worker_spans:
            assert span.dur == pytest.approx(0.05)
            stages = [r for r in records
                      if r.parent_id == span.span_id]
            assert {s.name for s in stages} == \
                {"worker.build", "worker.join"}
            # Stage spans tile the worker span end to end.
            assert sum(s.dur for s in stages) == pytest.approx(
                span.dur
            )


class TestSpanTree:
    def test_tree_is_connected_and_rooted(self):
        tel = RequestTelemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        tree = span_tree(tel)
        assert tree["name"] == "request"
        assert tree["trace_id"] == tel.ctx.trace_id
        assert len(tree["children"]) == 1
        outer = tree["children"][0]
        assert outer["name"] == "outer"
        assert [c["name"] for c in outer["children"]] == ["inner"]

    def test_orphans_reattach_to_root(self):
        tel = RequestTelemetry()
        tel.record_span("orphan", t0=0.0, dur=0.1,
                        parent_id="feedfacefeedface")
        tree = span_tree(tel)
        assert [c["name"] for c in tree["children"]] == ["orphan"]

    def test_events_ride_on_the_root(self):
        tel = RequestTelemetry()
        tel.event("mark", k=3)
        tree = span_tree(tel)
        assert tree["events"][0]["name"] == "mark"
        assert tree["events"][0]["attrs"] == {"k": 3}


class TestChromeExport:
    def test_events_carry_trace_identity(self):
        tel = RequestTelemetry()
        with tel.span("phase"):
            pass
        tel.event("mark")
        events = chrome_trace_events(tel)
        complete = [e for e in events if e.get("ph") == "X"]
        assert {e["name"] for e in complete} == {"request", "phase"}
        for event in complete:
            assert event["args"]["trace_id"] == tel.ctx.trace_id
        instants = [e for e in events if e.get("ph") == "i"]
        assert instants and instants[0]["name"] == "mark"
        # Metadata events name the process/thread for Perfetto.
        assert any(e.get("ph") == "M" for e in events)

    def test_span_record_roundtrip(self):
        record = SpanRecord(
            name="n", span_id="a" * 16, parent_id="b" * 16,
            t0=1.0, dur=2.0, attrs={"k": "v"},
        )
        assert SpanRecord.from_dict(record.as_dict()) == record
