"""Tests for the partitioned parallel join engine."""

import pickle

import pytest

from repro.core.pairs import OBJ
from repro.errors import JoinError, QueryError, QuerySyntaxError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.parallel import (
    GridPartitioner,
    ParallelDistanceJoin,
    ParallelDistanceSemiJoin,
    make_partitioner,
    reference_point,
)
from repro.query.executor import Database
from repro.query.parser import parse
from repro.rtree.bulk import bulk_load_str
from repro.rtree.rstar import RStarTree
from repro.util.counters import CounterRegistry

from tests.conftest import brute_force_nn, make_points, make_tree


def results_as_triples(join):
    return [(r.distance, r.oid1, r.oid2) for r in join]


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------


class TestPartitioners:
    def test_reference_point_is_mbr_center(self):
        rect = Rect((0.0, 2.0), (4.0, 10.0))
        assert reference_point(rect) == (2.0, 6.0)

    def test_grid_assignment_partitions_every_object(self):
        points = make_points(100, seed=3)
        tree = make_tree(points)
        partitioner = GridPartitioner(tree.bounds(), partitions=4)
        groups = partitioner.assign(tree.items())
        assigned = [obj.oid for group in groups.values() for obj in group]
        assert sorted(assigned) == list(range(100))
        # non-empty groups only
        assert all(groups[idx] for idx in groups)

    def test_grid_tile_rects_cover_bounds(self):
        bounds = Rect((0.0, 0.0), (10.0, 10.0))
        partitioner = GridPartitioner(bounds, partitions=4)
        assert len(partitioner.tiles) == 4
        for tile in partitioner.tiles:
            assert bounds.contains_rect(tile.rect)

    def test_grid_assignment_is_deterministic(self):
        bounds = Rect((0.0, 0.0), (10.0, 10.0))
        p1 = GridPartitioner(bounds, partitions=9)
        p2 = GridPartitioner(bounds, partitions=9)
        rect = Rect((3.2, 7.7), (3.2, 7.7))
        assert p1.tile_of(rect) == p2.tile_of(rect)

    def test_str_balances_skewed_data(self):
        # All mass in one corner: a uniform grid puts everything in one
        # tile, STR splits it into roughly equal groups.
        points = [
            Point((x / 100.0, y / 100.0))
            for x in range(10) for y in range(10)
        ]
        tree = bulk_load_str(points + [Point((100.0, 100.0))])
        grid = make_partitioner("grid", tree, tree, 4)
        str_part = make_partitioner("str", tree, tree, 4)
        grid_sizes = sorted(
            len(g) for g in grid.assign(tree.items()).values()
        )
        str_sizes = sorted(
            len(g) for g in str_part.assign(tree.items()).values()
        )
        assert max(grid_sizes) == 100  # grid collapses
        assert max(str_sizes) <= 40    # STR stays balanced

    def test_str_assignment_partitions_every_object(self):
        points = make_points(120, seed=8)
        tree = make_tree(points)
        partitioner = make_partitioner("str", tree, tree, 6)
        groups = partitioner.assign(tree.items())
        assigned = sorted(
            obj.oid for group in groups.values() for obj in group
        )
        assert assigned == list(range(120))

    def test_unknown_method_rejected(self):
        tree = make_tree(make_points(10, seed=1))
        with pytest.raises(Exception):
            make_partitioner("voronoi", tree, tree, 4)


# ----------------------------------------------------------------------
# task plumbing
# ----------------------------------------------------------------------


class TestTasks:
    def test_tasks_are_picklable(self, small_trees):
        tree_a, tree_b, __ = small_trees
        join = ParallelDistanceJoin(tree_a, tree_b, workers=2)
        assert join.tasks
        for task in join.tasks:
            clone = pickle.loads(pickle.dumps(task))
            assert clone.task_id == task.task_id
            assert len(clone.objects1) == len(task.objects1)

    def test_task_translates_to_original_oids(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = ParallelDistanceJoin(tree_a, tree_b, workers=2,
                                    partitions=4)
        oids1 = set()
        oids2 = set()
        for task in join.tasks:
            oids1.update(o.oid for o in task.objects1)
            oids2.update(o.oid for o in task.objects2)
        assert oids1 == {e.oid for e in tree_a.items()}
        assert oids2 == {e.oid for e in tree_b.items()}


# ----------------------------------------------------------------------
# equivalence with the sequential algorithm
# ----------------------------------------------------------------------


class TestParallelJoin:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 2), ("thread", 4),
    ])
    @pytest.mark.parametrize("method", ["grid", "str"])
    def test_matches_brute_force(
        self, small_trees, backend, workers, method
    ):
        tree_a, tree_b, truth = small_trees
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=workers, backend=backend,
            partitions=4, partition_method=method, batch_size=16,
        )
        assert results_as_triples(join) == truth

    def test_stop_after_k_prefix(self, small_trees):
        tree_a, tree_b, truth = small_trees
        for k in (1, 10, 57):
            join = ParallelDistanceJoin(
                tree_a, tree_b, workers=2, backend="thread",
                partitions=4, max_pairs=k,
            )
            assert results_as_triples(join) == truth[:k]

    def test_medium_dataset(self, medium_trees):
        tree_a, tree_b, __, ___, truth = medium_trees
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=3, backend="thread",
            partitions=6, max_pairs=500,
        )
        assert results_as_triples(join) == truth[:500]

    def test_distance_window(self, small_trees):
        tree_a, tree_b, truth = small_trees
        expected = [t for t in truth if 5.0 <= t[0] <= 20.0]
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="thread",
            partitions=4, min_distance=5.0, max_distance=20.0,
        )
        assert results_as_triples(join) == expected

    def test_pair_filter_sees_original_oids(self, small_trees):
        tree_a, tree_b, truth = small_trees
        keep = lambda pair: (
            pair.item1.kind != OBJ or pair.item1.oid % 2 == 0
        )
        expected = [t for t in truth if t[1] % 2 == 0][:30]
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="thread",
            partitions=4, pair_filter=keep, max_pairs=30,
        )
        assert results_as_triples(join) == expected

    def test_process_backend(self, small_trees):
        tree_a, tree_b, truth = small_trees
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="process",
            partitions=2, max_pairs=40, batch_size=8,
        )
        assert results_as_triples(join) == truth[:40]

    def test_unpicklable_filter_falls_back_to_threads(
        self, small_trees
    ):
        tree_a, tree_b, __ = small_trees
        counters = CounterRegistry()
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="process",
            pair_filter=lambda pair: True,  # lambdas don't pickle
            counters=counters,
        )
        assert join.backend == "thread"
        assert counters.value("parallel_backend_fallback") == 1

    def test_results_carry_payload_objects(self, small_trees):
        tree_a, tree_b, __ = small_trees
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="thread", max_pairs=5,
        )
        for result in join:
            assert isinstance(result.obj1, Point)
            assert isinstance(result.obj2, Point)

    def test_empty_inputs_yield_nothing(self):
        empty = RStarTree(dim=2)
        other = make_tree(make_points(10, seed=4))
        assert list(ParallelDistanceJoin(empty, other, workers=2)) == []
        assert list(ParallelDistanceJoin(other, empty, workers=2)) == []

    def test_dimension_mismatch_rejected(self):
        t2 = RStarTree(dim=2)
        t3 = RStarTree(dim=3)
        with pytest.raises(JoinError):
            ParallelDistanceJoin(t2, t3)

    def test_invalid_arguments_rejected(self, small_trees):
        tree_a, tree_b, __ = small_trees
        with pytest.raises(Exception):
            ParallelDistanceJoin(tree_a, tree_b, workers=0)
        with pytest.raises(Exception):
            ParallelDistanceJoin(tree_a, tree_b, backend="gpu")
        with pytest.raises(Exception):
            ParallelDistanceJoin(tree_a, tree_b, max_pairs=0)

    def test_close_stops_iteration(self, small_trees):
        tree_a, tree_b, __ = small_trees
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="thread",
        )
        next(join)
        join.close()
        with pytest.raises(StopIteration):
            next(join)

    def test_context_manager_closes(self, small_trees):
        tree_a, tree_b, __ = small_trees
        with ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="thread"
        ) as join:
            next(join)
        with pytest.raises(StopIteration):
            next(join)

    def test_counters_aggregate_worker_work(self, small_trees):
        tree_a, tree_b, __ = small_trees
        counters = CounterRegistry()
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="thread",
            partitions=4, max_pairs=50, counters=counters,
        )
        produced = sum(1 for __ in join)
        assert produced == 50
        assert counters.value("parallel_pairs_reported") == 50
        assert counters.value("parallel_tasks") == len(join.tasks)
        assert counters.value("dist_calcs") > 0
        assert counters.value("parallel_batches") > 0
        breakdown = join.worker_breakdown()
        assert breakdown
        assert sum(
            s.value("pairs_reported") for s in breakdown.values()
        ) == counters.value("pairs_reported")


class TestParallelSemiJoin:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 2), ("thread", 4),
    ])
    def test_matches_brute_force_nn(
        self, points_small_a, points_small_b, backend, workers
    ):
        tree_a = make_tree(points_small_a)
        tree_b = make_tree(points_small_b)
        truth = brute_force_nn(points_small_a, points_small_b)
        join = ParallelDistanceSemiJoin(
            tree_a, tree_b, workers=workers, backend=backend,
            partitions=4,
        )
        seen = {}
        previous = -1.0
        for result in join:
            assert result.distance >= previous
            previous = result.distance
            assert result.oid1 not in seen
            seen[result.oid1] = (result.distance, result.oid2)
        assert len(seen) == len(points_small_a)
        for oid, (distance, partner) in seen.items():
            assert distance == pytest.approx(truth[oid][0])

    def test_max_pairs_truncates_output(self, small_trees):
        tree_a, tree_b, __ = small_trees
        join = ParallelDistanceSemiJoin(
            tree_a, tree_b, workers=2, backend="thread",
            partitions=4, max_pairs=10,
        )
        assert len(list(join)) == 10

    def test_max_distance_limits_reported_objects(
        self, points_small_a, points_small_b
    ):
        tree_a = make_tree(points_small_a)
        tree_b = make_tree(points_small_b)
        truth = brute_force_nn(points_small_a, points_small_b)
        limit = 3.0
        join = ParallelDistanceSemiJoin(
            tree_a, tree_b, workers=2, backend="thread",
            partitions=4, max_distance=limit,
        )
        results = list(join)
        expected = {o for o, (d, __) in truth.items() if d <= limit}
        assert {r.oid1 for r in results} == expected


# ----------------------------------------------------------------------
# SQL / CLI wiring
# ----------------------------------------------------------------------


class TestSqlParallel:
    def test_parse_parallel_hint(self):
        query = parse(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
            "ORDER BY d STOP AFTER 10 PARALLEL 4"
        )
        assert query.stop_after == 10
        assert query.parallel == 4

    def test_parallel_requires_positive_integer(self):
        with pytest.raises(QuerySyntaxError):
            parse(
                "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
                "PARALLEL 0"
            )

    def test_parallel_rejects_descending(self):
        with pytest.raises(QuerySyntaxError):
            parse(
                "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
                "ORDER BY d DESC PARALLEL 2"
            )

    def test_executor_rejects_descending_query(self, small_trees):
        # A Query object assembled without the parser must still be
        # rejected at planning time.
        query = parse(
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "PARALLEL 2"
        )
        query.descending = True
        db = Database()
        db.create_relation("a", make_points(10, seed=1))
        db.create_relation("b", make_points(10, seed=2))
        with pytest.raises(QueryError):
            list(db.execute_query(query))

    def test_sql_parallel_matches_sequential(
        self, points_small_a, points_small_b
    ):
        db = Database()
        db.create_relation("a", points_small_a)
        db.create_relation("b", points_small_b)
        base = (
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "ORDER BY d STOP AFTER 25"
        )
        sequential = [
            (r.d, r.oid1, r.oid2) for r in db.execute(base)
        ]
        parallel = [
            (r.d, r.oid1, r.oid2)
            for r in db.execute(base + " PARALLEL 3")
        ]
        assert parallel == sequential

    def test_sql_parallel_semi_join(
        self, points_small_a, points_small_b
    ):
        db = Database()
        db.create_relation("a", points_small_a)
        db.create_relation("b", points_small_b)
        base = (
            "SELECT *, MIN(d) FROM a, b, "
            "DISTANCE(a.geom, b.geom) AS d GROUP BY a.geom"
        )
        sequential = {r.oid1: r.d for r in db.execute(base)}
        parallel = {
            r.oid1: r.d for r in db.execute(base + " PARALLEL 2")
        }
        assert parallel == pytest.approx(sequential)

    def test_explain_reports_parallel_operator(
        self, points_small_a, points_small_b
    ):
        db = Database()
        db.create_relation("a", points_small_a)
        db.create_relation("b", points_small_b)
        plan = db.explain(
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "STOP AFTER 5 PARALLEL 4"
        )
        assert plan.operator == "ParallelDistanceJoin"
        assert plan.parallel == 4
        assert "parallel workers: 4" in plan.pretty()

    def test_cli_workers_flag(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        csv1 = tmp_path / "a.csv"
        csv2 = tmp_path / "b.csv"
        for path, seed in ((csv1, 5), (csv2, 6)):
            path.write_text("".join(
                f"{p.coords[0]},{p.coords[1]}\n"
                for p in make_points(30, seed=seed)
            ))
        code = cli_main([
            "query",
            "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "ORDER BY d STOP AFTER 3",
            "--relation", f"a={csv1}",
            "--relation", f"b={csv2}",
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3
