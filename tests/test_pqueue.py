"""Unit + property tests for the pair queues (memory and hybrid)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.heap import BinaryHeap
from repro.core.pqueue import (
    AdaptiveHybridPairQueue,
    HybridPairQueue,
    MemoryPairQueue,
)
from repro.storage.pager import PageStore
from repro.util.counters import CounterRegistry
from repro.util.obs import Observer


def key(distance, seq=0):
    return (distance, 0, 0, seq)


class TestMemoryQueue:
    def test_orders_by_key(self):
        q = MemoryPairQueue()
        q.push(key(3.0), "c")
        q.push(key(1.0), "a")
        q.push(key(2.0), "b")
        assert [q.pop()[1] for __ in range(3)] == ["a", "b", "c"]

    def test_len_and_bool(self):
        q = MemoryPairQueue()
        assert not q
        q.push(key(1.0), None)
        assert len(q) == 1
        assert q

    def test_binary_heap_variant(self):
        q = MemoryPairQueue(heap_class=BinaryHeap)
        q.push(key(2.0), "b")
        q.push(key(1.0), "a")
        assert q.pop()[1] == "a"


class TestHybridQueue:
    def test_requires_positive_dt(self):
        with pytest.raises(ValueError):
            HybridPairQueue(dt=0.0)

    def test_tier_routing(self):
        q = HybridPairQueue(dt=10.0)
        q.push(key(5.0), "heap")     # < D1 = 10
        q.push(key(15.0), "list")    # < D2 = 20
        q.push(key(35.0), "disk")    # >= D2
        assert q.memory_size() == 2
        assert q.disk_size() == 1
        assert len(q) == 3

    def test_pop_crosses_tiers_in_order(self):
        q = HybridPairQueue(dt=10.0)
        values = [35.0, 5.0, 15.0, 25.0, 95.0, 0.5]
        for i, v in enumerate(values):
            q.push(key(v, i), v)
        out = [q.pop()[1] for __ in range(len(values))]
        assert out == sorted(values)

    def test_refill_skips_empty_bands(self):
        q = HybridPairQueue(dt=1.0)
        q.push(key(1000.0), "far")
        q.push(key(0.1), "near")
        assert q.pop()[1] == "near"
        assert q.pop()[1] == "far"

    def test_push_below_d1_after_refill(self):
        q = HybridPairQueue(dt=10.0)
        q.push(key(15.0), "a")
        assert q.pop()[1] == "a"  # refill advanced D1 to 20
        q.push(key(12.0), "b")    # now goes straight to the heap
        assert q.memory_size() == 1
        assert q.pop()[1] == "b"

    def test_disk_counters(self):
        counters = CounterRegistry()
        q = HybridPairQueue(dt=1.0, counters=counters)
        for i in range(20):
            q.push(key(100.0 + i, i), i)
        assert counters.value("pq_disk_writes") == 20
        while q:
            q.pop()
        assert counters.value("pq_disk_reads") == 20

    def test_disk_pages_freed_after_drain(self):
        store = PageStore()
        q = HybridPairQueue(dt=1.0, store=store)
        for i in range(200):
            q.push(key(50.0 + i * 0.1, i), i)
        while q:
            q.pop()
        assert store.page_count == 0

    def test_page_capacity_respected(self):
        store = PageStore(page_size=128)  # 2 records per page
        q = HybridPairQueue(dt=1.0, store=store)
        for i in range(10):
            q.push(key(100.0, i), i)
        assert store.page_count == 5

    def test_peek_does_not_remove(self):
        q = HybridPairQueue(dt=10.0)
        q.push(key(50.0), "x")
        assert q.peek()[1] == "x"
        assert len(q) == 1

    def test_empty_pop_raises(self):
        q = HybridPairQueue(dt=10.0)
        with pytest.raises(IndexError):
            q.pop()

    def test_equal_distances_ordered_by_tiebreak(self):
        q = HybridPairQueue(dt=10.0)
        q.push((5.0, 1, 0, 0), "second")
        q.push((5.0, 0, 0, 1), "first")
        assert q.pop()[1] == "first"


class TestAdaptiveQueue:
    def test_calibrates_after_warmup(self):
        q = AdaptiveHybridPairQueue(calibration_size=10)
        for i in range(9):
            q.push(key(float(i), i), i)
        assert q.dt is None
        q.push(key(9.0, 9), 9)
        assert q.dt is not None
        assert q.dt > 0.0

    def test_quantile_drives_dt(self):
        q = AdaptiveHybridPairQueue(
            calibration_size=100, target_heap_fraction=0.25
        )
        for i in range(100):
            q.push(key(float(i), i), i)
        # 25th percentile of 0..99 is ~25.
        assert 20.0 <= q.dt <= 30.0

    def test_order_preserved_across_calibration(self):
        import random
        rng = random.Random(4)
        q = AdaptiveHybridPairQueue(calibration_size=50)
        values = [rng.uniform(0, 1000) for __ in range(400)]
        for i, v in enumerate(values):
            q.push(key(v, i), v)
        out = [q.pop()[1] for __ in range(len(values))]
        assert out == sorted(values)

    def test_pop_during_calibration(self):
        q = AdaptiveHybridPairQueue(calibration_size=100)
        q.push(key(5.0), "a")
        q.push(key(1.0), "b")
        assert q.pop()[1] == "b"
        assert len(q) == 1

    def test_all_zero_distances(self):
        q = AdaptiveHybridPairQueue(calibration_size=4)
        for i in range(6):
            q.push(key(0.0, i), i)
        assert q.dt == 1.0  # fallback
        assert len(q) == 6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveHybridPairQueue(calibration_size=0)
        with pytest.raises(ValueError):
            AdaptiveHybridPairQueue(target_heap_fraction=1.5)

    def test_spills_to_disk_after_calibration(self):
        counters = CounterRegistry()
        q = AdaptiveHybridPairQueue(
            calibration_size=20, counters=counters,
            target_heap_fraction=0.2,
        )
        for i in range(200):
            q.push(key(float(i), i), i)
        assert q.disk_size() > 0
        assert counters.value("pq_disk_writes") > 0

    def test_dt_below_one_recorded_losslessly(self):
        """Regression: a calibrated D_T below 1.0 used to be recorded
        via ``observe(int(chosen))``, truncating it to 0 and making
        sub-unit calibrations invisible in reports."""
        counters = CounterRegistry()
        obs = Observer()
        q = AdaptiveHybridPairQueue(
            calibration_size=50, counters=counters, observer=obs
        )
        for i in range(50):
            q.push(key(i / 100.0, i), i)  # distances 0.00 .. 0.49
        assert q.dt is not None
        assert 0.0 < q.dt < 1.0
        micro = counters.peak("pq_adaptive_dt_micro")
        assert micro == max(1, int(round(q.dt * 1_000_000)))
        assert micro >= 1  # int() truncation recorded 0 here
        assert obs.gauge_value("pq_adaptive_dt") == pytest.approx(q.dt)
        # The truncating counter is gone for good.
        assert counters.peak("pq_adaptive_dt") == 0

    def test_dt_micro_floor_is_one(self):
        # Even a pathologically tiny D_T stays visible (floor of 1).
        counters = CounterRegistry()
        q = AdaptiveHybridPairQueue(
            calibration_size=10, counters=counters,
            target_heap_fraction=0.1,
        )
        for i in range(10):
            q.push(key(i * 1e-9, i), i)
        assert q.dt is not None
        assert counters.peak("pq_adaptive_dt_micro") >= 1


def test_subnormal_dt_does_not_overflow_banding():
    # Hypothesis-found regression: calibrating on a subnormal distance
    # (here 2.2e-313) makes distance/dt overflow to infinity inside
    # _band_of, which used to raise OverflowError on int(floor(inf)).
    # Such pairs now land in one far disk band and still pop in order.
    distances = [1.0, 2.2250738585e-313]
    mem = MemoryPairQueue()
    adaptive = AdaptiveHybridPairQueue(calibration_size=2)
    for i, d in enumerate(distances):
        mem.push(key(d, i), i)
        adaptive.push(key(d, i), i)
    assert [adaptive.pop() for __ in distances] == [
        mem.pop() for __ in distances
    ]


def test_huge_band_quotient_is_clamped():
    # Finite dt, huge distance: the same division overflow without any
    # subnormal involved.
    q = HybridPairQueue(dt=1e-300)
    q.push(key(1e9, 0), 0)
    q.push(key(1.0, 1), 1)
    assert q.pop()[1] == 1
    assert q.pop()[1] == 0


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.floats(0, 500), min_size=1, max_size=300),
    st.integers(2, 100),
)
def test_property_adaptive_equals_memory(distances, calibration):
    """Property: the adaptive queue's output order is exactly a plain
    heap's, for any input and calibration size."""
    mem = MemoryPairQueue()
    adaptive = AdaptiveHybridPairQueue(calibration_size=calibration)
    for i, d in enumerate(distances):
        mem.push(key(d, i), i)
        adaptive.push(key(d, i), i)
    out_mem = [mem.pop() for __ in range(len(distances))]
    out_adaptive = [adaptive.pop() for __ in range(len(distances))]
    assert out_mem == out_adaptive


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(0, 500), min_size=1, max_size=300),
    st.floats(0.5, 100),
)
def test_property_hybrid_equals_memory(distances, dt):
    """Property: the hybrid queue yields exactly the order a plain
    heap does, for any push set and any D_T."""
    mem = MemoryPairQueue()
    hybrid = HybridPairQueue(dt=dt)
    for i, d in enumerate(distances):
        mem.push(key(d, i), i)
        hybrid.push(key(d, i), i)
    out_mem = [mem.pop() for __ in range(len(distances))]
    out_hybrid = [hybrid.pop() for __ in range(len(distances))]
    assert out_mem == out_hybrid


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_property_hybrid_interleaved(data):
    """Property: interleaved pushes and pops stay globally sorted as
    long as pushes never go below the last popped key (which is how
    the join uses the queue -- children are at least as far as their
    parent)."""
    dt = data.draw(st.floats(0.5, 50))
    q = HybridPairQueue(dt=dt)
    rng_seed = data.draw(st.integers(0, 10_000))
    rng = random.Random(rng_seed)
    floor = 0.0
    popped = []
    size = 0
    for __ in range(300):
        if size and rng.random() < 0.4:
            k, __v = q.pop()
            popped.append(k[0])
            floor = max(floor, k[0])
            size -= 1
        else:
            d = floor + rng.uniform(0, 100)
            q.push(key(d, rng.randrange(1_000_000)), None)
            size += 1
    assert popped == sorted(popped)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_property_interleaved_queues_match_memory(data):
    """Property: under interleaved pushes and pops, the hybrid and
    adaptive queues pop *exactly* the memory queue's (key, value)
    sequence -- including sub-unit D_T and distances landing exactly
    on band boundaries (``d == k * dt``) -- and the size invariant
    ``len == memory + disk`` holds at every step."""
    dt = data.draw(st.floats(0.01, 2.0))
    calibration = data.draw(st.integers(2, 40))
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    mem = MemoryPairQueue()
    queues = [
        HybridPairQueue(dt=dt),
        AdaptiveHybridPairQueue(calibration_size=calibration),
    ]
    floor = 0.0
    size = 0
    seq = 0
    for __ in range(250):
        if size and rng.random() < 0.4:
            expected = mem.pop()
            for q in queues:
                assert q.pop() == expected
            floor = max(floor, expected[0][0])
            size -= 1
        else:
            if rng.random() < 0.3:
                # Exactly on a band boundary of the hybrid queue.
                band = int(floor / dt) + rng.randrange(0, 5)
                d = max(band * dt, floor)
            else:
                d = floor + rng.uniform(0, 3.0 * dt)
            item_key = key(d, seq)
            mem.push(item_key, seq)
            for q in queues:
                q.push(item_key, seq)
            seq += 1
            size += 1
        for q in queues:
            assert len(q) == q.memory_size() + q.disk_size()
            assert len(q) == size
    while size:
        expected = mem.pop()
        for q in queues:
            assert q.pop() == expected
        size -= 1
