"""Unit tests for the suspendable-cursor building blocks: queue
snapshots (including the mid-band hybrid regression), key-maker
sequence restore, estimator state, and the join-level cursor."""

import pickle
import random

import pytest

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.pqueue import (
    AdaptiveHybridPairQueue,
    HybridPairQueue,
    MemoryPairQueue,
    queue_from_state,
)
from repro.core.pairs import OBJ, Item, Pair
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.core.spec import JoinSpec
from repro.core.tiebreak import KeyMaker
from repro.errors import CursorError
from repro.geometry.rectangle import Rect
from repro.util.counters import CounterRegistry

from tests.conftest import make_points, make_tree


def key(distance, seq=0):
    return (distance, 0, 0, seq)


def drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


def roundtrip(queue, counters=None):
    """state -> pickle -> from_state, as an evicted cursor would."""
    state = pickle.loads(pickle.dumps(queue.state()))
    return queue_from_state(state, counters=counters)


class TestMemoryQueueSnapshot:
    def test_roundtrip_preserves_pop_order(self):
        rng = random.Random(5)
        q = MemoryPairQueue()
        items = [(key(rng.uniform(0, 100), i), f"v{i}")
                 for i in range(50)]
        for k, v in items:
            q.push(k, v)
        expected = drain(roundtrip(q))
        assert expected == sorted(items, key=lambda kv: kv[0])
        # The original queue is unharmed by taking a snapshot.
        assert drain(q) == expected

    def test_empty_queue(self):
        assert drain(roundtrip(MemoryPairQueue())) == []


class TestHybridQueueSnapshot:
    def _filled(self, counters, n=120, dt=5.0, seed=9):
        rng = random.Random(seed)
        q = HybridPairQueue(dt=dt, counters=counters)
        for i in range(n):
            q.push(key(rng.uniform(0, 200), i), i)
        return q

    def test_roundtrip_preserves_pop_order(self):
        q = self._filled(CounterRegistry())
        reference = drain(self._filled(CounterRegistry()))
        assert drain(roundtrip(q)) == reference

    def test_mid_band_suspend_regression(self):
        """Regression: suspending after the disk tier has been
        partially consumed must restore the band cursor and the
        buffered page payloads exactly -- including the still-open
        page of each band."""
        reference_q = self._filled(CounterRegistry())
        reference = drain(reference_q)

        q = self._filled(CounterRegistry())
        popped = [q.pop() for __ in range(40)]  # into the disk bands
        assert q.disk_size() > 0  # the suspend point is mid-band
        restored = roundtrip(q)
        assert q.disk_size() == restored.disk_size()
        assert len(q) == len(restored)
        assert popped + drain(restored) == reference

    def test_snapshot_is_counter_silent(self):
        counters = CounterRegistry()
        q = self._filled(counters)
        before = dict(counters.snapshot())
        q.state()
        assert dict(counters.snapshot()) == before

    def test_restore_is_counter_silent(self):
        counters = CounterRegistry()
        q = self._filled(counters)
        state = q.state()
        before = dict(counters.snapshot())
        queue_from_state(state, counters=counters)
        assert dict(counters.snapshot()) == before

    def test_open_page_still_accepts_pushes_after_restore(self):
        q = self._filled(CounterRegistry(), n=30)
        restored = roundtrip(q)
        for i in range(200, 230):
            restored.push(key(float(i), i), i)
        out = drain(restored)
        assert out == sorted(out, key=lambda kv: kv[0])
        assert len(out) == 60


class TestAdaptiveQueueSnapshot:
    def test_warmup_phase_roundtrip(self):
        q = AdaptiveHybridPairQueue(calibration_size=64)
        for i in range(10):  # still below the calibration threshold
            q.push(key(float(i), i), i)
        restored = roundtrip(q)
        assert drain(restored) == [(key(float(i), i), i)
                                   for i in range(10)]

    def test_calibrated_phase_roundtrip(self):
        rng = random.Random(3)

        def filled():
            q = AdaptiveHybridPairQueue(calibration_size=16)
            for i in range(80):
                q.push(key(rng.uniform(0, 50), i), i)
            return q

        rng = random.Random(3)
        reference = drain(filled())
        rng = random.Random(3)
        q = filled()
        assert q._inner is not None  # calibration has happened
        restored = roundtrip(q)
        assert restored._inner is not None  # never re-calibrates
        assert drain(restored) == reference

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            queue_from_state({"kind": "teleport"})


class TestKeyMakerSequence:
    def _pair(self):
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        item = Item(OBJ, rect, oid=1, obj=None)
        return Pair(item, item, 1.0)

    def test_seq_survives_restore(self):
        pair = self._pair()
        a = KeyMaker("depth_first")
        keys = [a.key(pair, 1.0) for __ in range(5)]
        saved = a.seq

        b = KeyMaker("depth_first")
        b.restore_seq(saved)
        more_a = [a.key(pair, 1.0) for __ in range(5)]
        more_b = [b.key(pair, 1.0) for __ in range(5)]
        assert more_a == more_b
        assert len(set(keys + more_a)) == 10  # seq never repeats


class TestJoinCursor:
    def _trees(self):
        return (
            make_tree(make_points(70, seed=31), max_entries=4),
            make_tree(make_points(90, seed=32), max_entries=4),
        )

    def test_load_validates_format_and_trees(self):
        t1, t2 = self._trees()
        join = IncrementalDistanceJoin(
            t1, t2, JoinSpec(max_pairs=50), counters=CounterRegistry()
        )
        next(iter(join))
        state = join.save()

        with pytest.raises(CursorError):
            IncrementalDistanceJoin.load({"format": "nope"}, t1, t2)
        bad_version = dict(state, version=99)
        with pytest.raises(CursorError):
            IncrementalDistanceJoin.load(bad_version, t1, t2)
        with pytest.raises(CursorError):
            # Trees swapped: the fingerprints must not match.
            IncrementalDistanceJoin.load(state, t2, t1)
        with pytest.raises(CursorError):
            # Wrong operator class for the cursor.
            IncrementalDistanceSemiJoin.load(state, t1, t2)

    def test_fresh_registry_is_primed_with_saved_totals(self):
        t1, t2 = self._trees()
        shared = CounterRegistry()
        join = IncrementalDistanceJoin(
            t1, t2, JoinSpec(max_pairs=60), counters=shared
        )
        results = [next(iter(join)) for __ in range(20)]
        state = pickle.loads(pickle.dumps(join.save()))

        resumed = IncrementalDistanceJoin.load(state, t1, t2)
        results += list(resumed)

        # Fresh, identically built trees for the reference run so the
        # buffer-pool state (node_io) is comparable run to run.
        r1, r2 = self._trees()
        reference = CounterRegistry()
        uninterrupted = list(IncrementalDistanceJoin(
            r1, r2, JoinSpec(max_pairs=60), counters=reference
        ))
        assert results == uninterrupted
        assert dict(resumed.counters.snapshot()) == \
            dict(reference.snapshot())
        assert dict(resumed.counters.snapshot_peaks()) == \
            dict(reference.snapshot_peaks())
