"""Tests for the data set generators."""

import pytest

from repro.datasets.synthetic import (
    gaussian_clusters,
    grid_points,
    scale_counts,
    uniform_points,
    uniform_rects,
)
from repro.datasets.tiger_like import (
    EXTENT,
    ROADS_FULL_SIZE,
    SHARED_POINT,
    WATER_FULL_SIZE,
    roads_points,
    water_points,
)


class TestSynthetic:
    def test_uniform_deterministic(self):
        assert uniform_points(50, seed=1) == uniform_points(50, seed=1)
        assert uniform_points(50, seed=1) != uniform_points(50, seed=2)

    def test_uniform_in_bounds(self):
        for p in uniform_points(100, seed=3, extent=10.0):
            assert 0.0 <= p.x <= 10.0
            assert 0.0 <= p.y <= 10.0

    def test_uniform_dim(self):
        points = uniform_points(10, seed=4, dim=5)
        assert all(p.dim == 5 for p in points)

    def test_rects_valid(self):
        for r in uniform_rects(50, seed=5, extent=100.0, max_side=3.0):
            assert all(lo <= hi for lo, hi in zip(r.lo, r.hi))
            assert all(hi - lo <= 3.0 + 1e-9 for lo, hi in zip(r.lo, r.hi))

    def test_gaussian_clusters_are_clustered(self):
        points = gaussian_clusters(
            500, seed=6, clusters=3, extent=1000.0, spread=5.0
        )
        xs = sorted(p.x for p in points)
        # With 3 tight blobs, the x-range of the middle 80% of points
        # is far below the full extent.
        assert xs[-1] - xs[0] <= 1000.0
        assert len(points) == 500

    def test_grid_counts(self):
        assert len(grid_points(4)) == 16
        assert len(grid_points(3, dim=3)) == 27

    def test_grid_has_ties(self):
        points = grid_points(3, extent=2.0)
        xs = {p.x for p in points}
        assert xs == {0.0, 1.0, 2.0}

    def test_scale_counts(self):
        assert scale_counts([100, 7], 0.1) == [10, 1]
        assert scale_counts([5], 0.0001) == [1]
        with pytest.raises(ValueError):
            scale_counts([5], 0.0)


class TestTigerLike:
    def test_default_scale_is_one_tenth(self):
        assert len(water_points()) == WATER_FULL_SIZE // 10
        assert len(roads_points()) == ROADS_FULL_SIZE // 10

    def test_cardinality_ratio_preserved(self):
        ratio = ROADS_FULL_SIZE / WATER_FULL_SIZE
        assert ratio == pytest.approx(5.35, abs=0.1)

    def test_deterministic(self):
        assert water_points(500) == water_points(500)
        assert roads_points(500) == roads_points(500)

    def test_in_universe(self):
        for p in water_points(300) + roads_points(300):
            assert 0.0 <= p.x <= EXTENT
            assert 0.0 <= p.y <= EXTENT

    def test_distance_zero_pair_planted(self):
        water = water_points(100)
        roads = roads_points(100)
        assert SHARED_POINT in water
        assert SHARED_POINT in roads

    def test_roads_are_skewed_not_uniform(self):
        """Urban clustering: point density varies strongly across a
        coarse grid (a uniform set would be nearly flat)."""
        points = roads_points(4000)
        cells = {}
        for p in points:
            key = (int(p.x // (EXTENT / 8)), int(p.y // (EXTENT / 8)))
            cells[key] = cells.get(key, 0) + 1
        counts = sorted(cells.values())
        # Top cell should hold several times the median cell.
        median = counts[len(counts) // 2]
        assert counts[-1] > 3 * max(1, median)

    def test_water_is_linear_clustered(self):
        """River sampling: many points share near-collinear neighbors,
        so the fraction of occupied coarse cells stays low."""
        points = water_points(2000)
        occupied = {
            (int(p.x // (EXTENT / 30)), int(p.y // (EXTENT / 30)))
            for p in points
        }
        # 2000 uniform points would occupy ~89% of the 900 cells
        # (1 - e^(-2000/900)); polyline clustering stays well below.
        assert len(occupied) < 0.70 * 30 * 30

    def test_count_validation(self):
        with pytest.raises(ValueError):
            water_points(0)
        with pytest.raises(ValueError):
            roads_points(-3)

    def test_exact_count(self):
        assert len(water_points(123)) == 123
        assert len(roads_points(457)) == 457
