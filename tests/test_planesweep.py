"""Unit + property tests for the plane-sweep candidate generator."""

from hypothesis import given, settings, strategies as st

from repro.core.planesweep import restrict_entries, sweep_pairs
from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.rectangle import Rect
from repro.rtree.entry import LeafEntry

INF = float("inf")


def entries(intervals):
    """Entries with the given x-intervals (y fixed)."""
    return [
        LeafEntry(Rect((lo, 0.0), (hi, 1.0)), oid)
        for oid, (lo, hi) in enumerate(intervals)
    ]


def brute(a, b, gap):
    out = set()
    for e1 in a:
        for e2 in b:
            if (
                e2.rect.lo[0] <= e1.rect.hi[0] + gap
                and e1.rect.lo[0] <= e2.rect.hi[0] + gap
            ):
                out.add((e1.oid, e2.oid))
    return out


class TestSweep:
    def test_paper_figure4_lookahead(self):
        # Figure 4: with a non-zero max distance, r1 must be paired
        # with s3 (projection gap <= Dmax) in addition to s1 and s2.
        r = entries([(10, 20)])
        s = entries([(8, 12), (15, 25), (22, 28), (40, 50)])
        got = set(sweep_pairs(r, s, max_gap=3.0))
        assert {(e2.oid) for __, e2 in got} == {0, 1, 2}

    def test_zero_gap_is_intersection_join(self):
        a = entries([(0, 5), (10, 15)])
        b = entries([(4, 6), (20, 30)])
        got = {(e1.oid, e2.oid) for e1, e2 in sweep_pairs(a, b, 0.0)}
        assert got == {(0, 0)}

    def test_infinite_gap_is_cross_product(self):
        a = entries([(0, 1), (5, 6)])
        b = entries([(100, 101)])
        got = list(sweep_pairs(a, b, INF))
        assert len(got) == 2

    def test_empty_inputs(self):
        assert list(sweep_pairs([], entries([(0, 1)]), 1.0)) == []
        assert list(sweep_pairs(entries([(0, 1)]), [], 1.0)) == []

    def test_no_duplicates_on_equal_lows(self):
        a = entries([(5, 10), (5, 12)])
        b = entries([(5, 8), (5, 9)])
        got = list(sweep_pairs(a, b, 1.0))
        keys = [(e1.oid, e2.oid) for e1, e2 in got]
        assert len(keys) == len(set(keys)) == 4

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 10)),
            max_size=20,
        ),
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 10)),
            max_size=20,
        ),
        st.floats(0, 30),
    )
    def test_property_matches_brute_force(self, raw_a, raw_b, gap):
        a = entries([(lo, lo + w) for lo, w in raw_a])
        b = entries([(lo, lo + w) for lo, w in raw_b])
        got = [(e1.oid, e2.oid) for e1, e2 in sweep_pairs(a, b, gap)]
        assert len(got) == len(set(got)), "duplicates produced"
        assert set(got) == brute(a, b, gap)


class TestRestrict:
    def test_keeps_close_entries(self):
        region = Rect((0, 0), (10, 10))
        close = LeafEntry(Rect((11, 0), (12, 1)), 0)
        far = LeafEntry(Rect((50, 50), (51, 51)), 1)
        kept = restrict_entries([close, far], region, EUCLIDEAN, 5.0)
        assert kept == [close]

    def test_infinite_distance_keeps_all(self):
        region = Rect((0, 0), (1, 1))
        items = entries([(100, 101), (200, 201)])
        assert restrict_entries(items, region, EUCLIDEAN, INF) == items

    def test_boundary_inclusive(self):
        region = Rect((0, 0), (1, 1))
        at_limit = LeafEntry(Rect((4, 0), (5, 1)), 0)
        kept = restrict_entries([at_limit], region, EUCLIDEAN, 3.0)
        assert kept == [at_limit]
