"""Tests for attribute predicates and plan selection (paper Sections 1
and 5: "find the city nearest to any river, such that the city has a
population of more than 5 million", and the two query plans)."""

import random

import pytest

from repro.errors import QueryError, QuerySyntaxError
from repro.geometry.metrics import EUCLIDEAN
from repro.query.executor import Database
from repro.query.parser import parse
from repro.util.counters import CounterRegistry

from tests.conftest import make_points


def build_db(seed_cities=211, seed_rivers=212, city_count=80,
             river_count=120):
    rng = random.Random(seed_cities + 1000)
    cities = make_points(city_count, seed=seed_cities)
    populations = [rng.randint(1_000, 10_000_000) for __ in cities]
    rivers = make_points(river_count, seed=seed_rivers)
    db = Database(counters=CounterRegistry())
    db.create_relation("cities", cities,
                       attributes={"pop": populations})
    db.create_relation("rivers", rivers)
    return db, cities, populations, rivers


def brute_answer(cities, populations, rivers, threshold, limit):
    qualifying = [
        (EUCLIDEAN.distance(c, r), i, j)
        for i, c in enumerate(cities)
        if populations[i] > threshold
        for j, r in enumerate(rivers)
    ]
    qualifying.sort()
    return qualifying[:limit]


SQL = (
    "SELECT * FROM cities, rivers, "
    "DISTANCE(cities.geom, rivers.geom) AS d "
    "WHERE cities.pop > {threshold} ORDER BY d STOP AFTER {limit}"
)


class TestParsing:
    def test_attribute_predicate_parsed(self):
        query = parse(SQL.format(threshold=5_000_000, limit=3))
        assert len(query.attribute_predicates) == 1
        predicate = query.attribute_predicates[0]
        assert predicate.relation == "cities"
        assert predicate.attribute == "pop"
        assert predicate.op == ">"
        assert predicate.value == 5_000_000

    def test_mixes_with_distance_predicates(self):
        query = parse(
            "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
            "WHERE a.size >= 10 AND d <= 5 AND b.kind = 2"
        )
        assert len(query.attribute_predicates) == 2
        assert query.distance_bounds() == (0.0, 5.0)

    def test_unknown_relation_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse(
                "SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
                "WHERE c.x > 1"
            )

    def test_predicate_ops(self):
        from repro.query.ast_nodes import AttributePredicate
        p = AttributePredicate("r", "a", "<", 5.0)
        assert p.matches(4.9) and not p.matches(5.0)
        p = AttributePredicate("r", "a", ">=", 5.0)
        assert p.matches(5.0) and not p.matches(4.9)
        p = AttributePredicate("r", "a", "=", 5.0)
        assert p.matches(5.0) and not p.matches(5.1)


class TestExecution:
    @pytest.mark.parametrize("strategy", ["pipeline", "prefilter", "auto"])
    def test_strategies_agree_with_brute_force(self, strategy):
        db, cities, populations, rivers = build_db()
        threshold, limit = 5_000_000, 10
        rows = list(db.execute(
            SQL.format(threshold=threshold, limit=limit),
            strategy=strategy,
        ))
        truth = brute_answer(cities, populations, rivers, threshold,
                             limit)
        assert len(rows) == len(truth)
        for row, (dist, i, j) in zip(rows, truth):
            assert row.d == pytest.approx(dist)
            assert row.oid1 == i
            assert populations[row.oid1] > threshold

    def test_prefilter_reports_original_oids(self):
        db, cities, populations, __ = build_db()
        rows = list(db.execute(
            SQL.format(threshold=8_000_000, limit=5),
            strategy="prefilter",
        ))
        for row in rows:
            assert populations[row.oid1] > 8_000_000
            assert row.geom1 == cities[row.oid1]

    def test_predicates_on_both_sides(self):
        rng = random.Random(7)
        stores = make_points(50, seed=221)
        store_sizes = [rng.uniform(0, 100) for __ in stores]
        depots = make_points(50, seed=222)
        depot_caps = [rng.uniform(0, 100) for __ in depots]
        db = Database(counters=CounterRegistry())
        db.create_relation("stores", stores,
                           attributes={"size": store_sizes})
        db.create_relation("depots", depots,
                           attributes={"cap": depot_caps})
        sql = (
            "SELECT * FROM stores, depots, "
            "DISTANCE(stores.geom, depots.geom) AS d "
            "WHERE stores.size > 50 AND depots.cap > 50 "
            "ORDER BY d STOP AFTER 5"
        )
        for strategy in ("pipeline", "prefilter"):
            rows = list(db.execute(sql, strategy=strategy))
            for row in rows:
                assert store_sizes[row.oid1] > 50
                assert depot_caps[row.oid2] > 50

    def test_semi_join_with_predicate(self):
        db, cities, populations, rivers = build_db()
        sql = (
            "SELECT *, MIN(d) FROM cities, rivers, "
            "DISTANCE(cities.geom, rivers.geom) AS d "
            "WHERE cities.pop > 5000000 GROUP BY cities.geom ORDER BY d"
        )
        qualifying = [
            i for i in range(len(cities))
            if populations[i] > 5_000_000
        ]
        for strategy in ("pipeline", "prefilter"):
            rows = list(db.execute(sql, strategy=strategy))
            assert sorted(r.oid1 for r in rows) == qualifying
            for row in rows:
                expected = min(
                    EUCLIDEAN.distance(cities[row.oid1], r)
                    for r in rivers
                )
                assert row.d == pytest.approx(expected)

    def test_unqualified_attribute_rejected(self):
        db, *__ = build_db()
        with pytest.raises(QueryError):
            list(db.execute(
                "SELECT * FROM cities, rivers, "
                "DISTANCE(cities.geom, rivers.geom) AS d "
                "WHERE cities.nonexistent > 1"
            ))

    def test_attribute_length_mismatch_rejected(self):
        db = Database()
        with pytest.raises(QueryError):
            db.create_relation(
                "x", make_points(5, seed=1), attributes={"a": [1, 2]}
            )

    def test_no_matching_objects(self):
        db, *__ = build_db()
        rows = list(db.execute(
            SQL.format(threshold=999_999_999, limit=5)
        ))
        assert rows == []


class TestPlanChoice:
    def test_high_selectivity_prefers_prefilter(self):
        """A predicate keeping ~0.1% of a large relation should make
        restrict-first the winner (the paper's Section 5 intuition)."""
        db, cities, populations, __ = build_db(
            city_count=400, river_count=400
        )
        plan = db.explain(
            SQL.format(threshold=9_990_000, limit=400)
            .replace(" STOP AFTER 400", "")
        )
        assert plan.selectivity1 < 0.05
        assert plan.prefilter_cost < plan.pipeline_cost
        assert plan.strategy == "prefilter"

    def test_low_selectivity_prefers_pipeline(self):
        db, *__ = build_db()
        plan = db.explain(
            SQL.format(threshold=1, limit=3)
        )
        assert plan.selectivity1 > 0.9
        assert plan.strategy == "pipeline"

    def test_explain_reports_selectivities(self):
        db, cities, populations, __ = build_db()
        plan = db.explain(SQL.format(threshold=5_000_000, limit=3))
        expected = sum(
            1 for p in populations if p > 5_000_000
        ) / len(populations)
        assert plan.selectivity1 == pytest.approx(expected)
        assert plan.selectivity2 == 1.0
        assert "selectivity" in plan.pretty()

    def test_auto_executes_correctly_either_way(self):
        db, cities, populations, rivers = build_db()
        for threshold in (1, 9_900_000):
            rows = list(db.execute(
                SQL.format(threshold=threshold, limit=5)
            ))
            truth = brute_answer(
                cities, populations, rivers, threshold, 5
            )
            assert [r.d for r in rows] == pytest.approx(
                [t[0] for t in truth]
            )

    def test_invalid_strategy_rejected(self):
        db, *__ = build_db()
        with pytest.raises(ValueError):
            list(db.execute(
                SQL.format(threshold=1, limit=1), strategy="psychic"
            ))
