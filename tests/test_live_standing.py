"""Tests for the standing distance join (``repro.live``).

Covers the delta vocabulary, the result store, the supported spec
subset, insert/delete repair against brute-force ground truth, the
observe fan-out protocol, the suspendable cursor, the asymptotic
repair-vs-recompute counter gate, and the ``WATCH ... NOTIFY`` SQL
surface.

Oracle discipline: when the K-th place is *tied*, a pull join's top-K
tie subset is arbitrary while the standing join's is the canonical
smallest under ``(distance, oid1, oid2)`` -- so every oracle here
either uses distinct distances or compares canonically.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.core.distance_join import IncrementalDistanceJoin, JoinResult
from repro.core.spec import JoinSpec
from repro.errors import (
    CursorError,
    LiveError,
    QueryError,
    QuerySyntaxError,
)
from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.point import Point
from repro.live import (
    ADD,
    LIVE_CURSOR_FORMAT,
    REMOVE,
    Delta,
    ResultStore,
    StandingJoin,
    pair_key,
    validate_live_spec,
)
from repro.query.executor import Database
from repro.query.logical import build_logical_plan
from repro.query.parser import parse
from repro.query.physical import build_physical_plan
from repro.util.counters import CounterRegistry
from tests.conftest import make_points, make_tree

WATCH_SQL = (
    "WATCH SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
    "ORDER BY d STOP AFTER {k} NOTIFY"
)


def canonical_topk(objs1, objs2, k=None, dmin=0.0, dmax=math.inf):
    """Ground truth: the k canonically-smallest qualifying pair keys.

    ``objs1`` / ``objs2`` map oid -> Point; the returned keys are the
    standing join's published order regardless of distance ties.
    """
    keys = sorted(
        (EUCLIDEAN.distance(a, b), oid1, oid2)
        for oid1, a in objs1.items()
        for oid2, b in objs2.items()
        if dmin <= EUCLIDEAN.distance(a, b) <= dmax
    )
    return keys if k is None else keys[:k]


def result_keys(standing):
    return [pair_key(r) for r in standing.result()]


def make_standing(k=10, na=60, nb=80, seed_a=11, seed_b=22, **kwargs):
    points_a = make_points(na, seed=seed_a)
    points_b = make_points(nb, seed=seed_b)
    tree_a = make_tree(points_a)
    tree_b = make_tree(points_b)
    objs1 = dict(enumerate(points_a))
    objs2 = dict(enumerate(points_b))
    counters = kwargs.pop("counters", CounterRegistry())
    standing = StandingJoin(
        tree_a, tree_b, JoinSpec(max_pairs=k),
        counters=counters, **kwargs,
    )
    return standing, objs1, objs2, counters


class TestDeltaVocabulary:
    def test_pair_key_total_order(self):
        a = JoinResult(1.5, 3, None, 7, None)
        b = JoinResult(1.5, 3, None, 8, None)
        c = JoinResult(0.5, 9, None, 9, None)
        assert pair_key(a) == (1.5, 3, 7)
        assert sorted([a, b, c], key=pair_key) == [c, a, b]

    def test_delta_result_and_key(self):
        p, q = Point((0.0, 0.0)), Point((3.0, 4.0))
        delta = Delta(ADD, 4, 5.0, 1, p, 2, q)
        assert delta.result == JoinResult(5.0, 1, p, 2, q)
        assert delta.key == (5.0, 1, 2)
        assert delta.op == ADD and delta.seq == 4
        assert REMOVE == "-"


class TestResultStore:
    def pair(self, d, oid1=0, oid2=0):
        return JoinResult(d, oid1, None, oid2, None)

    def test_add_keeps_canonical_order_and_dedupes(self):
        store = ResultStore()
        assert store.add(self.pair(2.0, 1, 1))
        assert store.add(self.pair(1.0, 5, 5))
        assert store.add(self.pair(2.0, 1, 0))
        assert not store.add(self.pair(2.0, 1, 1))  # idempotent
        assert [pair_key(e) for e in store] == [
            (1.0, 5, 5), (2.0, 1, 0), (2.0, 1, 1),
        ]
        assert len(store) == 3

    def test_trim_and_tail(self):
        store = ResultStore(capacity=2)
        for d in (3.0, 1.0, 2.0):
            store.add(self.pair(d))
        assert store.trim() == 1
        assert store.tail_key() == (2.0, 0, 0)
        assert ResultStore().trim() == 0  # no capacity, no-op

    def test_remove_oid_by_side(self):
        store = ResultStore()
        store.add(self.pair(1.0, 1, 9))
        store.add(self.pair(2.0, 1, 8))
        store.add(self.pair(3.0, 2, 9))
        assert store.remove_oid(1, 1) == 2
        assert store.remove_oid(2, 9) == 1
        assert store.remove_oid(2, 9) == 0
        assert len(store) == 0

    def test_top_and_replace(self):
        store = ResultStore(capacity=3)
        store.replace([self.pair(d, i, i) for i, d in
                       enumerate((5.0, 1.0, 3.0, 4.0))])
        assert len(store) == 3  # replace trims
        assert [e.distance for e in store.top(2)] == [1.0, 3.0]
        assert [e.distance for e in store.top(None)] == [1.0, 3.0, 4.0]
        assert store.top_keys(1) == [(1.0, 1, 1)]

    def test_state_round_trip(self):
        store = ResultStore(capacity=4)
        entries = [self.pair(1.0, 1, 2), self.pair(2.0, 3, 4)]
        for e in entries:
            store.add(e)
        store.complete = False
        state = pickle.loads(pickle.dumps(store.state()))
        clone = ResultStore.from_state(state, entries)
        assert clone.capacity == 4 and clone.complete is False
        assert list(clone.top_keys(None)) == list(store.top_keys(None))


class TestSpecValidation:
    def test_accepts_topk_and_range(self):
        validate_live_spec(JoinSpec(max_pairs=5))
        validate_live_spec(JoinSpec(max_distance=3.0))

    @pytest.mark.parametrize("knobs,fragment", [
        (dict(max_pairs=5, descending=True), "descending"),
        (dict(max_pairs=5, pair_filter=lambda d, a, b: True),
         "pair_filter"),
        (dict(max_pairs=5, leaf_mode="obr"), "leaf_mode"),
        (dict(max_pairs=5, queue="adaptive"), "queue"),
        (dict(), "finite result"),
    ])
    def test_rejects_unmaintainable_specs(self, knobs, fragment):
        with pytest.raises(LiveError, match=fragment):
            validate_live_spec(JoinSpec(**knobs))

    def test_rejects_self_join(self):
        tree = make_tree(make_points(10, seed=1))
        with pytest.raises(LiveError, match="self join"):
            StandingJoin(tree, tree, JoinSpec(max_pairs=2))

    def test_rejects_unversioned_trees(self):
        class Bare:
            pass

        with pytest.raises(LiveError, match="_mutations"):
            StandingJoin(Bare(), Bare(), JoinSpec(max_pairs=2))

    def test_rejects_bad_frontier(self):
        tree_a = make_tree(make_points(10, seed=1))
        tree_b = make_tree(make_points(10, seed=2))
        with pytest.raises(LiveError, match="frontier"):
            StandingJoin(
                tree_a, tree_b, JoinSpec(max_pairs=2), frontier=0
            )

    def test_rejects_bad_side(self):
        standing, __, __, __ = make_standing(k=3, na=10, nb=10)
        with pytest.raises(LiveError, match="side"):
            standing.insert(500, Point((1.0, 1.0)), side=3)


class TestBootstrap:
    def test_initial_result_matches_brute_force(self, small_trees):
        tree_a, tree_b, truth = small_trees
        counters = CounterRegistry()
        standing = StandingJoin(
            tree_a, tree_b, JoinSpec(max_pairs=12), counters=counters
        )
        assert result_keys(standing) == truth[:12]
        deltas = standing.poll()
        assert [d.op for d in deltas] == [ADD] * 12
        assert [d.key for d in deltas] == truth[:12]
        assert [d.seq for d in deltas] == list(range(1, 13))
        assert standing.pending() == 0
        assert standing.updates == 0
        assert counters.value("live_repairs") == 0

    def test_poll_limit_pages_the_outbox(self, small_trees):
        tree_a, tree_b, __ = small_trees
        standing = StandingJoin(tree_a, tree_b, JoinSpec(max_pairs=9))
        assert len(standing.poll(4)) == 4
        assert standing.pending() == 5
        assert len(standing.poll()) == 5

    def test_range_mode_bootstrap(self, small_trees):
        tree_a, tree_b, truth = small_trees
        standing = StandingJoin(tree_a, tree_b, JoinSpec(max_distance=3.0))
        expected = [key for key in truth if key[0] <= 3.0]
        assert result_keys(standing) == expected
        assert standing.complete


class TestRepair:
    def apply(self, held, deltas):
        """Replay a delta stream into a subscriber's result copy."""
        for delta in deltas:
            if delta.op == ADD:
                assert delta.key not in held
                held[delta.key] = delta.result
            else:
                del held[delta.key]
        return held

    def test_insert_delete_matches_brute_force(self):
        k = 8
        standing, objs1, objs2, counters = make_standing(k=k)
        held = self.apply({}, standing.poll())
        rng_points = make_points(30, seed=77)
        for step, point in enumerate(rng_points):
            side = 1 if step % 2 == 0 else 2
            oid = 1000 + step
            deltas = standing.insert(oid, point, side=side)
            (objs1 if side == 1 else objs2)[oid] = point
            self.apply(held, deltas)
            if step % 3 == 2:
                victim = 1000 + step - 2
                vside = 1 if (step - 2) % 2 == 0 else 2
                deltas = standing.delete(victim, side=vside)
                del (objs1 if vside == 1 else objs2)[victim]
                self.apply(held, deltas)
            expected = canonical_topk(objs1, objs2, k=k)
            assert sorted(held) == expected
            assert result_keys(standing) == expected
        assert counters.value("live_repairs") == standing.updates
        assert counters.value("live_probe_pairs") > 0

    def test_delete_heavy_sequence_refills(self):
        k = 6
        standing, objs1, objs2, counters = make_standing(
            k=k, na=50, nb=50, frontier=1
        )
        standing.poll()
        # Deleting the current best pairs over and over starves the
        # 1-pair frontier, forcing bounded rescans.
        for __ in range(12):
            best = standing.result()[0]
            standing.delete(best.oid1, side=1)
            del objs1[best.oid1]
            assert result_keys(standing) == canonical_topk(
                objs1, objs2, k=k
            )
        assert counters.value("live_refills") > 0

    def test_range_mode_never_refills(self):
        points_a = make_points(40, seed=3)
        points_b = make_points(40, seed=4)
        tree_a, tree_b = make_tree(points_a), make_tree(points_b)
        objs1 = dict(enumerate(points_a))
        objs2 = dict(enumerate(points_b))
        counters = CounterRegistry()
        standing = StandingJoin(
            tree_a, tree_b, JoinSpec(max_distance=8.0),
            counters=counters,
        )
        for step in range(10):
            standing.delete(step, side=2)
            del objs2[step]
            standing.insert(2000 + step, points_b[step], side=1)
            objs1[2000 + step] = points_b[step]
            assert result_keys(standing) == canonical_topk(
                objs1, objs2, dmax=8.0
            )
            assert standing.complete
        assert counters.value("live_refills") == 0

    def test_min_distance_band_is_maintained(self):
        points_a = make_points(40, seed=5)
        points_b = make_points(40, seed=6)
        tree_a, tree_b = make_tree(points_a), make_tree(points_b)
        objs1 = dict(enumerate(points_a))
        objs2 = dict(enumerate(points_b))
        standing = StandingJoin(
            tree_a, tree_b,
            JoinSpec(min_distance=2.0, max_distance=6.0),
        )
        assert result_keys(standing) == canonical_topk(
            objs1, objs2, dmin=2.0, dmax=6.0
        )
        # A 0-distance insert must stay excluded by the band.
        standing.insert(3000, points_b[0], side=1)
        objs1[3000] = points_b[0]
        assert result_keys(standing) == canonical_topk(
            objs1, objs2, dmin=2.0, dmax=6.0
        )

    def test_duplicate_and_unknown_oids_rejected(self):
        standing, __, __, __ = make_standing(k=4, na=20, nb=20)
        with pytest.raises(LiveError, match="already present"):
            standing.insert(0, Point((1.0, 2.0)), side=1)
        with pytest.raises(LiveError, match="unknown oid"):
            standing.delete(12345, side=2)

    def test_out_of_band_mutation_detected(self):
        standing, __, __, __ = make_standing(k=4, na=20, nb=20)
        standing.tree1.insert(obj=Point((9.0, 9.0)), oid=7777)
        with pytest.raises(LiveError, match="outside the standing"):
            standing.insert(8888, Point((1.0, 1.0)), side=1)


class TestObserveFanOut:
    def test_observer_tracks_the_mutator(self):
        points_a = make_points(40, seed=31)
        points_b = make_points(40, seed=32)
        tree_a, tree_b = make_tree(points_a), make_tree(points_b)
        primary = StandingJoin(tree_a, tree_b, JoinSpec(max_pairs=7))
        watcher = StandingJoin(
            tree_a, tree_b, JoinSpec(max_pairs=7),
            counters=CounterRegistry(),
        )
        for step in range(8):
            point = Point((float(step * 11 % 97), float(step * 7 % 89)))
            oid = 4000 + step
            d1 = primary.insert(oid, point, side=2)
            d2 = watcher.observe_insert(oid, point, side=2)
            assert [(d.op, d.key) for d in d1] == \
                [(d.op, d.key) for d in d2]
        primary.delete(4000, side=2)
        watcher.observe_delete(4000, side=2)
        assert result_keys(primary) == result_keys(watcher)

    def test_observe_checks_its_own_sync(self):
        standing, __, __, __ = make_standing(k=4, na=20, nb=20)
        # Two unobserved tree mutations, then a late observe of one:
        # the counters can never line up.
        standing.tree2.insert(obj=Point((1.0, 1.0)), oid=9001)
        standing.tree2.insert(obj=Point((2.0, 2.0)), oid=9002)
        standing.tree1.insert(obj=Point((3.0, 3.0)), oid=9003)
        with pytest.raises(LiveError, match="outside the standing"):
            standing.observe_insert(9003, Point((3.0, 3.0)), side=1)

    def test_observe_rejects_extra_mutations_on_same_side(self):
        """The observed side must advance by *exactly one*: an extra
        out-of-band mutation on that very side (not just the partner)
        is detected instead of being silently resynced over."""
        standing, __, __, __ = make_standing(k=4, na=20, nb=20)
        standing.tree1.insert(obj=Point((1.0, 1.0)), oid=9001)
        standing.tree1.insert(obj=Point((2.0, 2.0)), oid=9002)
        with pytest.raises(LiveError, match="outside the standing"):
            standing.observe_insert(9002, Point((2.0, 2.0)), side=1)
        # The failed observation did not advance the expectation: the
        # desync stays detectable by later updates too.
        with pytest.raises(LiveError, match="outside the standing"):
            standing.insert(9003, Point((3.0, 3.0)), side=2)

    def test_observe_delete_rejects_extra_mutations(self):
        standing, __, __, __ = make_standing(k=4, na=20, nb=20)
        tree = standing.tree2
        tree.insert(obj=Point((0.5, 0.5)), oid=9001)  # out of band
        obj, stored = standing._objects[2][0]
        assert tree.delete(0, stored)
        with pytest.raises(LiveError, match="outside the standing"):
            standing.observe_delete(0, side=2)


class TestCursor:
    def round_trip(self, standing, counters=None):
        blob = pickle.dumps(standing.save(), pickle.HIGHEST_PROTOCOL)
        return StandingJoin.load(
            pickle.loads(blob), standing.tree1, standing.tree2,
            counters=counters,
        )

    def test_save_load_round_trip(self):
        standing, objs1, objs2, counters = make_standing(k=6)
        standing.insert(5000, Point((10.0, 10.0)), side=1)
        standing.poll(3)  # leave part of the outbox pending
        resumed = self.round_trip(standing, counters=counters)
        assert result_keys(resumed) == result_keys(standing)
        assert resumed.seq == standing.seq
        assert resumed.updates == standing.updates
        assert resumed.complete == standing.complete
        assert [d.key for d in resumed.poll()] == \
            [d.key for d in standing.poll()]

    def test_resumed_join_keeps_repairing(self):
        standing, objs1, objs2, __ = make_standing(k=6)
        resumed = self.round_trip(standing, counters=CounterRegistry())
        for step in range(5):
            point = Point((float(3 + step), float(90 - step)))
            oid = 6000 + step
            a = standing.insert(oid, point, side=2)
            b = resumed.observe_insert(oid, point, side=2)
            assert [(d.op, d.key) for d in a] == \
                [(d.op, d.key) for d in b]

    def test_counter_priming_without_registry(self):
        standing, __, __, counters = make_standing(k=6)
        standing.insert(5000, Point((10.0, 10.0)), side=1)
        resumed = self.round_trip(standing, counters=None)
        assert resumed.counters is not counters
        for name in ("dist_calcs", "bound_calcs", "live_repairs"):
            assert resumed.counters.value(name) == counters.value(name)

    def test_stale_fingerprint_rejected(self):
        standing, __, __, __ = make_standing(k=6)
        state = standing.save()
        standing.insert(5000, Point((10.0, 10.0)), side=1)
        with pytest.raises(CursorError, match="does not match"):
            StandingJoin.load(state, standing.tree1, standing.tree2)

    def test_wrong_envelope_rejected(self):
        standing, __, __, __ = make_standing(k=4, na=20, nb=20)
        state = standing.save()
        assert state["format"] == LIVE_CURSOR_FORMAT
        with pytest.raises(CursorError, match="not a standing"):
            StandingJoin.load(
                {"format": "bogus"}, standing.tree1, standing.tree2
            )
        bad = dict(state, version=99)
        with pytest.raises(CursorError, match="version"):
            StandingJoin.load(bad, standing.tree1, standing.tree2)


class TestAsymptoticRepairCost:
    def test_repair_is_much_cheaper_than_recompute(self):
        """The tentpole's acceptance gate: one insert repair does
        asymptotically less distance work than re-running the join."""
        k = 10
        points_a = make_points(400, seed=51)
        points_b = make_points(400, seed=52)
        tree_a, tree_b = make_tree(points_a), make_tree(points_b)
        counters = CounterRegistry()
        standing = StandingJoin(
            tree_a, tree_b, JoinSpec(max_pairs=k), counters=counters
        )
        before = counters.full_snapshot()
        standing.insert(9000, Point((13.0, 31.0)), side=1)
        repair = counters.full_snapshot().delta_from(before)

        recompute = CounterRegistry()
        join = IncrementalDistanceJoin(
            tree_a, tree_b, JoinSpec(max_pairs=k), counters=recompute
        )
        for __ in join:
            pass
        assert repair.value("dist_calcs") * 5 <= \
            recompute.value("dist_calcs")
        assert repair.value("bound_calcs") * 5 <= \
            recompute.value("bound_calcs")


class TestWatchSql:
    def make_db(self):
        db = Database(counters=CounterRegistry())
        db.create_relation("a", make_points(60, seed=11))
        db.create_relation("b", make_points(80, seed=22))
        return db

    def test_parse_flags(self):
        query = parse(WATCH_SQL.format(k=5))
        assert query.watch and query.stop_after == 5
        assert parse(
            "WATCH SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
            "WHERE d <= 4 ORDER BY d"
        ).watch  # NOTIFY is optional; a range bound suffices

    @pytest.mark.parametrize("sql,fragment", [
        ("SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
         "ORDER BY d STOP AFTER 3 NOTIFY", "NOTIFY"),
        ("WATCH SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
         "ORDER BY d DESC STOP AFTER 3", "DESC"),
        ("WATCH SELECT *, MIN(d) FROM a, b, DISTANCE(a.g, b.g) AS d "
         "GROUP BY a.g ORDER BY d STOP AFTER 3", "semi-join"),
        ("WATCH SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
         "ORDER BY d STOP AFTER 3 PARALLEL 2", "PARALLEL"),
        ("WATCH SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
         "ORDER BY d STOP AFTER 3 SHARDS 4", "SHARDS"),
        ("WATCH SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
         "WHERE a.pop > 5 ORDER BY d STOP AFTER 3", "predicate"),
        ("WATCH SELECT * FROM a, b, DISTANCE(a.g, b.g) AS d "
         "ORDER BY d", "finite"),
    ])
    def test_invalid_watch_forms_rejected(self, sql, fragment):
        with pytest.raises(QuerySyntaxError, match=fragment):
            parse(sql)

    def test_logical_plan_wraps_in_watch(self):
        plan = build_logical_plan(parse(WATCH_SQL.format(k=5)))
        pretty = plan.pretty()
        assert pretty.startswith("Watch(")
        assert "Limit" in pretty

    def test_pull_plan_refuses_watch(self):
        db = self.make_db()
        query = parse(WATCH_SQL.format(k=5))
        with pytest.raises(QueryError, match="standing"):
            build_physical_plan(db, query)
        with pytest.raises(QueryError, match="standing"):
            db.execute_query(query)

    def test_database_watch_end_to_end(self):
        db = self.make_db()
        standing = db.watch(WATCH_SQL.format(k=7))
        assert isinstance(standing, StandingJoin)
        pull = [
            (row.d, row.oid1, row.oid2) for row in db.execute(
                "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
                "ORDER BY d STOP AFTER 7"
            )
        ]
        assert result_keys(standing) == sorted(pull)
        assert standing.counters is db.counters

    def test_database_watch_rejects_pull_queries(self):
        db = self.make_db()
        with pytest.raises(QueryError, match="WATCH"):
            db.watch(
                "SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
                "ORDER BY d STOP AFTER 3"
            )

    def test_watch_folds_range_into_spec(self):
        db = self.make_db()
        standing = db.watch(
            "WATCH SELECT * FROM a, b, DISTANCE(a.geom, b.geom) AS d "
            "WHERE d <= 4 ORDER BY d"
        )
        assert standing.spec.max_distance == 4.0
        assert standing.max_pairs is None
        assert all(k[0] <= 4.0 for k in result_keys(standing))


class TestStatsCacheObservesLivePath:
    def test_collect_stats_sees_standing_inserts(self):
        """Satellite: the cost model's per-tree stats cache must be
        keyed on the mutation counter the live path bumps."""
        from repro.query.costmodel import (
            collect_stats,
            stats_fingerprint,
        )

        points_a = make_points(40, seed=41)
        points_b = make_points(40, seed=42)
        tree_a, tree_b = make_tree(points_a), make_tree(points_b)
        before = collect_stats(tree_a)
        fp_before = stats_fingerprint(tree_a)
        assert collect_stats(tree_a) is before  # cached

        standing = StandingJoin(tree_a, tree_b, JoinSpec(max_pairs=5))
        for step in range(6):
            standing.insert(
                7000 + step, Point((float(step), float(step))), side=1
            )
        after = collect_stats(tree_a)
        assert after is not before
        assert stats_fingerprint(tree_a) != fp_before
        assert after.size == before.size + 6
        standing.delete(7000, side=1)
        assert collect_stats(tree_a).size == after.size - 1
