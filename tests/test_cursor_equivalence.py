"""The central cursor property: a join suspended and resumed at
arbitrary quantum boundaries -- with every cursor round-tripped
through pickled bytes -- produces the identical ordered result stream,
identical tie groups, and identical counter totals as an uninterrupted
run of the same spec."""

import pickle

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.core.spec import JoinSpec
from repro.geometry.point import Point
from repro.service.overhead import resumed_join
from repro.util.counters import CounterRegistry

from tests.conftest import make_points, make_tree

point_lists = st.lists(
    st.tuples(st.floats(0, 100), st.floats(0, 100)),
    min_size=2,
    max_size=20,
)

spec_knobs = st.fixed_dictionaries({
    "tie_break": st.sampled_from(["depth_first", "breadth_first"]),
    "node_policy": st.sampled_from(["even", "basic"]),
    "queue": st.sampled_from(["memory", "hybrid", "adaptive"]),
    "max_pairs": st.integers(5, 60),
})


def build_spec(knobs):
    extra = {"queue_dt": 7.5} if knobs["queue"] == "hybrid" else {}
    return JoinSpec(**knobs, **extra)


def run_interrupted(operator_cls, t1, t2, spec, boundaries):
    """Consume the join, suspending at each boundary (results-so-far
    count) through a pickled-bytes cursor round trip."""
    counters = CounterRegistry()
    join = operator_cls(t1, t2, spec, counters=counters)
    results = []
    cuts = sorted(set(boundaries))
    while True:
        target = next((c for c in cuts if c > len(results)), None)
        exhausted = True
        for result in join:
            results.append(result)
            if target is not None and len(results) >= target:
                exhausted = False
                break
        if exhausted:
            return results, counters
        blob = pickle.dumps(join.save())
        join = operator_cls.load(
            pickle.loads(blob), t1, t2, counters=counters
        )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    point_lists,
    point_lists,
    spec_knobs,
    st.lists(st.integers(1, 50), min_size=1, max_size=6),
)
def test_property_suspend_resume_equivalence(
    raw_a, raw_b, knobs, boundaries
):
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    t1 = make_tree(points_a, max_entries=4)
    t2 = make_tree(points_b, max_entries=4)
    spec = build_spec(knobs)

    reference_counters = CounterRegistry()
    reference = list(IncrementalDistanceJoin(
        t1, t2, spec, counters=reference_counters
    ))

    got, got_counters = run_interrupted(
        IncrementalDistanceJoin, t1, t2, spec, boundaries
    )

    # Identical ordered results -- including within tie groups (the
    # restored KeyMaker seq keeps the total order bit-identical).
    assert [(r.distance, r.oid1, r.oid2) for r in got] == \
        [(r.distance, r.oid1, r.oid2) for r in reference]
    # Identical counter totals: save/load is invisible to the
    # instrumentation (node_io excepted -- the warm buffer pool makes
    # the *reference* rerun cheaper, so compare the join-level ones).
    for name in ("dist_calcs", "queue_inserts", "pairs_examined"):
        assert got_counters.counter(name).value == \
            reference_counters.counter(name).value, name


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    point_lists,
    point_lists,
    st.integers(1, 20),
    st.integers(3, 40),
)
def test_property_semi_join_resumed_harness(raw_a, raw_b, every, cap):
    """The overhead harness preserves the semi-join stream too."""
    points_a = [Point(xy) for xy in raw_a]
    points_b = [Point(xy) for xy in raw_b]
    t1 = make_tree(points_a, max_entries=4)
    t2 = make_tree(points_b, max_entries=4)
    spec = JoinSpec(max_pairs=cap)

    reference = list(IncrementalDistanceSemiJoin(
        t1, t2, spec, counters=CounterRegistry()
    ))
    got = list(resumed_join(
        t1, t2, spec, operator_cls=IncrementalDistanceSemiJoin,
        counters=CounterRegistry(), every=every,
    ))
    assert [(r.distance, r.oid1, r.oid2) for r in got] == \
        [(r.distance, r.oid1, r.oid2) for r in reference]


def test_stop_after_crosses_many_quanta():
    """A deterministic (non-Hypothesis) anchor: a STOP AFTER style
    bounded join suspended every 3 results across its whole run."""
    t1 = make_tree(make_points(60, seed=71), max_entries=4)
    t2 = make_tree(make_points(80, seed=72), max_entries=4)
    spec = JoinSpec(max_pairs=50, queue="hybrid", queue_dt=5.0)

    reference = list(IncrementalDistanceJoin(
        t1, t2, spec, counters=CounterRegistry()
    ))
    got, __ = run_interrupted(
        IncrementalDistanceJoin, t1, t2, spec,
        boundaries=list(range(3, 50, 3)),
    )
    assert [(r.distance, r.oid1, r.oid2) for r in got] == \
        [(r.distance, r.oid1, r.oid2) for r in reference]
    assert len(got) == 50
