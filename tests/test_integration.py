"""Cross-module integration tests: realistic end-to-end scenarios."""

import pytest

from repro.baselines.nn_semijoin import nn_semi_join
from repro.core.distance_join import (
    OBR_MODE,
    IncrementalDistanceJoin,
)
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.geometry.point import Point
from repro.geometry.shapes import LineSegment, Polygon
from repro.query.executor import Database
from repro.rtree.bulk import bulk_load_str
from repro.rtree.guttman import GuttmanRTree
from repro.util.counters import CounterRegistry

from tests.conftest import (
    brute_force_nn,
    brute_force_pairs,
    make_points,
    make_tree,
)


def take(iterator, n):
    out = []
    for item in iterator:
        out.append(item)
        if len(out) == n:
            break
    return out


class TestTreeVariantsInterop:
    def test_join_works_on_guttman_trees(self):
        points_a = make_points(40, seed=101)
        points_b = make_points(50, seed=102)
        tree_a = GuttmanRTree(dim=2, max_entries=8)
        tree_b = GuttmanRTree(dim=2, max_entries=8)
        for p in points_a:
            tree_a.insert(obj=p)
        for p in points_b:
            tree_b.insert(obj=p)
        got = take(IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ), 60)
        truth = brute_force_pairs(points_a, points_b)[:60]
        assert [r.distance for r in got] == pytest.approx(
            [t[0] for t in truth]
        )

    def test_join_mixes_rstar_and_guttman(self):
        points_a = make_points(30, seed=103)
        points_b = make_points(30, seed=104)
        tree_a = make_tree(points_a)  # R*
        tree_b = GuttmanRTree(dim=2, max_entries=8)
        for p in points_b:
            tree_b.insert(obj=p)
        got = take(IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ), 40)
        truth = brute_force_pairs(points_a, points_b)[:40]
        assert [r.distance for r in got] == pytest.approx(
            [t[0] for t in truth]
        )

    def test_bulk_loaded_vs_inserted_same_results(self):
        points_a = make_points(60, seed=105)
        points_b = make_points(60, seed=106)
        inserted = list(take(IncrementalDistanceJoin(
            make_tree(points_a), make_tree(points_b),
            counters=CounterRegistry(),
        ), 80))
        bulked = list(take(IncrementalDistanceJoin(
            bulk_load_str(points_a, max_entries=8),
            bulk_load_str(points_b, max_entries=8),
            counters=CounterRegistry(),
        ), 80))
        assert [r.distance for r in inserted] == pytest.approx(
            [r.distance for r in bulked]
        )


class TestObrLeafMode:
    def test_obr_mode_matches_direct_mode(self):
        points_a = make_points(40, seed=107)
        points_b = make_points(40, seed=108)
        tree_a = make_tree(points_a)
        tree_b = make_tree(points_b)
        direct = take(IncrementalDistanceJoin(
            tree_a, tree_b, leaf_mode="direct",
            counters=CounterRegistry(),
        ), 100)
        obr = take(IncrementalDistanceJoin(
            tree_a, tree_b, leaf_mode=OBR_MODE,
            counters=CounterRegistry(),
        ), 100)
        assert [r.distance for r in direct] == pytest.approx(
            [r.distance for r in obr]
        )

    def test_obr_mode_counts_object_accesses(self):
        tree_a = make_tree(make_points(30, seed=109))
        tree_b = make_tree(make_points(30, seed=110))
        counters = CounterRegistry()
        take(IncrementalDistanceJoin(
            tree_a, tree_b, leaf_mode=OBR_MODE, counters=counters,
        ), 20)
        assert counters.value("object_accesses") > 0


class TestExtendedObjects:
    def test_join_over_line_segments(self):
        segments_a = [
            LineSegment(Point((i * 10.0, 0.0)), Point((i * 10.0 + 5.0, 3.0)))
            for i in range(8)
        ]
        segments_b = [
            LineSegment(Point((i * 10.0 + 2.0, 20.0)),
                        Point((i * 10.0 + 7.0, 24.0)))
            for i in range(8)
        ]
        tree_a = bulk_load_str(segments_a, max_entries=4)
        tree_b = bulk_load_str(segments_b, max_entries=4)
        got = list(IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ))
        truth = sorted(
            a.distance_to(b) for a in segments_a for b in segments_b
        )
        assert [r.distance for r in got] == pytest.approx(truth)

    def test_semi_join_over_polygons(self):
        def square(cx, cy, half):
            return Polygon([
                Point((cx - half, cy - half)), Point((cx + half, cy - half)),
                Point((cx + half, cy + half)), Point((cx - half, cy + half)),
            ])

        parks = [square(10.0 * i, 0.0, 2.0) for i in range(5)]
        lakes = [square(10.0 * i + 4.0, 15.0, 1.5) for i in range(5)]
        semi = IncrementalDistanceSemiJoin(
            bulk_load_str(parks, max_entries=4),
            bulk_load_str(lakes, max_entries=4),
            counters=CounterRegistry(),
        )
        got = list(semi)
        assert len(got) == len(parks)
        for result in got:
            expected = min(
                parks[result.oid1].distance_to(lake) for lake in lakes
            )
            assert result.distance == pytest.approx(expected)


class TestStoreWarehouseScenario:
    """The paper's motivating example, end to end through SQL."""

    def test_clustering_matches_nn_baseline(self):
        stores = make_points(80, seed=111)
        warehouses = make_points(12, seed=112)
        db = Database(counters=CounterRegistry())
        db.create_relation("stores", stores)
        db.create_relation("warehouses", warehouses)
        rows = list(db.execute(
            "SELECT *, MIN(d) FROM stores, warehouses, "
            "DISTANCE(stores.geom, warehouses.geom) AS d "
            "GROUP BY stores.geom ORDER BY d"
        ))
        baseline = nn_semi_join(
            list(enumerate(stores)), db.relation("warehouses")
        )
        assert [r.d for r in rows] == pytest.approx(
            [r.distance for r in baseline]
        )

    def test_stop_after_pipelines(self):
        stores = make_points(80, seed=113)
        warehouses = make_points(12, seed=114)
        db = Database(counters=CounterRegistry())
        db.create_relation("stores", stores)
        db.create_relation("warehouses", warehouses)
        db.counters.reset()
        few = list(db.execute(
            "SELECT * FROM stores, warehouses, "
            "DISTANCE(stores.geom, warehouses.geom) AS d "
            "ORDER BY d STOP AFTER 3"
        ))
        cost_few = db.counters.value("dist_calcs")
        assert len(few) == 3
        assert cost_few < 80 * 12  # far less than the Cartesian product


class TestConcurrentIterators:
    def test_interleaved_joins_share_trees_safely(self):
        """Two independent join iterators over the same trees must not
        disturb each other (all per-query state lives in the join)."""
        points_a = make_points(50, seed=117)
        points_b = make_points(50, seed=118)
        tree_a = make_tree(points_a)
        tree_b = make_tree(points_b)
        truth = [t[0] for t in brute_force_pairs(points_a, points_b)]

        join1 = IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        join2 = IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        got1, got2 = [], []
        for __ in range(60):
            got1.append(next(join1).distance)
            got2.append(next(join2).distance)
            got2.append(next(join2).distance)  # join2 runs ahead
        assert got1 == pytest.approx(truth[:60])
        assert got2 == pytest.approx(truth[:120])

    def test_join_and_semi_join_interleaved(self):
        points_a = make_points(40, seed=119)
        points_b = make_points(40, seed=120)
        tree_a = make_tree(points_a)
        tree_b = make_tree(points_b)
        join = IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        semi = IncrementalDistanceSemiJoin(
            tree_a, tree_b, counters=CounterRegistry()
        )
        join_distances = []
        semi_distances = []
        for __ in range(30):
            join_distances.append(next(join).distance)
            semi_distances.append(next(semi).distance)
        assert join_distances == sorted(join_distances)
        assert semi_distances == sorted(semi_distances)


class TestHigherDimensions:
    def test_4d_join(self):
        import random
        rng = random.Random(115)
        points_a = [
            Point([rng.uniform(0, 10) for __ in range(4)])
            for __ in range(20)
        ]
        points_b = [
            Point([rng.uniform(0, 10) for __ in range(4)])
            for __ in range(20)
        ]
        tree_a = bulk_load_str(points_a, max_entries=8)
        tree_b = bulk_load_str(points_b, max_entries=8)
        got = take(IncrementalDistanceJoin(
            tree_a, tree_b, counters=CounterRegistry()
        ), 30)
        truth = brute_force_pairs(points_a, points_b)[:30]
        assert [r.distance for r in got] == pytest.approx(
            [t[0] for t in truth]
        )

    def test_semi_join_3d(self):
        import random
        rng = random.Random(116)
        points_a = [
            Point([rng.uniform(0, 10) for __ in range(3)])
            for __ in range(25)
        ]
        points_b = [
            Point([rng.uniform(0, 10) for __ in range(3)])
            for __ in range(25)
        ]
        semi = IncrementalDistanceSemiJoin(
            bulk_load_str(points_a, max_entries=8),
            bulk_load_str(points_b, max_entries=8),
            counters=CounterRegistry(),
        )
        got = list(semi)
        nn = brute_force_nn(points_a, points_b)
        assert len(got) == len(points_a)
        for result in got:
            assert result.distance == pytest.approx(nn[result.oid1][0])
