"""Run the doctests embedded in docstrings (they are the first thing a
reader tries, so they must stay true)."""

import doctest

import pytest

import repro
import repro.core.heap
import repro.query
import repro.util.bitset

MODULES = [
    repro,
    repro.util.bitset,
    repro.core.heap,
    repro.query,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_doctests(module):
    failures, tested = doctest.testmod(
        module, verbose=False, raise_on_error=False
    )
    assert tested > 0, f"no doctests collected from {module.__name__}"
    assert failures == 0
