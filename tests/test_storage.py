"""Unit tests for the simulated pager and buffer pool."""

import pytest

from repro.errors import PageNotFoundError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.pager import PageStore
from repro.util.counters import CounterRegistry


class TestPageStore:
    def test_allocate_and_read(self):
        store = PageStore()
        pid = store.allocate("hello", 5)
        assert store.read(pid).payload == "hello"

    def test_ids_are_unique_and_sequential(self):
        store = PageStore()
        ids = [store.allocate() for __ in range(5)]
        assert ids == sorted(set(ids))

    def test_write_overwrites(self):
        store = PageStore()
        pid = store.allocate("a", 1)
        store.write(pid, "bb", 2)
        assert store.read(pid).payload == "bb"
        assert store.read(pid).size_bytes == 2

    def test_free_then_read_raises(self):
        store = PageStore()
        pid = store.allocate()
        store.free(pid)
        with pytest.raises(PageNotFoundError):
            store.read(pid)

    def test_double_free_raises(self):
        store = PageStore()
        pid = store.allocate()
        store.free(pid)
        with pytest.raises(PageNotFoundError):
            store.free(pid)

    def test_oversized_payload_rejected(self):
        store = PageStore(page_size=16)
        with pytest.raises(StorageError):
            store.allocate("x", 17)
        pid = store.allocate("x", 16)
        with pytest.raises(StorageError):
            store.write(pid, "y", 17)

    def test_counters(self):
        counters = CounterRegistry()
        store = PageStore(counters=counters)
        pid = store.allocate("a", 1)
        store.read(pid)
        store.read(pid)
        store.write(pid, "b", 1)
        assert counters.value("page_reads") == 2
        assert counters.value("page_writes") == 2  # allocate + write
        assert counters.value("pages_allocated") == 1

    def test_total_bytes_and_count(self):
        store = PageStore()
        store.allocate("a", 10)
        store.allocate("b", 20)
        assert store.page_count == 2
        assert store.total_bytes() == 30

    def test_exists(self):
        store = PageStore()
        pid = store.allocate()
        assert store.exists(pid)
        assert not store.exists(pid + 1)


class TestBufferPool:
    def test_hit_after_first_read(self):
        counters = CounterRegistry()
        store = PageStore(counters=counters)
        pool = BufferPool(store, capacity=4, counters=counters)
        pid = store.allocate("x", 1)
        counters.reset()
        pool.read(pid)
        pool.read(pid)
        assert counters.value("buffer_misses") == 1
        assert counters.value("buffer_hits") == 1
        assert counters.value("page_reads") == 1

    def test_lru_eviction(self):
        counters = CounterRegistry()
        store = PageStore(counters=counters)
        pool = BufferPool(store, capacity=2, counters=counters)
        a, b, c = (store.allocate(i, 1) for i in range(3))
        pool.read(a)
        pool.read(b)
        pool.read(c)  # evicts a
        assert not pool.contains(a)
        assert pool.contains(b)
        assert pool.contains(c)

    def test_lru_refresh_on_access(self):
        store = PageStore()
        pool = BufferPool(store, capacity=2)
        a, b, c = (store.allocate(i, 1) for i in range(3))
        pool.read(a)
        pool.read(b)
        pool.read(a)  # a is now most recent
        pool.read(c)  # evicts b
        assert pool.contains(a)
        assert not pool.contains(b)

    def test_invalidate(self):
        store = PageStore()
        pool = BufferPool(store, capacity=2)
        pid = store.allocate("x", 1)
        pool.read(pid)
        pool.invalidate(pid)
        assert not pool.contains(pid)

    def test_clear_simulates_cold_cache(self):
        counters = CounterRegistry()
        store = PageStore(counters=counters)
        pool = BufferPool(store, capacity=2, counters=counters)
        pid = store.allocate("x", 1)
        pool.read(pid)
        pool.clear()
        counters.reset()
        pool.read(pid)
        assert counters.value("buffer_misses") == 1

    def test_hit_ratio(self):
        store = PageStore()
        pool = BufferPool(store, capacity=4)
        pid = store.allocate("x", 1)
        assert pool.hit_ratio() == 0.0
        pool.read(pid)
        pool.read(pid)
        pool.read(pid)
        assert pool.hit_ratio() == pytest.approx(2 / 3)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool(PageStore(), capacity=0)
