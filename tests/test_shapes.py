"""Unit tests for extended spatial objects (segments, polygons)."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.shapes import LineSegment, PointObject, Polygon


def P(x, y):
    return Point((x, y))


class TestPointObject:
    def test_mbr_degenerate(self):
        o = PointObject(P(1, 2))
        assert o.mbr().lo == o.mbr().hi == (1.0, 2.0)

    def test_distance_point_point(self):
        assert PointObject(P(0, 0)).distance_to(PointObject(P(3, 4))) == 5.0


class TestLineSegment:
    def test_requires_2d(self):
        with pytest.raises(GeometryError):
            LineSegment(Point((0, 0, 0)), Point((1, 1, 1)))

    def test_mbr(self):
        s = LineSegment(P(0, 2), P(3, 0))
        assert s.mbr().lo == (0.0, 0.0)
        assert s.mbr().hi == (3.0, 2.0)

    def test_length(self):
        assert LineSegment(P(0, 0), P(3, 4)).length() == 5.0

    def test_distance_to_point_perpendicular(self):
        s = LineSegment(P(0, 0), P(10, 0))
        assert s.distance_to_point(P(5, 3)) == 3.0

    def test_distance_to_point_beyond_endpoint(self):
        s = LineSegment(P(0, 0), P(10, 0))
        assert s.distance_to_point(P(13, 4)) == 5.0

    def test_distance_degenerate_segment(self):
        s = LineSegment(P(1, 1), P(1, 1))
        assert s.distance_to_point(P(4, 5)) == 5.0

    def test_segment_segment_parallel(self):
        a = LineSegment(P(0, 0), P(10, 0))
        b = LineSegment(P(0, 2), P(10, 2))
        assert a.distance_to(b) == 2.0

    def test_segment_segment_crossing_is_zero(self):
        a = LineSegment(P(0, 0), P(2, 2))
        b = LineSegment(P(0, 2), P(2, 0))
        assert a.distance_to(b) == 0.0
        assert a.intersects_segment(b)

    def test_segment_segment_touching_endpoint(self):
        a = LineSegment(P(0, 0), P(1, 1))
        b = LineSegment(P(1, 1), P(2, 0))
        assert a.distance_to(b) == 0.0

    def test_segment_segment_skew(self):
        a = LineSegment(P(0, 0), P(1, 0))
        b = LineSegment(P(3, 1), P(4, 2))
        assert a.distance_to(b) == pytest.approx(math.hypot(2, 1))

    def test_distance_to_point_object(self):
        s = LineSegment(P(0, 0), P(10, 0))
        assert s.distance_to(PointObject(P(5, 2))) == 2.0


class TestPolygon:
    def square(self):
        return Polygon([P(0, 0), P(4, 0), P(4, 4), P(0, 4)])

    def test_requires_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([P(0, 0), P(1, 1)])

    def test_mbr(self):
        assert self.square().mbr().hi == (4.0, 4.0)

    def test_contains_point_inside(self):
        assert self.square().contains_point(P(2, 2))

    def test_contains_point_outside(self):
        assert not self.square().contains_point(P(5, 2))

    def test_contains_point_on_boundary(self):
        assert self.square().contains_point(P(4, 2))
        assert self.square().contains_point(P(0, 0))

    def test_distance_point_inside_zero(self):
        assert self.square().distance_to_point(P(1, 1)) == 0.0

    def test_distance_point_outside(self):
        assert self.square().distance_to_point(P(7, 2)) == 3.0

    def test_distance_to_segment_intersecting(self):
        s = LineSegment(P(-1, 2), P(5, 2))
        assert self.square().distance_to(s) == 0.0

    def test_distance_to_segment_outside(self):
        s = LineSegment(P(6, 0), P(6, 4))
        assert self.square().distance_to(s) == 2.0

    def test_distance_polygon_polygon_disjoint(self):
        other = Polygon([P(7, 0), P(9, 0), P(9, 4), P(7, 4)])
        assert self.square().distance_to(other) == 3.0

    def test_distance_polygon_polygon_nested(self):
        inner = Polygon([P(1, 1), P(2, 1), P(2, 2), P(1, 2)])
        assert self.square().distance_to(inner) == 0.0

    def test_distance_to_point_object(self):
        assert self.square().distance_to(PointObject(P(7, 2))) == 3.0

    def test_concave_polygon_containment(self):
        # A "C" shape: the notch must not count as inside.
        c_shape = Polygon([
            P(0, 0), P(4, 0), P(4, 1), P(1, 1),
            P(1, 3), P(4, 3), P(4, 4), P(0, 4),
        ])
        assert c_shape.contains_point(P(0.5, 2))
        assert not c_shape.contains_point(P(2.5, 2))
