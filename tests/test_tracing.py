"""Tests for Chrome trace-event export (repro.util.tracing)."""

import json

import pytest

from repro.parallel import ParallelDistanceJoin
from repro.util.obs import NULL_OBSERVER, SPAN_EVENT, Observer
from repro.util.tracing import (
    chrome_trace,
    gauge_counter_events,
    instant_events,
    observer_trace,
    snapshot_summary_events,
    sort_events,
    span_complete_events,
    worker_track_events,
    write_chrome_trace,
)

from tests.conftest import make_points, make_tree

VALID_PHASES = {"X", "B", "E", "C", "i", "M"}


def traced_observer():
    obs = Observer(trace_spans=True)
    with obs.span("outer"):
        with obs.span("inner"):
            pass
    obs.record_span("io", 0.25)
    obs.gauge("queue", 3.0)
    obs.gauge("queue", 7.0)
    obs.event("milestone", label="first-pair", value=1.0)
    return obs


class TestSpanEvents:
    def test_trace_spans_logs_per_occurrence(self):
        obs = traced_observer()
        kinds = [e.kind for e in obs.events]
        assert kinds.count(SPAN_EVENT) == 3  # outer, inner, io

    def test_complete_events_have_duration_phase(self):
        obs = traced_observer()
        events = span_complete_events(obs)
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        assert all(e["dur"] >= 0.0 for e in events)
        assert all(e["ts"] >= 0.0 for e in events)
        assert {e["name"] for e in events} == {"outer", "inner", "io"}

    def test_trace_spans_off_yields_no_span_events(self):
        obs = Observer()  # trace_spans defaults to off
        with obs.span("a"):
            pass
        assert span_complete_events(obs) == []

    def test_disabled_observer_allocation_free(self):
        # trace_spans must not defeat the NULL_OBSERVER discipline:
        # a disabled observer still hands out the shared no-op span.
        obs = Observer(enabled=False, trace_spans=True)
        assert obs.span("a") is obs.span("b")
        assert obs.span("a") is NULL_OBSERVER.span("x")
        with obs.span("a"):
            pass
        assert obs.events.total == 0
        assert span_complete_events(obs) == []


class TestObserverTrace:
    def test_round_trips_through_json(self):
        obs = traced_observer()
        events = observer_trace(obs)
        trace = chrome_trace(events, metadata={"suite": "t"})
        clone = json.loads(json.dumps(trace))
        assert clone["metadata"] == {"suite": "t"}
        assert len(clone["traceEvents"]) == len(events)

    def test_phases_are_valid_and_metadata_first(self):
        events = observer_trace(traced_observer())
        assert all(e["ph"] in VALID_PHASES for e in events)
        phases = [e["ph"] for e in events]
        first_non_meta = next(
            i for i, ph in enumerate(phases) if ph != "M"
        )
        assert all(ph != "M" for ph in phases[first_non_meta:])

    def test_timestamps_monotonic_within_track(self):
        events = observer_trace(traced_observer())
        by_track = {}
        for event in events:
            if event["ph"] == "M":
                continue
            by_track.setdefault(
                (event["pid"], event["tid"]), []
            ).append(event["ts"])
        for track_ts in by_track.values():
            assert track_ts == sorted(track_ts)

    def test_gauges_become_counter_events(self):
        events = gauge_counter_events(traced_observer())
        assert [e["args"]["queue"] for e in events] == [3.0, 7.0]
        assert all(e["ph"] == "C" for e in events)

    def test_instants_skip_span_entries(self):
        events = instant_events(traced_observer())
        assert [e["name"] for e in events] == ["first-pair"]
        assert events[0]["args"]["kind"] == "milestone"

    def test_aggregate_fallback_without_trace_spans(self):
        obs = Observer()
        obs.record_span("b", 0.5, count=2)
        obs.record_span("a", 0.25)
        events = [
            e for e in observer_trace(obs) if e["ph"] == "X"
        ]
        # Summary timeline: name order, laid end to end.
        assert [e["name"] for e in events] == ["a", "b"]
        assert events[1]["ts"] == pytest.approx(
            events[0]["ts"] + events[0]["dur"]
        )
        assert events[0]["args"]["count"] == 1

    def test_write_chrome_trace_is_loadable(self, tmp_path):
        path = str(tmp_path / "trace.json")
        out = write_chrome_trace(
            path, observer_trace(traced_observer()),
            metadata={"k": "v"},
        )
        assert out == path
        trace = json.loads(open(path).read())
        assert trace["displayTimeUnit"] == "ms"
        assert trace["metadata"] == {"k": "v"}
        assert trace["traceEvents"]


class TestWorkerTracks:
    def _snapshot(self, spans):
        obs = Observer()
        for name, seconds in spans:
            obs.record_span(name, seconds)
        return obs.snapshot()

    def test_one_track_per_worker(self):
        task_obs = {
            0: self._snapshot([("worker.join", 0.1)]),
            1: self._snapshot([("worker.join", 0.2)]),
            2: self._snapshot([("worker.init", 0.05)]),
        }
        task_workers = {0: "w-a", 1: "w-b", 2: "w-a"}
        events = worker_track_events(task_obs, task_workers)
        names = {
            e["args"]["name"]: (e["pid"], e["tid"])
            for e in events if e["name"] == "thread_name"
        }
        assert set(names) == {"w-a", "w-b"}
        # Distinct deterministic tids on a single worker pid.
        assert len({t for t in names.values()}) == 2
        assert len({pid for pid, __ in names.values()}) == 1

    def test_overlapping_span_names_merge_per_worker(self):
        # Two tasks on the same worker with the same span name fold
        # into one summary event carrying the combined stats.
        task_obs = {
            0: self._snapshot([("worker.join", 0.1)]),
            1: self._snapshot([("worker.join", 0.3)]),
        }
        events = worker_track_events(task_obs, {0: "w", 1: "w"})
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["args"]["count"] == 2
        assert spans[0]["dur"] == pytest.approx(0.4e6)

    def test_summary_timeline_is_monotonic(self):
        snap = self._snapshot(
            [("c", 0.1), ("a", 0.2), ("b", 0.3), ("a", 0.05)]
        )
        events = snapshot_summary_events(snap, pid=5, tid=7)
        assert [e["name"] for e in events] == ["a", "b", "c"]
        cursor = 0.0
        for event in events:
            assert event["ts"] == pytest.approx(cursor)
            cursor += event["dur"]

    def test_parallel_join_trace_end_to_end(self, tmp_path):
        tree_a = make_tree(make_points(60, seed=61))
        tree_b = make_tree(make_points(60, seed=62))
        join = ParallelDistanceJoin(
            tree_a, tree_b, workers=2, backend="thread", max_pairs=50,
        )
        list(join)
        path = str(tmp_path / "parallel.json")
        join.write_trace(path)
        trace = json.loads(open(path).read())
        events = trace["traceEvents"]
        assert all(e["ph"] in VALID_PHASES for e in events)
        worker_tids = {
            (e["pid"], e["tid"])
            for e in events
            if e["name"] == "thread_name"
            and e["args"]["name"].startswith("pid-")
        }
        assert worker_tids  # at least one worker track materialized
        # Each worker track's events stay on its own (pid, tid).
        for pid, tid in worker_tids:
            ts_list = [
                e["ts"] for e in events
                if e.get("pid") == pid and e.get("tid") == tid
                and e["ph"] == "X"
            ]
            assert ts_list == sorted(ts_list)


class TestSortEvents:
    def test_metadata_sorts_first_then_time(self):
        events = [
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 9.0},
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "p"}},
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 1.0},
        ]
        ordered = sort_events(events)
        assert ordered[0]["ph"] == "M"
        assert [e["name"] for e in ordered[1:]] == ["a", "b"]
