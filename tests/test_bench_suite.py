"""Tests for the tiered benchmark suite and its regression gate
(repro.bench.suite, repro.bench.compare, repro.bench.registry)."""

import copy
import json

import pytest

from repro.bench import registry
from repro.bench.compare import (
    compare_entries,
    compare_file,
)
from repro.bench.compare import main as compare_main
from repro.bench.registry import SMOKE, TIERS, BenchCase, cases_for
from repro.bench.suite import (
    MAX_ENTRIES,
    SCHEMA_VERSION,
    load_trajectory,
    run_suite,
    trajectory_path,
    write_entry,
)
from repro.bench.suite import main as suite_main

#: Tiny-but-real suite runs: one deterministic case at minimal scale
#: keeps each run well under a second.
TINY = dict(scale=0.002, repeat=2, case_pattern="table1.*")


def tiny_entry():
    return run_suite(SMOKE, **TINY)


@pytest.fixture(scope="module")
def two_entries():
    return tiny_entry(), tiny_entry()


class TestRegistry:
    def test_smoke_tier_has_all_paper_workloads(self):
        names = {case.name for case in cases_for(SMOKE)}
        for prefix in (
            "table1.", "fig6.", "fig7.", "fig8.", "fig9.", "fig10.",
            "parallel.",
        ):
            assert any(n.startswith(prefix) for n in names), prefix

    def test_duplicate_names_rejected(self):
        existing = registry.REGISTRY[0]
        with pytest.raises(ValueError):
            registry.register(BenchCase(
                name=existing.name, description="dup",
                spec=existing.spec, pairs=existing.pairs,
            ))

    def test_pairs_resolve_per_tier(self):
        case = next(
            c for c in registry.REGISTRY if c.name == "table1.even_depthfirst"
        )
        assert case.pairs_for(SMOKE) != case.pairs_for("full")

    def test_tier_configs_exist(self):
        assert set(TIERS) == {"smoke", "full"}
        assert TIERS[SMOKE].scale < TIERS["full"].scale


class TestSuite:
    def test_entry_shape(self, two_entries):
        entry, __ = two_entries
        assert entry["meta"]["suite"] == SMOKE
        assert entry["meta"]["python"]
        record = entry["cases"]["table1.even_depthfirst"]
        assert record["pairs"] > 0
        # seconds_all entries are rounded for the committed file.
        assert record["seconds"] == pytest.approx(
            min(record["seconds_all"]), abs=1e-6
        )
        assert len(record["seconds_all"]) == TINY["repeat"]
        assert record["counters"]["dist_calcs"] > 0
        assert record["deterministic"] is True
        assert record["counters_stable"] is True

    def test_counters_deterministic_across_runs(self, two_entries):
        first, second = two_entries
        for name, record in first["cases"].items():
            other = second["cases"][name]
            assert record["counters"] == other["counters"], name
            assert record["peaks"] == other["peaks"], name
            assert record["pairs"] == other["pairs"], name

    def test_write_entry_appends_and_caps(self, tmp_path, two_entries):
        path = str(tmp_path / "BENCH_t.json")
        entry = two_entries[0]
        write_entry(path, entry)
        data = write_entry(path, entry)
        assert data["schema"] == SCHEMA_VERSION
        assert len(data["entries"]) == 2
        data["entries"] = [entry] * MAX_ENTRIES
        with open(path, "w") as handle:
            json.dump(data, handle)
        data = write_entry(path, entry)
        assert len(data["entries"]) == MAX_ENTRIES

    def test_write_entry_reset_discards_history(self, tmp_path,
                                                two_entries):
        path = str(tmp_path / "BENCH_t.json")
        write_entry(path, two_entries[0])
        data = write_entry(path, two_entries[1], reset=True)
        assert len(data["entries"]) == 1

    def test_load_trajectory_missing_file_is_empty(self, tmp_path):
        data = load_trajectory(str(tmp_path / "nope.json"))
        assert data["entries"] == []

    def test_load_trajectory_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_trajectory(str(path))

    def test_trajectory_path_uses_tier(self, tmp_path):
        path = trajectory_path("smoke", root=str(tmp_path))
        assert path.endswith("BENCH_smoke.json")

    def test_main_writes_trajectory_and_trace(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_smoke.json")
        trace = str(tmp_path / "suite_trace.json")
        code = suite_main([
            "--tier", "smoke", "--case", "table1.*",
            "--scale", "0.002", "--repeat", "1",
            "--out", out, "--trace", trace,
        ])
        assert code == 0
        data = json.loads(open(out).read())
        assert len(data["entries"]) == 1
        events = json.loads(open(trace).read())["traceEvents"]
        assert any(
            e["ph"] == "X" and e["name"].startswith("case.")
            for e in events
        )
        assert "table1.even_depthfirst" in capsys.readouterr().out

    def test_main_no_match_is_error(self, tmp_path):
        code = suite_main([
            "--case", "nonexistent.*", "--scale", "0.002",
            "--out", str(tmp_path / "b.json"),
        ])
        assert code == 2

    def test_main_list_prints_cases(self, capsys):
        assert suite_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1.even_depthfirst" in out


class TestCompare:
    def _regress(self, entry, mutate):
        clone = copy.deepcopy(entry)
        mutate(clone["cases"]["table1.even_depthfirst"])
        return clone

    def test_identical_runs_pass(self, two_entries):
        first, second = two_entries
        report = compare_entries([first], second)
        assert report.ok()
        assert not report.hard_regressions

    def test_counter_inflation_is_hard_regression(self, two_entries):
        first, second = two_entries

        def inflate(record):
            record["counters"]["dist_calcs"] = int(
                record["counters"]["dist_calcs"] * 1.5
            )

        report = compare_entries([first], self._regress(second, inflate))
        bad = [g.metric for g in report.hard_regressions]
        assert "counters.dist_calcs" in bad
        assert not report.ok()
        assert not report.ok(hard_only=True)  # hard gates always fail

    def test_two_x_slowdown_is_soft_regression(self, two_entries):
        first, second = two_entries

        def slow(record):
            record["seconds"] = record["seconds"] * 2.0 + 1.0

        report = compare_entries([first], self._regress(second, slow))
        assert [g.metric for g in report.soft_regressions] == ["seconds"]
        assert not report.ok()
        assert report.ok(hard_only=True)  # CI mode tolerates wall time

    def test_counter_drop_never_fails(self, two_entries):
        first, second = two_entries

        def optimize(record):
            record["counters"]["dist_calcs"] //= 2

        report = compare_entries(
            [first], self._regress(second, optimize)
        )
        assert report.ok()

    def test_pair_count_change_fails_both_directions(self, two_entries):
        first, second = two_entries
        for delta in (+1, -1):
            report = compare_entries([first], self._regress(
                second, lambda r: r.update(pairs=r["pairs"] + delta)
            ))
            assert [g.metric for g in report.hard_regressions] == ["pairs"]

    def test_nondeterministic_case_gets_soft_counters(self, two_entries):
        first, second = two_entries
        loose = self._regress(
            second, lambda r: r.update(deterministic=False)
        )
        report = compare_entries([first], loose)
        kinds = {
            g.metric: g.kind for g in report.gates
            if g.case == "table1.even_depthfirst"
        }
        assert kinds["counters.dist_calcs"] == "soft"
        assert kinds["pairs"] == "hard"  # pair count stays exact

    def test_unstable_counters_demote_to_soft(self, two_entries):
        first, second = two_entries
        loose = self._regress(
            second, lambda r: r.update(counters_stable=False)
        )
        report = compare_entries([first], loose)
        kinds = {
            g.metric: g.kind for g in report.gates
            if g.case == "table1.even_depthfirst"
        }
        assert kinds["counters.dist_calcs"] == "soft"

    def test_new_case_skips_gating(self, two_entries):
        first, second = two_entries
        extended = copy.deepcopy(second)
        extended["cases"]["brand.new"] = copy.deepcopy(
            second["cases"]["table1.even_depthfirst"]
        )
        report = compare_entries([first], extended)
        assert report.new_cases == ["brand.new"]
        assert report.ok()

    def test_missing_case_is_warned(self, two_entries):
        first, second = two_entries
        shrunk = copy.deepcopy(second)
        shrunk["cases"].pop("table1.even_depthfirst")
        report = compare_entries([first], shrunk)
        assert report.missing_cases == ["table1.even_depthfirst"]

    def test_mad_band_adapts_to_history_noise(self, two_entries):
        # The soft gate is median + max(rel, MAD band): the relative
        # tolerance is a floor, while a noisy history *widens* the
        # band so flaky machines do not spuriously fail.
        first, second = two_entries

        def history_with(seconds_values):
            history = []
            for s in seconds_values:
                entry = copy.deepcopy(first)
                entry["cases"]["table1.even_depthfirst"]["seconds"] = s
                history.append(entry)
            return history

        newest = self._regress(
            second, lambda r: r.update(seconds=2.5)
        )
        # Tight 8-entry history: limit ~ 1.01 * 1.35, so 2.5s fails.
        tight = history_with([1.0 + 0.01 * (i % 3) for i in range(8)])
        report = compare_entries(tight, newest)
        assert "seconds" in [g.metric for g in report.soft_regressions]
        # Noisy history (seconds swing 1..2): the MAD term dominates
        # and the same 2.5s run stays inside the band.
        noisy = history_with([1.0, 2.0] * 4)
        assert compare_entries(noisy, newest).ok()


class TestCompareFile:
    def _write(self, path, entries):
        with open(path, "w") as handle:
            json.dump(
                {"schema": SCHEMA_VERSION, "entries": entries}, handle
            )

    def test_needs_two_entries(self, tmp_path, two_entries):
        path = str(tmp_path / "BENCH_one.json")
        self._write(path, [two_entries[0]])
        with pytest.raises(ValueError):
            compare_file(path)

    def test_main_exit_codes(self, tmp_path, two_entries, capsys):
        first, second = two_entries
        path = str(tmp_path / "BENCH_smoke.json")

        self._write(path, [first, second])
        assert compare_main(["--file", path]) == 0
        assert "OK:" in capsys.readouterr().out

        regressed = copy.deepcopy(second)
        record = regressed["cases"]["table1.even_depthfirst"]
        record["counters"]["dist_calcs"] *= 2
        self._write(path, [first, regressed])
        assert compare_main(["--file", path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "FAIL:" in out

        # Soft-only regression: fails by default, warns with
        # --hard-only (the CI configuration).
        slowed = copy.deepcopy(second)
        slowed["cases"]["table1.even_depthfirst"]["seconds"] = (
            second["cases"]["table1.even_depthfirst"]["seconds"] * 2
            + 1.0
        )
        self._write(path, [first, slowed])
        assert compare_main(["--file", path]) == 1
        capsys.readouterr()
        assert compare_main(["--file", path, "--hard-only"]) == 0
        assert "WARN:" in capsys.readouterr().out

        assert compare_main(
            ["--file", str(tmp_path / "absent.json")]
        ) == 2

    def test_main_verbose_lists_ok_gates(self, tmp_path, two_entries,
                                         capsys):
        first, second = two_entries
        path = str(tmp_path / "BENCH_smoke.json")
        self._write(path, [first, second])
        assert compare_main(["--file", path, "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "counters.dist_calcs" in out
        assert "seconds" in out
