"""Unit + property tests for the R*-tree and classic R-tree."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import TreeError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.rstar import RStarTree
from repro.rtree.validate import validate_tree
from repro.util.counters import CounterRegistry

from tests.conftest import make_points

TREE_CLASSES = [RStarTree, GuttmanRTree]


@pytest.mark.parametrize("tree_class", TREE_CLASSES)
class TestInsertion:
    def test_empty_tree(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.bounds() is None

    def test_single_insert(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        oid = tree.insert_point((1.0, 2.0))
        assert oid == 0
        assert len(tree) == 1
        assert tree.bounds() == Rect((1, 2), (1, 2))

    def test_oids_sequential(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        oids = [tree.insert_point((float(i), 0.0)) for i in range(10)]
        assert oids == list(range(10))

    def test_explicit_oid(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        assert tree.insert(obj=Point((0, 0)), oid=42) == 42
        assert tree.insert_point((1, 1)) == 43

    def test_grows_and_stays_valid(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        for point in make_points(200, seed=3):
            tree.insert(obj=point)
        assert len(tree) == 200
        assert tree.height >= 3
        validate_tree(tree)

    def test_duplicate_points_allowed(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        for __ in range(30):
            tree.insert_point((5.0, 5.0))
        validate_tree(tree)
        assert len(tree) == 30

    def test_collinear_points(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        for i in range(50):
            tree.insert_point((float(i), 0.0))
        validate_tree(tree)

    def test_rect_objects(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        for i in range(20):
            tree.insert(rect=Rect((i, 0), (i + 2, 2)), obj=None)
        validate_tree(tree)

    def test_dimension_mismatch_rejected(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        with pytest.raises(TreeError):
            tree.insert(obj=Point((1, 2, 3)))

    def test_3d_tree(self, tree_class):
        tree = tree_class(dim=3, max_entries=4)
        rng = random.Random(1)
        for __ in range(60):
            tree.insert(obj=Point(
                (rng.random(), rng.random(), rng.random())
            ))
        validate_tree(tree)

    def test_items_iterates_everything(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        points = make_points(40, seed=8)
        for point in points:
            tree.insert(obj=point)
        seen = sorted(entry.oid for entry in tree.items())
        assert seen == list(range(40))


@pytest.mark.parametrize("tree_class", TREE_CLASSES)
class TestDeletion:
    def test_delete_existing(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        points = make_points(50, seed=4)
        for point in points:
            tree.insert(obj=point)
        assert tree.delete(10, Rect.from_point(points[10]))
        assert len(tree) == 49
        validate_tree(tree)
        remaining = {entry.oid for entry in tree.items()}
        assert 10 not in remaining

    def test_delete_missing_returns_false(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        tree.insert_point((0, 0))
        assert not tree.delete(99, Rect((0, 0), (0, 0)))
        assert len(tree) == 1

    def test_delete_everything(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        points = make_points(60, seed=6)
        for point in points:
            tree.insert(obj=point)
        for oid, point in enumerate(points):
            assert tree.delete(oid, Rect.from_point(point))
            validate_tree(tree)
        assert len(tree) == 0
        assert tree.height == 1

    def test_delete_shrinks_height(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        points = make_points(100, seed=7)
        for point in points:
            tree.insert(obj=point)
        tall = tree.height
        for oid, point in enumerate(points[:95]):
            tree.delete(oid, Rect.from_point(point))
        validate_tree(tree)
        assert tree.height < tall

    def test_reinsert_after_delete(self, tree_class):
        tree = tree_class(dim=2, max_entries=4)
        points = make_points(30, seed=9)
        for point in points:
            tree.insert(obj=point)
        tree.delete(0, Rect.from_point(points[0]))
        new_oid = tree.insert(obj=points[0])
        assert new_oid == 30
        validate_tree(tree)


class TestRStarSpecifics:
    def test_forced_reinserts_happen(self):
        counters = CounterRegistry()
        tree = RStarTree(dim=2, max_entries=8, counters=counters)
        for point in make_points(300, seed=12):
            tree.insert(obj=point)
        assert counters.value("forced_reinserts") > 0

    def test_min_subtree_count(self):
        tree = RStarTree(dim=2, max_entries=10, min_entries=4)
        assert tree.min_subtree_count(0) == 4
        assert tree.min_subtree_count(2) == 64

    def test_avg_subtree_count_grows_with_level(self):
        tree = RStarTree(dim=2, max_entries=8)
        for point in make_points(120, seed=13):
            tree.insert(obj=point)
        assert tree.avg_subtree_count(1) > tree.avg_subtree_count(0)

    def test_node_io_counted(self):
        counters = CounterRegistry()
        tree = RStarTree(
            dim=2, max_entries=4, counters=counters, buffer_pages=2
        )
        for point in make_points(100, seed=14):
            tree.insert(obj=point)
        counters.reset()
        list(tree.items())
        assert counters.value("node_reads") > 0
        # With only 2 buffer pages most reads must miss.
        assert counters.value("node_io") > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RStarTree(dim=2, max_entries=1)
        with pytest.raises(ValueError):
            RStarTree(dim=2, max_entries=8, min_entries=5)
        with pytest.raises(ValueError):
            RStarTree(dim=0)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
        min_size=1,
        max_size=120,
    ),
    st.sampled_from([4, 8]),
)
def test_property_insert_keeps_invariants(raw_points, max_entries):
    """Property: any insertion sequence yields a valid R*-tree that
    contains exactly the inserted objects."""
    tree = RStarTree(dim=2, max_entries=max_entries)
    for xy in raw_points:
        tree.insert(obj=Point(xy))
    validate_tree(tree)
    assert len(tree) == len(raw_points)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.data())
def test_property_mixed_insert_delete(data):
    """Property: random interleavings of inserts and deletes keep the
    tree valid and consistent with a model dict."""
    tree = RStarTree(dim=2, max_entries=4)
    model = {}
    ops = data.draw(st.integers(10, 80))
    rng_seed = data.draw(st.integers(0, 10_000))
    rng = random.Random(rng_seed)
    for __ in range(ops):
        if model and rng.random() < 0.4:
            oid = rng.choice(list(model))
            point = model.pop(oid)
            assert tree.delete(oid, Rect.from_point(point))
        else:
            point = Point((rng.uniform(0, 100), rng.uniform(0, 100)))
            oid = tree.insert(obj=point)
            model[oid] = point
    validate_tree(tree)
    assert {e.oid for e in tree.items()} == set(model)
