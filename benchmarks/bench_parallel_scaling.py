"""Parallel join scaling -- sequential vs the partitioned engine.

Runs the Water ⋈ Roads workload through the sequential
:class:`IncrementalDistanceJoin` and through
:class:`repro.parallel.ParallelDistanceJoin` at several worker counts,
reporting wall-clock time, speedup over sequential, and result-pair
throughput (``MeasuredRun.throughput_pairs_per_sec``).

Notes on reading the numbers:

- the ``process`` backend is the one that can exceed one core; on a
  single-core machine (or under heavy co-tenancy) speedups above 1x
  are physically unavailable and the table will honestly show <= 1x,
  dominated by process start-up and result pickling;
- the ``thread`` backend shares one GIL, so it measures the engine's
  overhead, not CPU scaling;
- partitioned execution also changes *work*: each worker joins only a
  tile pair, so total distance calculations typically drop for small
  K (a tile pair reaches its K-th pair with a shallower frontier).

Usage::

    python benchmarks/bench_parallel_scaling.py            # full table
    python benchmarks/bench_parallel_scaling.py --tiny     # CI smoke
    python benchmarks/bench_parallel_scaling.py --backend thread
"""

from __future__ import annotations

from typing import List, Optional

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    SCRIPT_SCALE,
    TEST_SCALE,
    bench_args,
    best_of,
    emit,
    workload,
)
from repro.bench.reporting import write_run_metrics
from repro.bench.runner import consume, run_join
from repro.core.distance_join import IncrementalDistanceJoin
from repro.parallel import ParallelDistanceJoin

#: Worker counts swept by the script (1 shows pure engine overhead).
WORKER_COUNTS = [1, 2, 4]

#: Result sizes swept by the full script run.
SCRIPT_PAIRS = [100, 1000, 10000]


@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_scaling_smoke(benchmark, workers):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(ParallelDistanceJoin(
            load.tree1, load.tree2,
            workers=workers, backend="thread",
            max_pairs=100, counters=load.counters,
        ), 100)

    benchmark(once)


def _measure(
    load, pairs: int, backend: str,
    measured: Optional[List[tuple]] = None,
    repeat: int = 1,
) -> List[dict]:
    rows = []
    sequential = best_of(repeat, lambda: run_join(
        lambda: IncrementalDistanceJoin(
            load.tree1, load.tree2,
            max_pairs=pairs, counters=load.counters,
        ),
        pairs, load.counters, before=load.cold_caches,
        label="sequential",
    ))
    if measured is not None:
        measured.append((sequential, {"pairs_requested": pairs}))
    rows.append({
        "variant": "sequential",
        "pairs": sequential.pairs_produced,
        "time_s": round(sequential.seconds, 4),
        "speedup": 1.0,
        "pairs_per_s": round(sequential.throughput_pairs_per_sec),
        "dist_calcs": sequential.dist_calcs,
    })
    for workers in WORKER_COUNTS:
        run = best_of(repeat, lambda: run_join(
            lambda: ParallelDistanceJoin(
                load.tree1, load.tree2,
                workers=workers, backend=backend,
                max_pairs=pairs, counters=load.counters,
            ),
            pairs, load.counters, before=load.cold_caches,
            label=f"parallel-x{workers}-{backend}",
        ))
        if measured is not None:
            measured.append((run, {
                "pairs_requested": pairs,
                "workers": workers,
                "backend": backend,
            }))
        rows.append({
            "variant": f"parallel x{workers} ({backend})",
            "pairs": run.pairs_produced,
            "time_s": round(run.seconds, 4),
            "speedup": round(
                sequential.seconds / run.seconds, 2
            ) if run.seconds > 0 else float("inf"),
            "pairs_per_s": round(run.throughput_pairs_per_sec),
            "dist_calcs": run.dist_calcs,
        })
    return rows


def _configure(parser) -> None:
    parser.add_argument(
        "--tiny", action="store_true",
        help="one small configuration (CI smoke test)",
    )
    parser.add_argument(
        "--backend", default="process",
        choices=["serial", "thread", "process"],
        help="parallel backend to sweep (default: process)",
    )
    # --tiny picks its own small default scale, so distinguish "not
    # given" from the shared parser's SCRIPT_SCALE default.
    parser.set_defaults(scale=None)


def main(argv: Optional[List[str]] = None) -> None:
    args = bench_args(
        argv, "parallel join scaling benchmark", configure=_configure
    )

    if args.tiny:
        scale = args.scale if args.scale is not None else 0.005
        pair_sweep = [100]
        backend = "thread" if args.backend == "process" else args.backend
    else:
        scale = args.scale if args.scale is not None else SCRIPT_SCALE
        pair_sweep = SCRIPT_PAIRS
        backend = args.backend

    load = workload(scale)
    rows = []
    measured: Optional[List[tuple]] = [] if args.metrics else None
    for pairs in pair_sweep:
        rows.extend(_measure(
            load, pairs, backend, measured, repeat=args.repeat
        ))
    emit(
        args, rows,
        columns=[
            "variant", "pairs", "time_s", "speedup", "pairs_per_s",
            "dist_calcs",
        ],
        title=(
            f"Parallel scaling, Water x Roads at scale {scale:g}, "
            f"backend={backend}"
        ),
    )
    if args.metrics and measured:
        write_run_metrics(
            args.metrics,
            [run for run, __ in measured],
            [labels for __, labels in measured],
        )
        print(f"metrics -> {args.metrics} (+ .prom)")


if __name__ == "__main__":
    main()
