"""Shard router pruning -- routed vs pruned shard pairs and wall time.

Runs the Water ⋈ Roads ``STOP AFTER k`` workload through the
sequential :class:`IncrementalDistanceJoin` and through
:class:`repro.shard.ShardRouterJoin` at several shard counts, twice
per shard count:

- **unpruned**: the full join consumed to exhaustion -- every shard
  pair that survives range pruning must eventually be routed;
- **pruned**: ``STOP AFTER k`` -- lazy admission opens shard pairs in
  MINDIST order only as the merge frontier reaches their bound, so
  the far pairs are never touched.

The table reports the routed/pruned split (deterministic: the same
workload always routes the same pairs) and the wall-clock effect.
Results are bit-identical to the sequential join either way; the
shard counters are what this benchmark is really about, and the
``shard.router_pruning`` case in the smoke suite hard-gates them.

Usage::

    python benchmarks/bench_shard_router.py            # full table
    python benchmarks/bench_shard_router.py --tiny     # CI smoke
"""

from __future__ import annotations

from typing import List, Optional

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    SCRIPT_SCALE,
    TEST_SCALE,
    bench_args,
    best_of,
    emit,
    workload,
)
from repro.bench.reporting import write_run_metrics
from repro.bench.runner import consume, run_join
from repro.core.distance_join import IncrementalDistanceJoin
from repro.shard import ShardRouterJoin, clear_caches

#: Shard counts swept by the script (per relation; pairs = N x N).
SHARD_COUNTS = [2, 4, 8]

#: STOP AFTER sizes swept by the full script run.
SCRIPT_PAIRS = [100, 1000]


def _fresh_router(load, shards: int, pairs: Optional[int]):
    """A router over fresh catalogs with all caches bypassed, so every
    repetition measures the same work (build + route + join)."""
    clear_caches()
    return ShardRouterJoin(
        load.tree1, load.tree2, shards=shards, max_pairs=pairs,
        counters=load.counters, catalog_cache=False,
        result_cache=False,
    )


@pytest.mark.parametrize("shards", [2, 4])
def test_shard_router_smoke(benchmark, shards):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(_fresh_router(load, shards, 50))

    benchmark(once)


def test_pruning_is_deterministic():
    load = workload(TEST_SCALE)
    snaps = []
    for __ in range(2):
        load.cold_caches()
        load.reset_counters()
        consume(_fresh_router(load, 4, 50))
        snaps.append({
            key: value
            for key, value in load.counters.snapshot().items()
            if key.startswith("shard_pairs")
        })
    assert snaps[0] == snaps[1]
    assert snaps[0]["shard_pairs_pruned"] > 0


def _shard_counters(run) -> dict:
    return {
        "routed": run.counters.get("shard_pairs_routed", 0),
        "pruned": run.counters.get("shard_pairs_pruned", 0),
        "total": run.counters.get("shard_pairs_total", 0),
    }


def _measure(
    load, pairs: int,
    measured: Optional[List[tuple]] = None,
    repeat: int = 1,
) -> List[dict]:
    rows = []
    sequential = best_of(repeat, lambda: run_join(
        lambda: IncrementalDistanceJoin(
            load.tree1, load.tree2,
            max_pairs=pairs, counters=load.counters,
        ),
        pairs, load.counters, before=load.cold_caches,
        label="sequential",
    ))
    if measured is not None:
        measured.append((sequential, {"pairs_requested": pairs}))
    rows.append({
        "variant": "sequential",
        "k": pairs,
        "pairs": sequential.pairs_produced,
        "time_s": round(sequential.seconds, 4),
        "routed": "-",
        "pruned": "-",
        "dist_calcs": sequential.dist_calcs,
    })
    for shards in SHARD_COUNTS:
        for mode, cap in (("unpruned", None), ("pruned", pairs)):
            run = best_of(repeat, lambda: run_join(
                lambda: _fresh_router(load, shards, cap),
                None, load.counters, before=load.cold_caches,
                label=f"shards-{shards}-{mode}",
            ))
            counters = _shard_counters(run)
            if measured is not None:
                measured.append((run, {
                    "pairs_requested": pairs,
                    "shards": shards,
                    "mode": mode,
                }))
            rows.append({
                "variant": f"shards x{shards} ({mode})",
                "k": pairs if mode == "pruned" else "-",
                "pairs": run.pairs_produced,
                "time_s": round(run.seconds, 4),
                "routed": (
                    f"{counters['routed']}/{counters['total']}"
                ),
                "pruned": counters["pruned"],
                "dist_calcs": run.dist_calcs,
            })
    return rows


def _configure(parser) -> None:
    parser.add_argument(
        "--tiny", action="store_true",
        help="one small configuration (CI smoke test)",
    )
    parser.set_defaults(scale=None)


def main(argv: Optional[List[str]] = None) -> None:
    args = bench_args(
        argv, "shard router pruning benchmark", configure=_configure
    )

    if args.tiny:
        scale = args.scale if args.scale is not None else 0.005
        pair_sweep = [50]
    else:
        scale = args.scale if args.scale is not None else SCRIPT_SCALE
        pair_sweep = SCRIPT_PAIRS

    load = workload(scale)
    rows = []
    measured: Optional[List[tuple]] = [] if args.metrics else None
    for pairs in pair_sweep:
        rows.extend(_measure(load, pairs, measured, repeat=args.repeat))
    emit(
        args, rows,
        columns=[
            "variant", "k", "pairs", "time_s", "routed", "pruned",
            "dist_calcs",
        ],
        title=(
            f"Shard router pruning, Water x Roads at scale {scale:g}"
        ),
    )
    if args.metrics and measured:
        write_run_metrics(
            args.metrics,
            [run for run, __ in measured],
            [labels for __, labels in measured],
        )
        print(f"metrics -> {args.metrics} (+ .prom)")


if __name__ == "__main__":
    main()
