"""Ablation AB1 -- MINMAXDIST vs plain MAXDIST in the estimator.

DESIGN.md calls out the choice of the d_max function used by the
maximum-distance estimation (Section 2.2.4): obr/obr pairs may use the
tighter MINMAXDIST (valid because object bounding rectangles are
minimal), while node pairs must use the safe MAXDIST.  This ablation
quantifies the bound gap itself and its effect on estimator pruning by
comparing queue insertions with estimation on and off.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import TEST_SCALE, bench_args, emit, workload
from repro.bench.runner import consume
from repro.core.distance_join import IncrementalDistanceJoin
from repro.geometry.metrics import EUCLIDEAN


@pytest.mark.parametrize("estimate", [False, True])
def test_ablation_estimation(benchmark, estimate):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, max_pairs=500, estimate=estimate,
            counters=load.counters,
        ))

    benchmark(once)


def bound_gap_statistics(load, samples=2000):
    """Mean MAXDIST / MINMAXDIST ratio over random leaf-rect pairs."""
    import random
    rng = random.Random(7)
    rects1 = [e.rect for e in load.tree1.items()]
    rects2 = [e.rect for e in load.tree2.items()]
    ratios = []
    for __ in range(samples):
        r1 = rng.choice(rects1)
        r2 = rng.choice(rects2)
        tight = EUCLIDEAN.minmaxdist_rect_rect(r1, r2)
        loose = EUCLIDEAN.maxdist_rect_rect(r1, r2)
        if tight > 0:
            ratios.append(loose / tight)
    return sum(ratios) / len(ratios) if ratios else 1.0


def main(argv=None):
    args = bench_args(argv, "AB1: estimator bound ablation")
    load = workload(args.scale)
    rows = []
    for max_pairs in (100, 1000, 10000):
        for estimate in (False, True):
            load.cold_caches()
            load.reset_counters()
            consume(IncrementalDistanceJoin(
                load.tree1, load.tree2, max_pairs=max_pairs,
                estimate=estimate, counters=load.counters,
            ))
            rows.append({
                "max_pairs": max_pairs,
                "estimation": "on" if estimate else "off",
                "queue_inserts": load.counters.value("queue_inserts"),
                "pruned_range": load.counters.value("pruned_range"),
                "estimator_trims":
                    load.counters.value("estimator_trims"),
            })
    gap = bound_gap_statistics(load)
    emit(
        args, rows,
        columns=[
            "max_pairs", "estimation", "queue_inserts", "pruned_range",
            "estimator_trims",
        ],
        title=(
            f"AB1: estimator pruning effect at scale {args.scale:g}"
        ),
        extra={"mean_maxdist_minmaxdist_ratio": gap},
    )
    if not args.json:
        print(
            f"\nMean MAXDIST / MINMAXDIST ratio over sampled "
            f"object-rect pairs: {gap:.3f} (the tightening MINMAXDIST "
            f"buys the estimator on obr/obr pairs; points make the "
            f"two coincide, so the ratio is 1.0 for pure point data)"
        )


if __name__ == "__main__":
    main()
