"""Section 4.1.4 -- nested loop vs incremental distance join.

Paper: the nested-loop join (all pairwise distances, inner relation in
memory) took over 3.5 hours on the full data sets, while the
incremental join answers small requests in seconds -- and could
compute at least 100 million pairs in the nested loop's time.  Shape
to reproduce: the nested loop pays the entire Cartesian product before
the first result, so even at bench scale the incremental join's first
pair costs several orders of magnitude fewer distance calculations.
"""

from __future__ import annotations

import time

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_args, emit, workload
from repro.baselines.nested_loop import nested_loop_join
from repro.bench.runner import consume
from repro.core.distance_join import IncrementalDistanceJoin
from repro.util.counters import CounterRegistry

#: The nested loop is quadratic; cap its input so the bench stays sane.
NL_SCALE = 0.005


def test_nested_loop_full(benchmark):
    load = workload(NL_SCALE)

    def once():
        counters = CounterRegistry()
        nested_loop_join(
            load.points1, load.points2, max_pairs=100, counters=counters
        )

    benchmark(once)


@pytest.mark.parametrize("pairs", [1, 100])
def test_incremental_same_request(benchmark, pairs):
    load = workload(NL_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, counters=load.counters
        ), pairs)

    benchmark(once)


def main(argv=None):
    # The nested loop is quadratic, so this script defaults to its own
    # small NL_SCALE rather than the shared SCRIPT_SCALE.
    args = bench_args(
        argv, "Section 4.1.4: nested loop vs incremental join",
        default_scale=NL_SCALE,
    )
    load = workload(args.scale)
    cartesian = len(load.points1) * len(load.points2)
    rows = []

    counters = CounterRegistry()
    start = time.perf_counter()
    nested_loop_join(
        load.points1, load.points2, max_pairs=100, counters=counters
    )
    nl_time = time.perf_counter() - start
    rows.append({
        "method": "Nested loop (100 pairs)",
        "time_s": nl_time,
        "dist_calcs": counters.value("dist_calcs"),
    })

    for pairs in (1, 100, 10000):
        load.cold_caches()
        load.reset_counters()
        start = time.perf_counter()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, counters=load.counters
        ), pairs)
        rows.append({
            "method": f"Incremental ({pairs} pairs)",
            "time_s": time.perf_counter() - start,
            "dist_calcs": load.counters.value("dist_calcs"),
        })

    # The paper's headline comparison: "in that amount of time, the
    # incremental distance join is able to compute at least 100
    # million pairs" -- here: pairs delivered within the nested loop's
    # own running time.
    load.cold_caches()
    load.reset_counters()
    join = IncrementalDistanceJoin(
        load.tree1, load.tree2, counters=load.counters
    )
    deadline = time.perf_counter() + nl_time
    produced = 0
    for __ in join:
        produced += 1
        if time.perf_counter() >= deadline:
            break

    emit(
        args, rows,
        columns=["method", "time_s", "dist_calcs"],
        title=(
            f"Section 4.1.4: nested loop vs incremental join, "
            f"{len(load.points1):,} x {len(load.points2):,} points "
            f"({cartesian:,} total pairs)"
        ),
        extra={
            "cartesian_pairs": cartesian,
            "incremental_pairs_in_nl_time": produced,
        },
    )
    if not args.json:
        print(
            "\nNested loop always evaluates the full Cartesian product "
            f"({cartesian:,} distance calculations) before anything "
            "can be reported; the incremental join's cost scales with "
            "the request."
        )
        print(
            f"in the nested loop's {nl_time:.2f} s, the incremental "
            f"join delivered {produced:,} result pairs (the nested "
            f"loop delivered 100)"
        )


if __name__ == "__main__":
    main()
