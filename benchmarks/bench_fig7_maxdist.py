"""Figure 7 -- effect of maximum distance and maximum pairs (join).

Paper: "MaxDist" sets the maximum distance to the (oracle) distance of
pair number 1000 / 10,000 / 100,000; "MaxPair" bounds the number of
pairs at 100 / 10,000 and lets the estimator of Section 2.2.4 shrink
D_max on the fly.  Shape to reproduce: setting a maximum distance
helps considerably at every result size; MaxPair with a small bound
tracks the corresponding MaxDist curve, while a large bound helps less
(looser estimate, higher bookkeeping overhead).
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    SCRIPT_PAIRS,
    TEST_PAIRS,
    TEST_SCALE,
    bench_args,
    best_of,
    emit_series,
    workload,
)
from repro.bench.runner import consume, run_join
from repro.core.distance_join import IncrementalDistanceJoin


def oracle_distance(load, rank):
    """The distance of result pair number ``rank`` (the paper sets
    MaxDist from known pair distances the same way)."""
    join = IncrementalDistanceJoin(
        load.tree1, load.tree2, counters=load.counters
    )
    last = None
    for count, result in enumerate(join, start=1):
        last = result
        if count >= rank:
            break
    return last.distance if last is not None else 0.0


def sweep(load, pairs_list, make_join, repeat=1, label="", runs=None):
    times = []
    for pairs in pairs_list:
        run = best_of(repeat, lambda: run_join(
            lambda: make_join(pairs),
            pairs,
            load.counters,
            label=f"{label}@{pairs}" if label else str(pairs),
            before=load.cold_caches,
        ))
        if runs is not None:
            runs.append(run)
        times.append(run.seconds if run.pairs_produced >= min(
            pairs, run.pairs_produced
        ) else float("nan"))
    return times


@pytest.mark.parametrize("max_pairs", [100, 2000])
def test_fig7_maxpair(benchmark, max_pairs):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, max_pairs=max_pairs,
            counters=load.counters,
        ))

    benchmark(once)


@pytest.mark.parametrize("pairs", TEST_PAIRS)
def test_fig7_maxdist(benchmark, pairs):
    load = workload(TEST_SCALE)
    limit = oracle_distance(load, 2000)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, max_distance=limit,
            counters=load.counters,
        ), pairs)

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "Figure 7: MaxDist vs MaxPair bounds")
    load = workload(args.scale)
    series = {}
    runs = []

    series["Regular"] = sweep(
        load, SCRIPT_PAIRS,
        lambda pairs: IncrementalDistanceJoin(
            load.tree1, load.tree2, counters=load.counters
        ),
        repeat=args.repeat, label="Regular", runs=runs,
    )

    for rank in (1000, 10000, 50000):
        limit = oracle_distance(load, rank)
        label = f"MaxDist {rank}"
        pairs_list = [p for p in SCRIPT_PAIRS if p <= rank]
        series[label] = sweep(
            load, pairs_list,
            lambda pairs: IncrementalDistanceJoin(
                load.tree1, load.tree2, max_distance=limit,
                counters=load.counters,
            ),
            repeat=args.repeat, label=label, runs=runs,
        )

    for bound in (100, 10000):
        label = f"MaxPair {bound}"
        pairs_list = [p for p in SCRIPT_PAIRS if p <= bound]
        series[label] = sweep(
            load, pairs_list,
            lambda pairs: IncrementalDistanceJoin(
                load.tree1, load.tree2, max_pairs=bound,
                counters=load.counters,
            ),
            repeat=args.repeat, label=label, runs=runs,
        )

    emit_series(
        args, series, x_values=SCRIPT_PAIRS, x_label="pairs",
        title=(
            f"Figure 7: execution time (s), maximum distance vs "
            f"maximum pairs, Water x Roads at scale {args.scale:g} "
            f"(blank = beyond the variant's bound)"
        ),
        runs=runs,
    )


if __name__ == "__main__":
    main()
