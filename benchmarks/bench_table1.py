"""Table 1 -- performance measures of the incremental distance join.

Paper: for Even/DepthFirst (one node at a time, even traversal), the
number of object distance calculations, the maximum size of the
priority queue, and node I/O operations, for 1 .. 100,000 result pairs
of Water ⋈ Roads.  Shape to reproduce: all three measures are already
substantial for the *first* pair (the descent to the first
object/object pair), grow slowly through ~10,000 pairs, and climb
sharply at the largest result sizes.

Run ``python benchmarks/bench_table1.py`` for the full table;
``pytest benchmarks/bench_table1.py --benchmark-only`` for the timing
harness at test scale.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    SCRIPT_PAIRS,
    TEST_PAIRS,
    TEST_SCALE,
    bench_args,
    best_of,
    emit,
    workload,
)
from repro.bench.runner import run_join
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.tiebreak import DEPTH_FIRST


def make_join(load):
    return IncrementalDistanceJoin(
        load.tree1,
        load.tree2,
        node_policy="even",
        tie_break=DEPTH_FIRST,
        counters=load.counters,
    )


def measure(scale, pairs_list, repeat=1):
    load = workload(scale)
    rows, runs = [], []
    for pairs in pairs_list:
        run = best_of(repeat, lambda: run_join(
            lambda: make_join(load),
            pairs,
            load.counters,
            label=str(pairs),
            before=load.cold_caches,
        ))
        runs.append(run)
        rows.append({
            "Pairs": pairs,
            "Time (s)": run.seconds,
            "Dist. Calc.": run.dist_calcs,
            "Queue Size": run.max_queue_size,
            "Node I/O": run.node_io,
        })
    return rows, runs


@pytest.mark.parametrize("pairs", TEST_PAIRS)
def test_table1_even_depthfirst(benchmark, pairs):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        join = make_join(load)
        for count, __ in enumerate(join, start=1):
            if count >= pairs:
                break

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "Table 1: incremental join measures")
    rows, runs = measure(args.scale, SCRIPT_PAIRS, args.repeat)
    emit(
        args, rows,
        columns=[
            "Pairs", "Time (s)", "Dist. Calc.", "Queue Size", "Node I/O"
        ],
        title=(
            f"Table 1: incremental distance join (Even/DepthFirst), "
            f"Water x Roads at scale {args.scale:g}"
        ),
        runs=runs,
    )


if __name__ == "__main__":
    main()
