"""OPT1 -- pipeline vs prefilter plan crossover (paper Section 5).

The paper's closing discussion sketches two plans for "the nearest
city with population over 5 million": filter the incremental join's
output (best when the predicate keeps most objects) or restrict the
relation first and join the small index (best when it is highly
selective), and notes a cost model is needed to choose.  This
benchmark measures both plans across a selectivity sweep, finds the
empirical crossover, and scores the cost model's choices against it.
"""

from __future__ import annotations

import random
import time

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_args, emit
from repro.datasets.synthetic import uniform_points
from repro.query.executor import Database
from repro.util.counters import CounterRegistry

TEST_OUTER = 300
TEST_INNER = 300
SCRIPT_OUTER = 2000  # == 40,000 * the default 0.05 scale
SCRIPT_INNER = 2000


def count_at(scale):
    return max(TEST_OUTER, round(40_000 * scale))
SELECTIVITIES = (0.001, 0.01, 0.05, 0.2, 0.5, 1.0)

SQL = (
    "SELECT * FROM outer_rel, inner_rel, "
    "DISTANCE(outer_rel.geom, inner_rel.geom) AS d "
    "WHERE outer_rel.score <= {threshold} ORDER BY d STOP AFTER 10"
)


def build(outer_count, inner_count, seed=7):
    rng = random.Random(seed)
    outer = uniform_points(outer_count, seed=seed)
    scores = [rng.random() for __ in outer]
    inner = uniform_points(inner_count, seed=seed + 1)
    db = Database(counters=CounterRegistry())
    db.create_relation("outer_rel", outer, attributes={"score": scores})
    db.create_relation("inner_rel", inner)
    return db


def run_strategy(db, threshold, strategy):
    start = time.perf_counter()
    rows = list(db.execute(
        SQL.format(threshold=threshold), strategy=strategy
    ))
    return time.perf_counter() - start, len(rows)


@pytest.mark.parametrize("strategy", ["pipeline", "prefilter"])
@pytest.mark.parametrize("selectivity", [0.01, 0.5])
def test_opt_strategies(benchmark, strategy, selectivity):
    db = build(TEST_OUTER, TEST_INNER)

    def once():
        run_strategy(db, selectivity, strategy)

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "OPT1: pipeline vs prefilter crossover")
    count = count_at(args.scale)
    db = build(count, count)
    rows = []
    correct_choices = 0
    for selectivity in SELECTIVITIES:
        pipe_time, pipe_rows = min(
            (run_strategy(db, selectivity, "pipeline")
             for __ in range(max(1, args.repeat))),
            key=lambda t: t[0],
        )
        pre_time, pre_rows = min(
            (run_strategy(db, selectivity, "prefilter")
             for __ in range(max(1, args.repeat))),
            key=lambda t: t[0],
        )
        assert pipe_rows == pre_rows
        plan = db.explain(SQL.format(threshold=selectivity))
        empirical_winner = (
            "prefilter" if pre_time < pipe_time else "pipeline"
        )
        model_correct = plan.strategy == empirical_winner
        # Near the crossover either choice costs about the same; count
        # a "wrong" pick as correct if it is within 25% of the winner.
        if not model_correct:
            chosen_time = (
                pre_time if plan.strategy == "prefilter" else pipe_time
            )
            model_correct = chosen_time <= 1.25 * min(
                pipe_time, pre_time
            )
        correct_choices += bool(model_correct)
        rows.append({
            "selectivity": selectivity,
            "pipeline_s": pipe_time,
            "prefilter_s": pre_time,
            "winner": empirical_winner,
            "model_choice": plan.strategy,
            "ok": "yes" if model_correct else "NO",
        })
    emit(
        args, rows,
        columns=[
            "selectivity", "pipeline_s", "prefilter_s", "winner",
            "model_choice", "ok",
        ],
        title=(
            f"OPT1: plan crossover, {count:,} x "
            f"{count:,} points, 10 result pairs"
        ),
        extra={
            "model_correct": correct_choices,
            "selectivities": len(SELECTIVITIES),
        },
    )
    if not args.json:
        print(
            f"\ncost model choices acceptable at {correct_choices}/"
            f"{len(SELECTIVITIES)} selectivities"
        )


if __name__ == "__main__":
    main()
