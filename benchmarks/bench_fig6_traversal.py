"""Figure 6 -- execution time of four traversal variants.

Paper: Even/DepthFirst vs Even/BreadthFirst vs Basic/DepthFirst vs
Simultaneous/DepthFirst for 1 .. 100,000 pairs of Water ⋈ Roads.
Shape to reproduce: the curves are similar in shape (cheap first pair,
modest growth to ~10,000, sharp rise at 100,000); DepthFirst beats
BreadthFirst for retrieving *one* pair (there is a distance-0 pair
reported immediately by DepthFirst); Basic and Simultaneous do much
more work (distance calculations, queue growth) with no maximum
distance set.  Section 4.1.1 also notes Basic degenerates when the
larger relation comes first (Roads ⋈ Water) -- measured here as X1.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    SCRIPT_PAIRS,
    TEST_PAIRS,
    TEST_SCALE,
    bench_args,
    best_of,
    emit_series,
    workload,
)
from repro.bench.runner import run_join
from repro.core.distance_join import IncrementalDistanceJoin

VARIANTS = [
    ("Even/DepthFirst", dict(node_policy="even", tie_break="depth_first")),
    ("Even/BreadthFirst",
     dict(node_policy="even", tie_break="breadth_first")),
    ("Basic/DepthFirst", dict(node_policy="basic", tie_break="depth_first")),
    ("Simultaneous/DepthFirst",
     dict(node_policy="simultaneous", tie_break="depth_first")),
]


def make_join(load, options):
    return IncrementalDistanceJoin(
        load.tree1, load.tree2, counters=load.counters, **options
    )


@pytest.mark.parametrize("label,options", VARIANTS)
@pytest.mark.parametrize("pairs", TEST_PAIRS)
def test_fig6_variant(benchmark, label, options, pairs):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        join = make_join(load, options)
        for count, __ in enumerate(join, start=1):
            if count >= pairs:
                break

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "Figure 6: traversal variants")
    load = workload(args.scale)
    series = {}
    runs = []
    for label, options in VARIANTS:
        times = []
        for pairs in SCRIPT_PAIRS:
            run = best_of(args.repeat, lambda: run_join(
                lambda: make_join(load, options),
                pairs,
                load.counters,
                label=f"{label}@{pairs}",
                before=load.cold_caches,
            ))
            runs.append(run)
            times.append(run.seconds)
        series[label] = times

    # X1 (Section 4.1.1): Basic with the larger relation first blows
    # up the queue; Even barely changes.
    swapped = load.swapped()
    x1_rows = []
    for label, options in (VARIANTS[0], VARIANTS[2]):
        run = best_of(args.repeat, lambda: run_join(
            lambda: IncrementalDistanceJoin(
                swapped.tree1, swapped.tree2,
                counters=swapped.counters, **options,
            ),
            1000,
            swapped.counters,
            label=f"X1-{label}",
            before=swapped.cold_caches,
        ))
        runs.append(run)
        x1_rows.append({
            "variant": label,
            "time_s": run.seconds,
            "max_queue": run.max_queue_size,
            "dist_calcs": run.dist_calcs,
        })

    emit_series(
        args, series, x_values=SCRIPT_PAIRS, x_label="pairs",
        title=(
            f"Figure 6: execution time (s) by traversal variant, "
            f"Water x Roads at scale {args.scale:g}"
        ),
        runs=runs,
        extra={"x1_roads_water_1000_pairs": x1_rows},
    )
    if not args.json:
        print()
        print("X1: Roads x Water (larger relation first), 1000 pairs")
        for row in x1_rows:
            print(
                f"  {row['variant']:<22} time={row['time_s']:8.3f}s  "
                f"max_queue={row['max_queue']:>10,}  "
                f"dist_calcs={row['dist_calcs']:>10,}"
            )


if __name__ == "__main__":
    main()
