"""Ablation AB2 -- pairing heap vs binary heap for the pair queue.

The paper's implementation uses a pairing heap for the memory-resident
part of the priority queue (Section 3.2, citing Fredman et al.).  This
ablation swaps in a ``heapq``-based binary heap behind the same
interface and measures the join end to end, plus the raw structures in
isolation.
"""

from __future__ import annotations

import random
import time

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import TEST_SCALE, bench_args, emit, workload
from repro.bench.runner import consume
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.heap import BinaryHeap, PairingHeap

HEAPS = [("pairing", PairingHeap), ("binary", BinaryHeap)]


@pytest.mark.parametrize("label,heap_class", HEAPS)
def test_ablation_join_with_heap(benchmark, label, heap_class):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, heap_class=heap_class,
            counters=load.counters,
        ), 2000)

    benchmark(once)


@pytest.mark.parametrize("label,heap_class", HEAPS)
def test_ablation_raw_heap(benchmark, label, heap_class):
    rng = random.Random(1)
    keys = [(rng.random(), i) for i in range(20_000)]

    def once():
        heap = heap_class()
        for key in keys:
            heap.push(key, None)
        while heap:
            heap.pop()

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "AB2: pairing vs binary heap")
    load = workload(args.scale)
    rows = []
    for label, heap_class in HEAPS:
        for pairs in (1000, 10000):
            best = None
            for __ in range(max(1, args.repeat)):
                load.cold_caches()
                load.reset_counters()
                start = time.perf_counter()
                consume(IncrementalDistanceJoin(
                    load.tree1, load.tree2, heap_class=heap_class,
                    counters=load.counters,
                ), pairs)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            rows.append({
                "heap": label,
                "pairs": pairs,
                "time_s": best,
            })
    emit(
        args, rows,
        columns=["heap", "pairs", "time_s"],
        title=(
            f"AB2: pairing vs binary heap inside the join at scale "
            f"{args.scale:g}"
        ),
    )


if __name__ == "__main__":
    main()
