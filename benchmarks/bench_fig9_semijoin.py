"""Figure 9 -- semi-join filter placements and d_max strategies.

Paper: execution time of Outside / Inside1 / Inside2 filtering and of
the Local / GlobalNodes / GlobalAll d_max strategies for 1 .. all
pairs of the distance semi-join of Water with Roads.  Shape to
reproduce: all variants are close for small result counts; Outside's
queue blows up on large results (the paper could not finish it);
Inside2 clearly beats Inside1 for the full result (~47% in the paper);
the d_max strategies pay off at the largest result sizes with
GlobalAll ahead, GlobalNodes barely distinguishable from Local.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    TEST_SCALE,
    bench_args,
    best_of,
    emit_series,
    workload,
)
from repro.bench.runner import consume, run_join
from repro.core.semi_join import IncrementalDistanceSemiJoin

VARIANTS = [
    ("Outside", dict(filter_strategy="outside", dmax_strategy="none")),
    ("Inside1", dict(filter_strategy="inside1", dmax_strategy="none")),
    ("Inside2", dict(filter_strategy="inside2", dmax_strategy="none")),
    ("Local", dict(filter_strategy="inside2", dmax_strategy="local")),
    ("GlobalNodes",
     dict(filter_strategy="inside2", dmax_strategy="global_nodes")),
    ("GlobalAll",
     dict(filter_strategy="inside2", dmax_strategy="global_all")),
]


def pair_sweep(load):
    total = len(load.tree1)
    sweep = [p for p in (1, 10, 100, 1000, 10000) if p < total]
    return sweep + [total]


@pytest.mark.parametrize("label,options", VARIANTS)
def test_fig9_strategy_full_result(benchmark, label, options):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceSemiJoin(
            load.tree1, load.tree2, counters=load.counters, **options
        ))

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "Figure 9: semi-join strategies")
    load = workload(args.scale)
    sweep = pair_sweep(load)
    series = {}
    runs = []
    for label, options in VARIANTS:
        times = []
        for pairs in sweep:
            run = best_of(args.repeat, lambda: run_join(
                lambda: IncrementalDistanceSemiJoin(
                    load.tree1, load.tree2,
                    counters=load.counters, **options,
                ),
                pairs,
                load.counters,
                label=f"{label}@{pairs}",
                before=load.cold_caches,
            ))
            runs.append(run)
            times.append(run.seconds)
        series[label] = times
    emit_series(
        args, series, x_values=sweep, x_label="pairs",
        title=(
            f"Figure 9: semi-join execution time (s) by strategy, "
            f"Water semi-join Roads at scale {args.scale:g} "
            f"(last column = all {len(load.tree1):,} outer objects)"
        ),
        runs=runs,
    )


if __name__ == "__main__":
    main()
