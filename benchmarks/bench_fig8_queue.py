"""Figure 8 -- memory-only vs hybrid memory/disk priority queue.

Paper: the purely memory-based queue is only a little slower than the
hybrid queue up to 10,000 pairs, then almost an order of magnitude
slower at 100,000 pairs (virtual-memory thrashing); the hybrid scheme
is compared at two D_T values, the larger one winning at the largest
result size (fewer disk reads) and the smaller one slightly ahead
below that (more pairs kept out of the heap).

A pure-Python run cannot thrash a real VM system, so the *measured*
proxy for memory pressure is the peak in-memory element count
(``pq_heap_size`` peak for the hybrid tiers vs ``queue_size`` peak for
the memory queue) alongside wall-clock time; the hybrid queue's disk
traffic is also reported.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    SCRIPT_PAIRS,
    TEST_PAIRS,
    TEST_SCALE,
    bench_args,
    best_of,
    emit,
    workload,
)
from repro.bench.runner import consume, run_join
from repro.bench.workloads import suggest_dt
from repro.core.distance_join import IncrementalDistanceJoin


def variants(load):
    dt = suggest_dt(load)
    return [
        ("Memory", dict(queue="memory")),
        ("Hybrid1 (small DT)", dict(queue="hybrid", queue_dt=dt / 4)),
        ("Hybrid2 (large DT)", dict(queue="hybrid", queue_dt=dt)),
        # The paper's future-work item: D_T chosen dynamically from
        # the queue's early traffic (Section 3.2).
        ("Adaptive DT", dict(queue="adaptive")),
    ]


@pytest.mark.parametrize("pairs", TEST_PAIRS)
@pytest.mark.parametrize("kind", ["memory", "hybrid"])
def test_fig8_queue_kind(benchmark, pairs, kind):
    load = workload(TEST_SCALE)
    options = (
        dict(queue="memory") if kind == "memory"
        else dict(queue="hybrid", queue_dt=suggest_dt(load))
    )

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, counters=load.counters, **options
        ), pairs)

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "Figure 8: memory vs hybrid queue")
    load = workload(args.scale)
    rows = []
    runs = []
    for label, options in variants(load):
        for pairs in SCRIPT_PAIRS:
            run = best_of(args.repeat, lambda: run_join(
                lambda: IncrementalDistanceJoin(
                    load.tree1, load.tree2,
                    counters=load.counters, **options,
                ),
                pairs,
                load.counters,
                label=f"{label}@{pairs}",
                before=load.cold_caches,
            ))
            runs.append(run)
            in_memory_peak = (
                run.peaks.get("pq_heap_size", 0)
                if options["queue"] in ("hybrid", "adaptive")
                else run.peaks.get("queue_size", 0)
            )
            rows.append({
                "variant": label,
                "pairs": pairs,
                "time_s": run.seconds,
                "mem_peak_elems": in_memory_peak,
                "disk_writes": run.counters.get("pq_disk_writes", 0),
                "disk_reads": run.counters.get("pq_disk_reads", 0),
            })
    emit(
        args, rows,
        columns=[
            "variant", "pairs", "time_s", "mem_peak_elems",
            "disk_writes", "disk_reads",
        ],
        title=(
            f"Figure 8: memory vs hybrid priority queue, "
            f"Water x Roads at scale {args.scale:g}"
        ),
        runs=runs,
    )


if __name__ == "__main__":
    main()
