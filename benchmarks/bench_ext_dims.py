"""EXT2 -- joins in higher dimensions (paper Section 5 future work).

The paper's experiments are two-dimensional; "higher dimensions" is
explicitly left open.  The algorithms and this implementation are
dimension-agnostic, so this experiment sweeps the dimension at fixed
cardinality on uniform data and reports how the work grows: distance
calculations and queue size climb with dimension as rectangle bounds
lose discriminating power (the usual curse-of-dimensionality shape for
R-tree methods).
"""

from __future__ import annotations

import random
import time

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_args, emit
from repro.bench.runner import consume
from repro.core.distance_join import IncrementalDistanceJoin
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load_str
from repro.util.counters import CounterRegistry

TEST_DIMS = (2, 4)
SCRIPT_DIMS = (2, 3, 4, 6)
TEST_COUNT = 300
SCRIPT_COUNT = 1500  # == 30,000 * the default 0.05 scale


def count_at(scale):
    return max(TEST_COUNT, round(30_000 * scale))


def build(dim, count, seed):
    rng = random.Random(seed)
    points = [
        Point([rng.uniform(0.0, 100.0) for __ in range(dim)])
        for __ in range(count)
    ]
    counters = CounterRegistry()
    tree = bulk_load_str(points, counters=counters, max_entries=50)
    return tree, counters


@pytest.mark.parametrize("dim", TEST_DIMS)
def test_ext_dims_join(benchmark, dim):
    tree_a, counters = build(dim, TEST_COUNT, seed=dim)
    tree_b, __ = build(dim, TEST_COUNT, seed=dim + 100)

    def once():
        counters.reset()
        consume(IncrementalDistanceJoin(
            tree_a, tree_b, counters=counters,
        ), 500)

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "EXT2: join cost by dimension")
    count = count_at(args.scale)
    rows = []
    for dim in SCRIPT_DIMS:
        tree_a, counters = build(dim, count, seed=dim)
        tree_b, __ = build(dim, count, seed=dim + 100)
        start = time.perf_counter()
        consume(IncrementalDistanceJoin(
            tree_a, tree_b, counters=counters,
        ), 5000)
        rows.append({
            "dim": dim,
            "time_s": time.perf_counter() - start,
            "dist_calcs": counters.value("dist_calcs"),
            "max_queue": counters.peak("queue_size"),
            "node_io": counters.value("node_io"),
        })
    emit(
        args, rows,
        columns=["dim", "time_s", "dist_calcs", "max_queue", "node_io"],
        title=(
            f"EXT2: 5,000 closest pairs of {count:,} x "
            f"{count:,} uniform points by dimension"
        ),
    )


if __name__ == "__main__":
    main()
