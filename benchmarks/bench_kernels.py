"""Scalar vs. vectorized node expansion on the paper's workloads.

The batch kernels (:mod:`repro.kernels`) compute MINDIST / MAXDIST /
object distances for a node's whole entry array in one numpy call
instead of one Python call per entry.  The contract is that they are a
pure speed knob: identical result rows, tie order, and counter totals
(docs/KERNELS.md).  This script measures the speedup on the Table 1 /
Figure 6 configurations -- Even/DepthFirst and Basic/DepthFirst over
Water ⋈ Roads -- and re-verifies row identity on the measured
workload before reporting.

Run ``python benchmarks/bench_kernels.py``; with ``--json`` the rows
include the ``sec/1k`` ratio used by the acceptance check.  Without
numpy the script reports the scalar baseline only.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_kernels.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    SCRIPT_PAIRS,
    TEST_PAIRS,
    TEST_SCALE,
    bench_args,
    best_of,
    emit,
    workload,
)
from repro.bench.runner import run_join
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.spec import JoinSpec
from repro.core.tiebreak import DEPTH_FIRST
from repro.kernels import kernels_available

#: The measured configurations (paper Table 1 and Figure 6).
POLICIES = ("even", "basic")


def make_join(load, kernel, node_policy="even"):
    spec = JoinSpec(
        node_policy=node_policy,
        tie_break=DEPTH_FIRST,
        kernel=kernel,
    )
    return IncrementalDistanceJoin(
        load.tree1, load.tree2, spec, counters=load.counters
    )


def rows_of(load, kernel, node_policy, pairs):
    """The first ``pairs`` result rows as comparable tuples."""
    load.cold_caches()
    load.reset_counters()
    join = make_join(load, kernel, node_policy)
    out = []
    for result in join:
        out.append((result.distance, result.oid1, result.oid2))
        if pairs is not None and len(out) >= pairs:
            break
    return out


def check_parity(load, node_policy, pairs):
    """Row-identity spot check on the measured workload (exact
    distances, ids, and order -- not approximate)."""
    scalar = rows_of(load, "scalar", node_policy, pairs)
    vector = rows_of(load, "vector", node_policy, pairs)
    if scalar != vector:
        raise AssertionError(
            f"scalar/vector rows diverge on {node_policy} "
            f"({len(scalar)} vs {len(vector)} rows)"
        )
    return len(scalar)


def measure(scale, pairs_list, repeat=1):
    load = workload(scale)
    kernels = ("scalar", "vector") if kernels_available() else ("scalar",)
    rows, runs = [], []
    for node_policy in POLICIES:
        if len(kernels) == 2:
            check_parity(load, node_policy, max(pairs_list))
        for pairs in pairs_list:
            measured = {}
            for kernel in kernels:
                run = best_of(repeat, lambda: run_join(
                    lambda: make_join(load, kernel, node_policy),
                    pairs,
                    load.counters,
                    label=f"{node_policy}/{kernel}/{pairs}",
                    before=load.cold_caches,
                ))
                runs.append(run)
                measured[kernel] = run
            scalar = measured["scalar"]
            vector = measured.get("vector")
            row = {
                "Policy": node_policy,
                "Pairs": pairs,
                "Scalar (s)": scalar.seconds,
                "Vector (s)": vector.seconds if vector else None,
                "Speedup": (
                    scalar.seconds / vector.seconds
                    if vector and vector.seconds > 0 else None
                ),
                "sec/1k scalar": 1000.0 * scalar.seconds / max(
                    1, scalar.pairs_produced),
                "sec/1k vector": (
                    1000.0 * vector.seconds / max(1, vector.pairs_produced)
                    if vector else None
                ),
            }
            rows.append(row)
    return rows, runs


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
@pytest.mark.parametrize("pairs", TEST_PAIRS)
def test_kernel_paths(benchmark, kernel, pairs):
    if kernel == "vector" and not kernels_available():
        pytest.skip("numpy not importable; vector kernels unavailable")
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        join = make_join(load, kernel)
        for count, __ in enumerate(join, start=1):
            if count >= pairs:
                break

    benchmark(once)


def main(argv=None):
    args = bench_args(
        argv, "Batch kernels: scalar vs vectorized node expansion"
    )
    rows, runs = measure(args.scale, SCRIPT_PAIRS, args.repeat)
    emit(
        args, rows,
        columns=[
            "Policy", "Pairs", "Scalar (s)", "Vector (s)", "Speedup",
            "sec/1k scalar", "sec/1k vector",
        ],
        title=(
            f"Batch kernels vs scalar expansion, Water x Roads at "
            f"scale {args.scale:g} "
            f"(numpy {'available' if kernels_available() else 'absent'})"
        ),
        runs=runs,
        extra={"numpy": kernels_available()},
    )


if __name__ == "__main__":
    main()
