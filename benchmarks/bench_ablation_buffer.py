"""Ablation AB3 -- buffer-pool size vs node I/O.

The paper fixes the buffer at 256 KB (256 one-KB frames) and reports
node I/O as a primary measure.  This ablation sweeps the buffer-pool
capacity and shows how the join's node I/O responds: tiny pools
re-read hot upper-level nodes constantly; once the pool covers the
working set (roughly the frequently re-touched top of both trees),
extra frames stop helping -- contextualizing the paper's choice.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import TEST_SCALE, bench_args, emit
from repro.bench.runner import consume
from repro.bench.workloads import build_tiger_workload
from repro.core.distance_join import IncrementalDistanceJoin

TEST_BUFFERS = (4, 256)
SCRIPT_BUFFERS = (2, 8, 32, 128, 256, 1024)


def build(scale, buffer_pages):
    return build_tiger_workload(scale=scale, buffer_pages=buffer_pages)


@pytest.mark.parametrize("buffer_pages", TEST_BUFFERS)
def test_ablation_buffer(benchmark, buffer_pages):
    load = build(TEST_SCALE, buffer_pages)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, counters=load.counters,
        ), 1000)

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "AB3: buffer-pool size vs node I/O")
    rows = []
    for buffer_pages in SCRIPT_BUFFERS:
        load = build(args.scale, buffer_pages)
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceJoin(
            load.tree1, load.tree2, counters=load.counters,
        ), 10000)
        reads = load.counters.value("node_reads")
        misses = load.counters.value("node_io")
        rows.append({
            "buffer_pages": buffer_pages,
            "node_reads": reads,
            "node_io": misses,
            "hit_ratio": 1.0 - misses / reads if reads else 0.0,
        })
    emit(
        args, rows,
        columns=["buffer_pages", "node_reads", "node_io", "hit_ratio"],
        title=(
            f"AB3: buffer-pool size vs node I/O, 10,000 join pairs at "
            f"scale {args.scale:g} (paper's setting: 256 pages)"
        ),
    )


if __name__ == "__main__":
    main()
