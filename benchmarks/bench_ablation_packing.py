"""Ablation AB4 -- index packing: STR vs Hilbert vs Morton vs R* insert.

The paper builds its R*-trees by insertion; this library's benchmarks
bulk-load with STR.  This ablation verifies that the choice does not
distort the reproduced results: it packs the same TIGER-like data four
ways, measures the structural quality (sibling overlap, margin), and
runs the same 10,000-pair join on each -- the join's counters show how
much index quality feeds through to the algorithms under study.
"""

from __future__ import annotations

import time

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_args, emit
from repro.bench.runner import consume
from repro.core.distance_join import IncrementalDistanceJoin
from repro.datasets.tiger_like import roads_points, water_points
from repro.rtree.bulk import bulk_load_str
from repro.rtree.rstar import RStarTree
from repro.rtree.spacefill import bulk_load_curve
from repro.rtree.stats import tree_quality
from repro.util.counters import CounterRegistry

TEST_SIZES = (150, 600)
PAPER_SIZES = (37495, 200482)  # Water, Roads


def sizes_at(scale):
    return tuple(max(50, round(n * scale)) for n in PAPER_SIZES)


def build_pair(builder, sizes, counters):
    water = water_points(sizes[0])
    roads = roads_points(sizes[1])
    tree_w = builder(water, counters)
    tree_r = builder(roads, counters)
    counters.reset()
    return tree_w, tree_r


def builders():
    def str_builder(points, counters):
        return bulk_load_str(points, counters=counters, max_entries=50)

    def hilbert_builder(points, counters):
        return bulk_load_curve(
            points, curve="hilbert", counters=counters, max_entries=50
        )

    def morton_builder(points, counters):
        return bulk_load_curve(
            points, curve="morton", counters=counters, max_entries=50
        )

    def insert_builder(points, counters):
        tree = RStarTree(dim=2, max_entries=50, counters=counters)
        for point in points:
            tree.insert(obj=point)
        return tree

    return [
        ("STR", str_builder),
        ("Hilbert", hilbert_builder),
        ("Morton", morton_builder),
        ("R* insert", insert_builder),
    ]


@pytest.mark.parametrize("label,builder", builders()[:3])
def test_ablation_packing_join(benchmark, label, builder):
    counters = CounterRegistry()
    tree_w, tree_r = build_pair(builder, TEST_SIZES, counters)

    def once():
        counters.reset()
        tree_w.pool.clear()
        tree_r.pool.clear()
        consume(IncrementalDistanceJoin(
            tree_w, tree_r, counters=counters,
        ), 1000)

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "AB4: packing method vs join cost")
    sizes = sizes_at(args.scale)
    rows = []
    for label, builder in builders():
        counters = CounterRegistry()
        build_start = time.perf_counter()
        tree_w, tree_r = build_pair(builder, sizes, counters)
        build_time = time.perf_counter() - build_start
        quality = tree_quality(tree_r)
        counters.reset()
        tree_w.pool.clear()
        tree_r.pool.clear()
        start = time.perf_counter()
        consume(IncrementalDistanceJoin(
            tree_w, tree_r, counters=counters,
        ), 10000)
        rows.append({
            "packing": label,
            "build_s": build_time,
            "overlap": quality.sibling_overlap,
            "join_s": time.perf_counter() - start,
            "dist_calcs": counters.value("dist_calcs"),
            "node_io": counters.value("node_io"),
        })
    emit(
        args, rows,
        columns=[
            "packing", "build_s", "overlap", "join_s", "dist_calcs",
            "node_io",
        ],
        title=(
            f"AB4: packing method vs join cost "
            f"(10,000 pairs, Water x Roads at scale {args.scale:g})"
        ),
    )


if __name__ == "__main__":
    main()
