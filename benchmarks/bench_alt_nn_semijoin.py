"""Section 4.2.3 -- semi-join vs a nearest-neighbour implementation.

Paper: computing the full distance semi-join with one NN query per
outer object plus a final sort takes ~27s (Water semi-join Roads)
against ~25s for the incremental "GlobalAll" variant; with the
relations swapped (Roads semi-join Water) GlobalAll wins 102s vs 141s.
Shape to reproduce: the incremental GlobalAll variant is competitive
with (or ahead of) the NN baseline for the *full* result in both
orders, while for partial results the incremental algorithm wins by
construction (the NN baseline must finish everything first).
"""

from __future__ import annotations

import time

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import TEST_SCALE, bench_args, emit, workload
from repro.baselines.nn_semijoin import nn_semi_join
from repro.bench.runner import consume
from repro.core.semi_join import IncrementalDistanceSemiJoin

GLOBAL_ALL = dict(filter_strategy="inside2", dmax_strategy="global_all")


def outer_items(tree):
    return [(entry.oid, entry.obj) for entry in tree.items()]


def test_nn_baseline_full(benchmark):
    load = workload(TEST_SCALE)
    outer = outer_items(load.tree1)

    def once():
        load.cold_caches()
        load.reset_counters()
        nn_semi_join(outer, load.tree2)

    benchmark(once)


def test_incremental_globalall_full(benchmark):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceSemiJoin(
            load.tree1, load.tree2, counters=load.counters, **GLOBAL_ALL
        ))

    benchmark(once)


@pytest.mark.parametrize("pairs", [10])
def test_incremental_partial(benchmark, pairs):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(IncrementalDistanceSemiJoin(
            load.tree1, load.tree2, counters=load.counters, **GLOBAL_ALL
        ), pairs)

    benchmark(once)


def _measure(load, order_label):
    rows = []
    outer = outer_items(load.tree1)

    load.cold_caches()
    load.reset_counters()
    start = time.perf_counter()
    nn_semi_join(outer, load.tree2)
    rows.append({
        "order": order_label,
        "method": "NN per object + sort",
        "pairs": len(outer),
        "time_s": time.perf_counter() - start,
    })

    load.cold_caches()
    load.reset_counters()
    start = time.perf_counter()
    consume(IncrementalDistanceSemiJoin(
        load.tree1, load.tree2, counters=load.counters, **GLOBAL_ALL
    ))
    rows.append({
        "order": order_label,
        "method": "Incremental GlobalAll",
        "pairs": len(outer),
        "time_s": time.perf_counter() - start,
    })

    load.cold_caches()
    load.reset_counters()
    start = time.perf_counter()
    consume(IncrementalDistanceSemiJoin(
        load.tree1, load.tree2, counters=load.counters, **GLOBAL_ALL
    ), 10)
    rows.append({
        "order": order_label,
        "method": "Incremental GlobalAll (10 pairs)",
        "pairs": 10,
        "time_s": time.perf_counter() - start,
    })
    return rows


def main(argv=None):
    args = bench_args(argv, "Section 4.2.3: semi-join vs NN baseline")
    load = workload(args.scale)
    rows = _measure(load, "Water sj Roads")
    rows += _measure(load.swapped(), "Roads sj Water")
    emit(
        args, rows,
        columns=["order", "method", "pairs", "time_s"],
        title=(
            f"Section 4.2.3: semi-join vs NN baseline at scale "
            f"{args.scale:g}"
        ),
    )


if __name__ == "__main__":
    main()
