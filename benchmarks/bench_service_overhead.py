"""Service overhead -- the price of suspending and resuming a join.

The preemptable service (``repro.service``) suspends a running join by
saving its cursor and later rebuilding the operator from it.  This
benchmark measures that cost directly: the same bounded join is run
uninterrupted and with a suspend/resume cycle (including a pickle
round-trip, the evicted-session path) every N results, for a sweep of
suspend cadences.  The interesting shape: overhead per result falls
roughly linearly with the cadence, and even an aggressive cadence
(every 16 results) stays within a small multiple of the plain run
because the cursor is just the priority-queue state -- nothing is
recomputed.

Run ``python benchmarks/bench_service_overhead.py`` for the table;
``pytest benchmarks/bench_service_overhead.py --benchmark-only`` for
the timing harness at test scale.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    TEST_SCALE,
    bench_args,
    best_of,
    emit,
    workload,
)
from repro.bench.runner import run_join
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.spec import JoinSpec
from repro.service.overhead import resumed_join

#: Suspend cadences swept by the script (results between suspends).
SCRIPT_CADENCES = [16, 64, 256]

#: Result pairs consumed per measurement (script runs).
SCRIPT_PAIRS = 2_000

TEST_CADENCES = [32]
TEST_PAIRS_BUDGET = 200


def make_plain(load, pairs):
    return IncrementalDistanceJoin(
        load.tree1, load.tree2, JoinSpec(max_pairs=pairs),
        counters=load.counters,
    )


def make_resumed(load, pairs, every):
    return resumed_join(
        load.tree1, load.tree2, JoinSpec(max_pairs=pairs),
        counters=load.counters, every=every, through_bytes=True,
    )


def measure(scale, pairs, cadences, repeat=1):
    load = workload(scale)
    baseline = best_of(repeat, lambda: run_join(
        lambda: make_plain(load, pairs), pairs, load.counters,
        label="plain", before=load.cold_caches,
    ))
    rows = [{
        "Suspend every": "(never)",
        "Time (s)": baseline.seconds,
        "Suspends": 0,
        "Overhead": "--",
    }]
    runs = [baseline]
    for every in cadences:
        run = best_of(repeat, lambda: run_join(
            lambda: make_resumed(load, pairs, every),
            pairs, load.counters,
            label=f"every={every}", before=load.cold_caches,
        ))
        runs.append(run)
        overhead = (run.seconds / baseline.seconds - 1.0) \
            if baseline.seconds > 0 else 0.0
        rows.append({
            "Suspend every": every,
            "Time (s)": run.seconds,
            "Suspends": (pairs - 1) // every,
            "Overhead": f"{overhead:+.0%}",
        })
    return rows, runs


@pytest.mark.parametrize("every", TEST_CADENCES)
def test_service_overhead(benchmark, every):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        for __ in make_resumed(load, TEST_PAIRS_BUDGET, every):
            pass

    benchmark(once)


def main(argv=None):
    args = bench_args(
        argv, "Service overhead: suspend/resume vs uninterrupted join"
    )
    rows, runs = measure(
        args.scale, SCRIPT_PAIRS, SCRIPT_CADENCES, args.repeat
    )
    emit(
        args, rows,
        columns=["Suspend every", "Time (s)", "Suspends", "Overhead"],
        title=(
            f"Suspend/resume overhead, {SCRIPT_PAIRS} pairs of "
            f"Water x Roads at scale {args.scale:g}"
        ),
        runs=runs,
    )


if __name__ == "__main__":
    main()
