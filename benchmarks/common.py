"""Shared configuration for the benchmark scripts.

Every benchmark exists in two forms:

- a pytest-benchmark test (``pytest benchmarks/ --benchmark-only``) at
  a small scale so the whole suite stays fast, and
- a ``main()`` printing the paper-style table/series at a larger scale
  (``python benchmarks/bench_table1.py``).

Scales are fractions of the paper's data set sizes (Water: 37,495,
Roads: 200,482).  Override via the ``REPRO_BENCH_SCALE`` environment
variable for script runs.
"""

from __future__ import annotations

import argparse
import json
import os
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.bench.workloads import JoinWorkload, build_tiger_workload

#: Scale used by pytest-benchmark tests (keep the suite quick).
TEST_SCALE = 0.01

#: Scale used by the __main__ table printers.
SCRIPT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

#: Result-pair sweep for pytest runs.
TEST_PAIRS = [1, 100, 2000]

#: Result-pair sweep for script runs (the paper sweeps 1..100,000 on
#: the full-size data; this is the same span relative to scale).
SCRIPT_PAIRS = [1, 10, 100, 1000, 10000, 50000]


@lru_cache(maxsize=4)
def workload(scale: float = TEST_SCALE) -> JoinWorkload:
    """A cached Water ⋈ Roads workload at ``scale``."""
    return build_tiger_workload(scale=scale)


def fresh(scale: float, make_run):
    """Run ``make_run(workload)`` against cold caches and reset
    counters; returns its result."""
    load = workload(scale)
    load.cold_caches()
    load.reset_counters()
    return make_run(load)


# ----------------------------------------------------------------------
# shared script argparse + output (every bench_*.py main() uses these,
# which is what makes the scripts registrable/driveable by the suite
# and by ``python -m repro bench <name>`` instead of print-only)
# ----------------------------------------------------------------------


def bench_parser(
    description: str, default_scale: Optional[float] = None
) -> argparse.ArgumentParser:
    """The shared argparse of every benchmark script:
    ``--scale --repeat --json --metrics``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale", type=float,
        default=default_scale if default_scale is not None
        else SCRIPT_SCALE,
        help="workload scale as a fraction of the paper's data sizes "
             "(default: REPRO_BENCH_SCALE or 0.05)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="min-of-N repetitions per measurement (default: 1)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit rows as a JSON document instead of a table",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write each measured run's counters and timings to FILE "
             "as JSON-lines (plus a Prometheus-style FILE.prom dump)",
    )
    return parser


def bench_args(
    argv: Optional[Sequence[str]],
    description: str,
    default_scale: Optional[float] = None,
    configure=None,
) -> argparse.Namespace:
    """Parse the shared flags (plus script-specific ones added by the
    optional ``configure(parser)`` hook)."""
    parser = bench_parser(description, default_scale)
    if configure is not None:
        configure(parser)
    return parser.parse_args(argv)


def best_of(repeat: int, make_run):
    """Min-of-N: run ``make_run()`` ``repeat`` times, keep the run
    with the smallest wall time (the one least disturbed by the
    machine; counters are deterministic so any run's are right)."""
    runs = [make_run() for __ in range(max(1, repeat))]
    return min(runs, key=lambda run: run.seconds)


def emit(
    args: argparse.Namespace,
    rows: List[Mapping[str, Any]],
    columns: Sequence[str],
    title: str = "",
    runs: Optional[Sequence[Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Print rows as a table, or as JSON under ``--json``; write the
    measured runs' metric records when ``--metrics FILE`` was given."""
    from repro.bench.reporting import format_table, write_run_metrics

    if args.json:
        payload: Dict[str, Any] = {"title": title, "rows": list(rows)}
        if extra:
            payload.update(extra)
        print(json.dumps(payload, indent=1, sort_keys=True,
                         default=str))
    else:
        print(format_table(rows, columns=columns, title=title))
    if args.metrics and runs:
        write_run_metrics(args.metrics, list(runs))
        print(f"metrics -> {args.metrics} (+ .prom)")


def emit_series(
    args: argparse.Namespace,
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[Any],
    x_label: str = "pairs",
    title: str = "",
    runs: Optional[Sequence[Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Figure-style output: one row per x value, one column per
    series (table by default, JSON under ``--json``)."""
    rows: List[Dict[str, Any]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, Any] = {x_label: x}
        for label, values in series.items():
            row[label] = values[i] if i < len(values) else ""
        rows.append(row)
    emit(
        args, rows, columns=[x_label] + list(series), title=title,
        runs=runs, extra=extra,
    )
