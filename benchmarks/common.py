"""Shared configuration for the benchmark scripts.

Every benchmark exists in two forms:

- a pytest-benchmark test (``pytest benchmarks/ --benchmark-only``) at
  a small scale so the whole suite stays fast, and
- a ``main()`` printing the paper-style table/series at a larger scale
  (``python benchmarks/bench_table1.py``).

Scales are fractions of the paper's data set sizes (Water: 37,495,
Roads: 200,482).  Override via the ``REPRO_BENCH_SCALE`` environment
variable for script runs.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.bench.workloads import JoinWorkload, build_tiger_workload

#: Scale used by pytest-benchmark tests (keep the suite quick).
TEST_SCALE = 0.01

#: Scale used by the __main__ table printers.
SCRIPT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

#: Result-pair sweep for pytest runs.
TEST_PAIRS = [1, 100, 2000]

#: Result-pair sweep for script runs (the paper sweeps 1..100,000 on
#: the full-size data; this is the same span relative to scale).
SCRIPT_PAIRS = [1, 10, 100, 1000, 10000, 50000]


@lru_cache(maxsize=4)
def workload(scale: float = TEST_SCALE) -> JoinWorkload:
    """A cached Water ⋈ Roads workload at ``scale``."""
    return build_tiger_workload(scale=scale)


def fresh(scale: float, make_run):
    """Run ``make_run(workload)`` against cold caches and reset
    counters; returns its result."""
    load = workload(scale)
    load.cold_caches()
    load.reset_counters()
    return make_run(load)
