"""EXT1 -- joins over objects with extent (paper Section 5 future work).

The paper evaluates on point centroids and explicitly defers "more
complex spatial features" such as line data to future study.  This
experiment runs the distance join and semi-join over *line segment*
versions of the Water/Roads sets, in both leaf modes:

- ``direct``: segment geometry stored in the leaves (exact distance
  computed when pairing leaf entries);
- ``obr``: leaves hold minimal bounding rectangles and object access
  is deferred to obr/obr dequeues -- the mode where the MINMAXDIST
  machinery actually tightens bounds (points make it degenerate).

Reported: time, distance calculations, object accesses, and the
measured MAXDIST/MINMAXDIST gap on the segment MBRs.
"""

from __future__ import annotations

import random
import time

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_args, emit
from repro.bench.runner import consume
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.datasets.tiger_like import roads_segments, water_segments
from repro.geometry.metrics import EUCLIDEAN
from repro.rtree.bulk import bulk_load_str
from repro.util.counters import CounterRegistry

TEST_SIZES = (80, 300)
SCRIPT_SIZES = (800, 4000)  # == (16,000, 80,000) * the 0.05 scale


def sizes_at(scale):
    return tuple(max(50, round(n * scale)) for n in (16_000, 80_000))


def build(sizes):
    counters = CounterRegistry()
    water = water_segments(sizes[0])
    roads = roads_segments(sizes[1])
    tree_w = bulk_load_str(water, counters=counters, max_entries=50)
    tree_r = bulk_load_str(roads, counters=counters, max_entries=50)
    counters.reset()
    return water, roads, tree_w, tree_r, counters


@pytest.mark.parametrize("leaf_mode", ["direct", "obr"])
def test_ext_lines_join(benchmark, leaf_mode):
    __, ___, tree_w, tree_r, counters = build(TEST_SIZES)

    def once():
        counters.reset()
        consume(IncrementalDistanceJoin(
            tree_w, tree_r, leaf_mode=leaf_mode, counters=counters,
        ), 200)

    benchmark(once)


def test_ext_lines_semi_join(benchmark):
    __, ___, tree_w, tree_r, counters = build(TEST_SIZES)

    def once():
        counters.reset()
        consume(IncrementalDistanceSemiJoin(
            tree_w, tree_r, counters=counters,
        ))

    benchmark(once)


def bound_gap(water, roads, samples=2000, seed=3):
    rng = random.Random(seed)
    ratios = []
    for __ in range(samples):
        r1 = rng.choice(water).mbr()
        r2 = rng.choice(roads).mbr()
        tight = EUCLIDEAN.minmaxdist_rect_rect(r1, r2)
        loose = EUCLIDEAN.maxdist_rect_rect(r1, r2)
        if tight > 0:
            ratios.append(loose / tight)
    return sum(ratios) / len(ratios)


def main(argv=None):
    args = bench_args(argv, "EXT1: line-segment joins")
    water, roads, tree_w, tree_r, counters = build(sizes_at(args.scale))
    rows = []
    for label, leaf_mode, pairs in (
        ("join/direct", "direct", 2000),
        ("join/obr", "obr", 2000),
        ("semi-join/direct", "direct", None),
    ):
        counters.reset()
        tree_w.pool.clear()
        tree_r.pool.clear()
        start = time.perf_counter()
        if label.startswith("semi"):
            produced = consume(IncrementalDistanceSemiJoin(
                tree_w, tree_r, counters=counters,
            ), pairs)
        else:
            produced = consume(IncrementalDistanceJoin(
                tree_w, tree_r, leaf_mode=leaf_mode, counters=counters,
            ), pairs)
        rows.append({
            "workload": label,
            "pairs": produced,
            "time_s": time.perf_counter() - start,
            "dist_calcs": counters.value("dist_calcs"),
            "object_accesses": counters.value("object_accesses"),
        })
    gap = bound_gap(water, roads)
    emit(
        args, rows,
        columns=[
            "workload", "pairs", "time_s", "dist_calcs",
            "object_accesses",
        ],
        title=(
            f"EXT1: line-segment joins, {len(water):,} water x "
            f"{len(roads):,} road segments"
        ),
        extra={"maxdist_minmaxdist_ratio": gap},
    )
    if not args.json:
        print(
            f"\nMAXDIST / MINMAXDIST ratio on segment MBRs: "
            f"{gap:.3f} (extent makes the tighter "
            f"bound meaningful; 1.0 on point data)"
        )


if __name__ == "__main__":
    main()
