"""Figure 10 -- semi-join under maximum distance / maximum pairs.

Paper: the "Local" semi-join variant with (a) MaxDist set to the
distance of the 1000th pair and to the largest semi-join distance
("MaxDist All"), and (b) MaxPair set to 1000 / 10,000 and to |Water|
("MaxPair All").  Shape to reproduce: a small MaxPair bound (1000)
performs like the corresponding oracle MaxDist; large bounds help
little or hurt (loose estimate + bookkeeping); MaxDist All is ~14%
faster than Regular for the full result while MaxPair All is ~13%
slower.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

# Allow `python benchmarks/bench_*.py` without installing the
# benchmarks package (pytest imports it via the repo root).
_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    TEST_SCALE,
    bench_args,
    best_of,
    emit,
    workload,
)
from repro.bench.runner import consume, run_join
from repro.core.semi_join import IncrementalDistanceSemiJoin

LOCAL = dict(filter_strategy="inside2", dmax_strategy="local")


def semi(load, **kwargs):
    options = dict(LOCAL)
    options.update(kwargs)
    return IncrementalDistanceSemiJoin(
        load.tree1, load.tree2, counters=load.counters, **options
    )


def oracle_distance(load, rank):
    """Distance of semi-join result number ``rank`` (None = last)."""
    last = None
    for count, result in enumerate(semi(load), start=1):
        last = result
        if rank is not None and count >= rank:
            break
    return last.distance if last is not None else 0.0


@pytest.mark.parametrize("max_pairs", [100, 1000])
def test_fig10_maxpair(benchmark, max_pairs):
    load = workload(TEST_SCALE)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(semi(load, max_pairs=max_pairs))

    benchmark(once)


def test_fig10_maxdist_all(benchmark):
    load = workload(TEST_SCALE)
    limit = oracle_distance(load, None)

    def once():
        load.cold_caches()
        load.reset_counters()
        consume(semi(load, max_distance=limit))

    benchmark(once)


def main(argv=None):
    args = bench_args(argv, "Figure 10: semi-join with bounds")
    load = workload(args.scale)
    total = len(load.tree1)
    d_1000 = oracle_distance(load, 1000)
    d_all = oracle_distance(load, None)

    configs = [
        ("Regular", {}, None),
        ("MaxDist 1000", dict(max_distance=d_1000), 1000),
        ("MaxDist All", dict(max_distance=d_all), None),
        ("MaxPair 1000", dict(max_pairs=1000), 1000),
        ("MaxPair 10000", dict(max_pairs=10000), 10000),
        (f"MaxPair All ({total})", dict(max_pairs=total), None),
    ]
    rows = []
    runs = []
    for label, options, pairs in configs:
        run = best_of(args.repeat, lambda: run_join(
            lambda: semi(load, **options),
            pairs,
            load.counters,
            label=label,
            before=load.cold_caches,
        ))
        runs.append(run)
        rows.append({
            "variant": label,
            "pairs": run.pairs_produced,
            "time_s": run.seconds,
            "queue_inserts": run.counters.get("queue_inserts", 0),
            "estimator_trims": run.counters.get("estimator_trims", 0),
        })
    emit(
        args, rows,
        columns=[
            "variant", "pairs", "time_s", "queue_inserts",
            "estimator_trims",
        ],
        title=(
            f"Figure 10: semi-join with maximum distance / maximum "
            f"pairs (Local variant), Water semi-join Roads at scale "
            f"{args.scale:g}"
        ),
        runs=runs,
    )


if __name__ == "__main__":
    main()
