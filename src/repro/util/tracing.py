"""Chrome trace-event export for :mod:`repro.util.obs` data.

Serializes an :class:`~repro.util.obs.Observer`'s measurements --
per-occurrence span events (``trace_spans=True``), gauge timelines,
and the event log -- as Chrome trace-event JSON, the format read by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  The
same exporter renders the aggregate :class:`~repro.util.obs.ObsSnapshot`
objects that parallel workers ship inside every
:class:`~repro.parallel.executor.TaskBatch`, one track (pid/tid pair)
per worker, so a parallel join's whole fleet is visible on one
timeline.

Event vocabulary used (all standard trace-event phases):

- ``X`` *complete* events for spans (``ts`` start, ``dur`` duration,
  both in microseconds);
- ``C`` *counter* events for gauge timelines;
- ``i`` *instant* events for everything else in the event log;
- ``M`` *metadata* events naming processes and threads.

Everything here is pure data transformation: nothing in this module
runs on a hot path, and a disabled observer simply yields an empty
trace.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.util.obs import ObsSnapshot, Observer, SPAN_EVENT

__all__ = [
    "chrome_trace",
    "gauge_counter_events",
    "instant_events",
    "observer_trace",
    "snapshot_summary_events",
    "sort_events",
    "span_record_events",
    "worker_track_events",
    "write_chrome_trace",
]

#: Seconds -> trace-event microseconds.
_MICROS = 1e6

#: Default pid of the parent/driver track.
DRIVER_PID = 1


def _us(seconds: float) -> float:
    return seconds * _MICROS


def process_name_event(pid: int, name: str) -> Dict[str, Any]:
    """An ``M`` metadata event labelling process ``pid``."""
    return {
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": name},
    }


def thread_name_event(pid: int, tid: int, name: str) -> Dict[str, Any]:
    """An ``M`` metadata event labelling thread ``tid`` of ``pid``."""
    return {
        "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
        "args": {"name": name},
    }


def span_complete_events(
    obs: Observer, pid: int = DRIVER_PID, tid: int = 1,
    cat: str = "span",
) -> List[Dict[str, Any]]:
    """``X`` events for every :data:`~repro.util.obs.SPAN_EVENT` in the
    observer's event log (requires ``trace_spans=True`` recording).

    Span events are logged at span *end* with the duration as value,
    so the start is ``t - value``; a clamped-at-zero start guards
    against float jitter on sub-microsecond spans.
    """
    events: List[Dict[str, Any]] = []
    for event in obs.events:
        if event.kind != SPAN_EVENT:
            continue
        start = event.t - event.value
        if start < 0.0:
            start = 0.0
        events.append({
            "name": event.label, "cat": cat, "ph": "X",
            "ts": _us(start), "dur": _us(event.value),
            "pid": pid, "tid": tid,
        })
    return events


def span_record_events(
    records: Iterable[Any],
    pid: int = DRIVER_PID,
    tid: int = 1,
    cat: str = "telemetry",
    trace_id: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """``X`` events for request-scoped telemetry span records.

    ``records`` is anything shaped like
    :class:`repro.util.telemetry.SpanRecord` (``name`` / ``span_id`` /
    ``parent_id`` / ``t0`` / ``dur`` / ``attrs``) -- duck-typed so this
    module keeps its single dependency on :mod:`repro.util.obs`.  Span
    and parent ids ride in ``args`` (plus the owning ``trace_id`` when
    given), which is how Perfetto reconstructs the request tree.
    """
    events: List[Dict[str, Any]] = []
    for record in records:
        args: Dict[str, Any] = {
            "span_id": record.span_id,
            "parent_id": record.parent_id,
        }
        if trace_id:
            args["trace_id"] = trace_id
        if record.attrs:
            args.update(record.attrs)
        events.append({
            "name": record.name, "cat": cat, "ph": "X",
            "ts": _us(record.t0), "dur": _us(record.dur),
            "pid": pid, "tid": tid, "args": args,
        })
    return events


def gauge_counter_events(
    obs: Observer, pid: int = DRIVER_PID, tid: int = 1,
    cat: str = "gauge",
) -> List[Dict[str, Any]]:
    """``C`` counter events from every retained gauge sample."""
    events: List[Dict[str, Any]] = []
    for name in obs.gauge_names():
        for t, value in obs.gauge_timeline(name):
            events.append({
                "name": name, "cat": cat, "ph": "C",
                "ts": _us(t), "pid": pid, "tid": tid,
                "args": {name: value},
            })
    return events


def instant_events(
    obs: Observer, pid: int = DRIVER_PID, tid: int = 1,
    cat: str = "event",
) -> List[Dict[str, Any]]:
    """``i`` instant events for the non-span entries of the event log."""
    events: List[Dict[str, Any]] = []
    for event in obs.events:
        if event.kind == SPAN_EVENT:
            continue
        events.append({
            "name": event.label or event.kind, "cat": cat, "ph": "i",
            "ts": _us(event.t), "pid": pid, "tid": tid, "s": "t",
            "args": {"kind": event.kind, "value": event.value},
        })
    return events


def snapshot_summary_events(
    snapshot: ObsSnapshot,
    pid: int,
    tid: int,
    start_us: float = 0.0,
    cat: str = "summary",
) -> List[Dict[str, Any]]:
    """Aggregate span stats as a synthetic sequential ``X`` timeline.

    Snapshots carry totals, not per-occurrence timestamps (that is
    what keeps them cheap to pickle across the process boundary), so
    each phase is drawn once, ``total_s`` long, phases laid end to
    end in name order.  The result reads as a per-worker time budget
    rather than a literal schedule; counts and extrema ride in
    ``args``.
    """
    events: List[Dict[str, Any]] = []
    cursor = start_us
    for name in sorted(snapshot.spans):
        count, total, mn, mx = snapshot.spans[name]
        events.append({
            "name": name, "cat": cat, "ph": "X",
            "ts": cursor, "dur": _us(total),
            "pid": pid, "tid": tid,
            "args": {
                "count": count,
                "min_ms": mn * 1e3 if mn != float("inf") else 0.0,
                "max_ms": mx * 1e3,
            },
        })
        cursor += _us(total)
    return events


def _merge_snapshots(snapshots: Iterable[ObsSnapshot]) -> ObsSnapshot:
    merged = Observer(max_events=0)
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


def worker_track_events(
    task_obs: Mapping[int, ObsSnapshot],
    task_workers: Mapping[int, str],
    pid: int = DRIVER_PID + 1,
    cat: str = "worker",
) -> List[Dict[str, Any]]:
    """One trace track per parallel worker from per-task snapshots.

    ``task_obs`` and ``task_workers`` are exactly what
    :meth:`~repro.parallel.join.ParallelDistanceJoin.task_span_snapshots`
    and its worker map provide: the cumulative stage timings each
    worker shipped in its :class:`TaskBatch`.  Tasks are grouped by
    executing worker; each worker gets one ``(pid, tid)`` pair (tids
    are assigned in sorted worker-label order, so output is
    deterministic) plus a ``thread_name`` metadata event carrying the
    worker label (``pid-1234`` or ``pid-1234/repro-join_0``).
    """
    by_worker: Dict[str, List[ObsSnapshot]] = {}
    for task_id, snapshot in task_obs.items():
        label = task_workers.get(task_id, "worker-?")
        by_worker.setdefault(label, []).append(snapshot)
    events: List[Dict[str, Any]] = [
        process_name_event(pid, "repro workers")
    ]
    for tid, label in enumerate(sorted(by_worker), start=1):
        events.append(thread_name_event(pid, tid, label))
        merged = _merge_snapshots(by_worker[label])
        events.extend(
            snapshot_summary_events(merged, pid=pid, tid=tid, cat=cat)
        )
    return events


def observer_trace(
    obs: Observer,
    pid: int = DRIVER_PID,
    tid: int = 1,
    process_name: str = "repro",
    thread_name: str = "driver",
    include_gauges: bool = True,
    include_instants: bool = True,
) -> List[Dict[str, Any]]:
    """The full single-track trace of one observer: metadata, spans
    (per-occurrence when ``trace_spans`` recorded them, aggregate
    summary otherwise), gauge counters, and instant events."""
    events: List[Dict[str, Any]] = [
        process_name_event(pid, process_name),
        thread_name_event(pid, tid, thread_name),
    ]
    spans = span_complete_events(obs, pid=pid, tid=tid)
    if spans:
        events.extend(spans)
    else:
        events.extend(
            snapshot_summary_events(obs.snapshot(), pid=pid, tid=tid)
        )
    if include_gauges:
        events.extend(gauge_counter_events(obs, pid=pid, tid=tid))
    if include_instants:
        events.extend(instant_events(obs, pid=pid, tid=tid))
    return sort_events(events)


def sort_events(
    events: Iterable[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Stable-sort events for readers that expect monotonic time:
    metadata first, then by ``(pid, tid, ts)``."""
    return sorted(
        (dict(event) for event in events),
        key=lambda e: (
            0 if e.get("ph") == "M" else 1,
            e.get("pid", 0), e.get("tid", 0), e.get("ts", 0.0),
        ),
    )


def chrome_trace(
    events: Iterable[Mapping[str, Any]],
    metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Wrap events in the JSON-object trace container Perfetto
    expects (``traceEvents`` plus free-form top-level metadata)."""
    trace: Dict[str, Any] = {
        "traceEvents": sort_events(events),
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["metadata"] = dict(metadata)
    return trace


def write_chrome_trace(
    path: str,
    events: Union[Iterable[Mapping[str, Any]], Mapping[str, Any]],
    metadata: Optional[Mapping[str, Any]] = None,
) -> str:
    """Write a trace (events or a prebuilt container) to ``path``;
    returns ``path`` for chaining into log lines."""
    if isinstance(events, Mapping) and "traceEvents" in events:
        trace: Mapping[str, Any] = events
    else:
        trace = chrome_trace(events, metadata)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"))
    return path
