"""Fixed-capacity bit-string set of small non-negative integers.

The paper (Section 3.2) represents the semi-join "seen" set ``S_A`` as a
bit string because membership tests and insertions dominate, and notes
that even for a million elements the bit string occupies only 122 KB.
This module provides that representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.util.validation import require_non_negative


class Bitset:
    """A set of integers in ``[0, capacity)`` backed by a ``bytearray``.

    Membership tests and insertions are O(1); iteration is O(capacity).
    The structure grows automatically when an index beyond the current
    capacity is added, doubling to amortize reallocation.

    Examples
    --------
    >>> s = Bitset(16)
    >>> s.add(3), s.add(11)
    (True, True)
    >>> 3 in s, 4 in s
    (True, False)
    >>> len(s)
    2
    >>> sorted(s)
    [3, 11]
    """

    __slots__ = ("_bits", "_count")

    def __init__(self, capacity: int = 64, items: Iterable[int] = ()) -> None:
        require_non_negative(capacity, "capacity")
        self._bits = bytearray((capacity + 7) // 8)
        self._count = 0
        for item in items:
            self.add(item)

    @property
    def capacity(self) -> int:
        """Number of distinct indices representable without growing."""
        return len(self._bits) * 8

    def _grow_to(self, index: int) -> None:
        needed = index // 8 + 1
        new_size = max(needed, 2 * len(self._bits), 8)
        self._bits.extend(b"\x00" * (new_size - len(self._bits)))

    def add(self, index: int) -> bool:
        """Insert ``index``; return True if it was not already present."""
        require_non_negative(index, "index")
        byte, bit = index >> 3, 1 << (index & 7)
        if byte >= len(self._bits):
            self._grow_to(index)
        if self._bits[byte] & bit:
            return False
        self._bits[byte] |= bit
        self._count += 1
        return True

    def discard(self, index: int) -> bool:
        """Remove ``index`` if present; return True if it was present."""
        require_non_negative(index, "index")
        byte, bit = index >> 3, 1 << (index & 7)
        if byte >= len(self._bits) or not self._bits[byte] & bit:
            return False
        self._bits[byte] &= ~bit & 0xFF
        self._count -= 1
        return True

    def clear(self) -> None:
        """Remove all elements, keeping the allocated capacity."""
        for i in range(len(self._bits)):
            self._bits[i] = 0
        self._count = 0

    def __contains__(self, index: int) -> bool:
        if index < 0:
            return False
        byte = index >> 3
        if byte >= len(self._bits):
            return False
        return bool(self._bits[byte] & (1 << (index & 7)))

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[int]:
        for byte_index, byte in enumerate(self._bits):
            if not byte:
                continue
            base = byte_index << 3
            for bit in range(8):
                if byte & (1 << bit):
                    yield base + bit

    def __repr__(self) -> str:
        preview = ", ".join(str(i) for _, i in zip(range(8), self))
        suffix = ", ..." if self._count > 8 else ""
        return f"Bitset({{{preview}{suffix}}}, size={self._count})"

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the bit string itself."""
        return len(self._bits)

    def state(self) -> tuple:
        """A compact picklable snapshot: ``(bit string, count)``."""
        return (bytes(self._bits), self._count)

    @classmethod
    def from_state(cls, state: tuple) -> "Bitset":
        """Rebuild a bitset from a :meth:`state` snapshot."""
        bits, count = state
        out = cls(0)
        out._bits = bytearray(bits)
        out._count = count
        return out
