"""Performance-counter registry.

The paper's Table 1 reports three performance measures besides wall
clock time: object distance calculations, maximum priority-queue size,
and node I/O operations.  Every component of this library reports its
work through a :class:`CounterRegistry` so the benchmark harness can
collect exactly those measures (and more) deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple, Union


class Counter:
    """A single named counter tracking a running total and a high-water mark.

    ``add`` accumulates into ``value``; ``observe`` additionally updates
    ``peak`` with the supplied level (used for gauge-style measures such
    as the current queue size).
    """

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.peak = 0

    def add(self, amount: int = 1) -> None:
        """Increase the running total by ``amount``."""
        self.value += amount
        if self.value > self.peak:
            self.peak = self.value

    def observe(self, level: int) -> None:
        """Record an instantaneous level; updates the high-water mark."""
        if level > self.peak:
            self.peak = level

    def reset(self) -> None:
        """Zero both the running total and the high-water mark."""
        self.value = 0
        self.peak = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value}, peak={self.peak})"


@dataclass
class CounterSnapshot:
    """A frozen, picklable view of a registry: totals plus peaks.

    Parallel join workers run against private registries and ship
    snapshots back with each result batch; the parent merges them with
    :meth:`CounterRegistry.merge`.  Snapshots are plain dataclasses of
    dicts, so they pickle cheaply across process boundaries.
    """

    values: Dict[str, int] = field(default_factory=dict)
    peaks: Dict[str, int] = field(default_factory=dict)

    def value(self, name: str) -> int:
        """Total of ``name`` at snapshot time (0 if never touched)."""
        return self.values.get(name, 0)

    def peak(self, name: str) -> int:
        """High-water mark of ``name`` at snapshot time."""
        return self.peaks.get(name, 0)

    def delta_from(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """The increment between ``earlier`` and this snapshot.

        Values subtract (what happened in between); peaks keep this
        snapshot's high-water marks (a peak is a level, not a flow).
        Used to merge a worker's periodic snapshots into a parent
        registry without double counting.

        A total *below* the earlier snapshot's means the contributor
        was ``reset()`` in between; everything it now reports happened
        since that reset, so the delta is the current total.  Deltas
        are therefore never negative -- a negative increment merged
        into a parent registry would silently subtract work.
        """
        values: Dict[str, int] = {}
        for name, total in self.values.items():
            previous = earlier.values.get(name, 0)
            increment = total - previous if total >= previous else total
            if increment:
                values[name] = increment
        return CounterSnapshot(values=values, peaks=dict(self.peaks))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}={value}" for name, value in sorted(self.values.items())
        )
        return f"CounterSnapshot({body})"


class CounterRegistry:
    """A mapping of counter names to :class:`Counter` objects.

    Counters are created on first use, so components can simply call
    ``registry.add("node_io")`` without prior registration.

    Well-known counter names used by this library:

    - ``node_io``            -- R-tree node reads that missed the buffer pool
    - ``node_reads``         -- all R-tree node reads (hit or miss)
    - ``dist_calcs``         -- object/object distance computations
    - ``bound_calcs``        -- node/rect MINDIST / MAXDIST computations
    - ``queue_inserts``      -- insertions into the main pair queue
    - ``queue_size``         -- gauge: current main-queue size (peak matters)
    - ``pq_disk_writes``     -- hybrid-queue pair records written to disk
    - ``pq_disk_reads``      -- hybrid-queue pair records read back
    - ``pairs_reported``     -- result pairs produced
    - ``pruned_range``       -- pairs pruned by the [Dmin, Dmax] range
    - ``pruned_seen``        -- semi-join pairs pruned by the seen-set
    - ``pruned_dmax``        -- semi-join pairs pruned by d_max bounds
    - ``estimator_trims``    -- Dmax reductions by the K-pairs estimator
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it if needed."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def add(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``self.counter(name).add(amount)``."""
        self.counter(name).add(amount)

    def observe(self, name: str, level: int) -> None:
        """Shorthand for ``self.counter(name).observe(level)``."""
        self.counter(name).observe(level)

    def value(self, name: str) -> int:
        """Current total of ``name`` (0 if the counter was never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def peak(self, name: str) -> int:
        """High-water mark of ``name`` (0 if never touched)."""
        counter = self._counters.get(name)
        return counter.peak if counter is not None else 0

    def reset(self) -> None:
        """Reset every counter to zero without discarding them."""
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self) -> Mapping[str, int]:
        """An immutable view of current totals, for reporting."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def snapshot_peaks(self) -> Mapping[str, int]:
        """An immutable view of current peaks, for reporting."""
        return {name: c.peak for name, c in sorted(self._counters.items())}

    def full_snapshot(self) -> CounterSnapshot:
        """Totals and peaks together as a picklable value object."""
        return CounterSnapshot(
            values={n: c.value for n, c in self._counters.items()},
            peaks={n: c.peak for n, c in self._counters.items()},
        )

    def merge(
        self, other: Union["CounterRegistry", CounterSnapshot]
    ) -> None:
        """Fold another registry's (or snapshot's) work into this one.

        Totals add; peaks combine by maximum -- the merged registry
        reports the work of all contributors and the highest level any
        single contributor observed.  This is how the parallel join
        aggregates per-worker registries into the parent's.

        Two guards keep the result well-formed:

        - negative contributions (a malformed delta) are dropped --
          merging must never subtract work;
        - cumulative counters keep the ``peak >= value`` invariant
          that :meth:`Counter.add` maintains.  Each contributor's peak
          equals its own total, so a plain max-combine would leave the
          merged total above the merged peak; ``Counter.add`` already
          lifts the peak with the value, and the explicit observe
          below only ever raises it further (gauge-style peaks).
        """
        snap = other.full_snapshot() if isinstance(
            other, CounterRegistry
        ) else other
        for name, value in snap.values.items():
            if value > 0:
                self.counter(name).add(value)
        for name, peak in snap.peaks.items():
            if peak > 0:
                self.counter(name).observe(peak)
        for name in snap.values:
            counter = self._counters.get(name)
            if counter is not None and counter.value > counter.peak:
                counter.peak = counter.value

    def __iter__(self) -> Iterator[Tuple[str, Counter]]:
        return iter(sorted(self._counters.items()))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}={c.value}" for name, c in sorted(self._counters.items())
        )
        return f"CounterRegistry({body})"


#: A default registry used when callers do not supply their own.  The
#: benchmark harness always creates private registries; the global one
#: exists so simple interactive use "just works".
GLOBAL_COUNTERS = CounterRegistry()
