"""Argument-validation helpers used throughout the library.

These raise built-in exception types (``ValueError``/``TypeError``) so
they behave like ordinary Python argument checking; library-level error
conditions use the hierarchy in :mod:`repro.errors` instead.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: Union[int, float], name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: Union[int, float], name: str) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_type(
    value: Any,
    types: Union[Type, Tuple[Type, ...]],
    name: str,
) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__}"
        )
