"""Small general-purpose utilities shared across the library."""

from repro.util.bitset import Bitset
from repro.util.counters import Counter, CounterRegistry, CounterSnapshot
from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
    require_type,
)

__all__ = [
    "Bitset",
    "Counter",
    "CounterRegistry",
    "CounterSnapshot",
    "require",
    "require_non_negative",
    "require_positive",
    "require_type",
]
