"""Small general-purpose utilities shared across the library."""

from repro.util.bitset import Bitset
from repro.util.counters import Counter, CounterRegistry, CounterSnapshot
from repro.util.obs import (
    NULL_OBSERVER,
    Event,
    EventLog,
    GaugeTimeline,
    Observer,
    ObsSnapshot,
    SpanStats,
    metrics_records,
    prometheus_text,
    write_metrics,
)
from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
    require_type,
)

__all__ = [
    "Bitset",
    "Counter",
    "CounterRegistry",
    "CounterSnapshot",
    "Event",
    "EventLog",
    "GaugeTimeline",
    "NULL_OBSERVER",
    "ObsSnapshot",
    "Observer",
    "SpanStats",
    "metrics_records",
    "prometheus_text",
    "write_metrics",
    "require",
    "require_non_negative",
    "require_positive",
    "require_type",
]
