"""Structured observability: spans, gauges, events, metrics export.

The paper's experimental argument rests on *measuring* the join
strategies -- distance calculations, queue sizes, node I/O (Table 1,
Figures 6-10) -- and the parallel engine additionally needs to know
*where* wall-clock time goes (partitioning vs. worker joins vs. the
order-preserving merge).  The flat :mod:`repro.util.counters` registry
answers "how much work"; this module answers "how long, when, and in
which phase":

- :class:`Observer` is the per-execution recording surface: named
  **spans** (monotonic-clock phase timers), float **gauges** with a
  bounded timeline of samples, and a bounded **event log**;
- :class:`ObsSnapshot` is the frozen, picklable view that parallel
  workers ship back with every result batch (next to their
  :class:`~repro.util.counters.CounterSnapshot`) and the parent merges;
- :func:`metrics_records` / :func:`write_metrics` serialize counters
  and observations into one machine-readable schema: JSON-lines plus a
  Prometheus-style text dump, shared by the CLI's ``--metrics`` flag,
  ``EXPLAIN ANALYZE``, and the benchmark harness.

Overhead discipline: every hot-path hook is gated on
:attr:`Observer.enabled` (a plain attribute read) and the shared
:data:`NULL_OBSERVER` makes the disabled path allocation-free, so
instrumented drivers stay within noise of uninstrumented ones when
observability is off.  ``sample_every`` additionally thins gauge
timelines in hot loops when it *is* on.
"""

from __future__ import annotations

import io
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

from repro.util.counters import CounterRegistry, CounterSnapshot

__all__ = [
    "Event",
    "EventLog",
    "GaugeTimeline",
    "NULL_OBSERVER",
    "ObsSnapshot",
    "Observer",
    "SPAN_EVENT",
    "SpanStats",
    "metrics_records",
    "prometheus_text",
    "write_metrics",
]

#: Default bound on retained events (the log never grows past this).
DEFAULT_MAX_EVENTS = 4096

#: Default bound on retained gauge timeline samples per gauge.
DEFAULT_MAX_SAMPLES = 256

#: Event-log retention policies: keep the *first* N events (an
#: execution prefix, what a trace reader wants) or the *last* N
#: (a flight-recorder ring buffer, what a crash reader wants).
KEEP_FIRST = "first"
KEEP_LAST = "ring"

#: Event kind used for per-occurrence span records (``trace_spans``):
#: the event's ``t`` is the span *end* offset and its ``value`` the
#: duration in seconds, so ``t - value`` recovers the start.
SPAN_EVENT = "span"


class SpanStats:
    """Aggregate timing of one named phase: count / total / min / max."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"SpanStats({self.name}: n={self.count}, "
            f"total={self.total_s:.6f}s)"
        )


class _Span:
    """A live span: context manager recording into one SpanStats."""

    __slots__ = ("_stats", "_start")

    def __init__(self, stats: SpanStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stats.record(time.perf_counter() - self._start)


class _TracedSpan:
    """A span that additionally logs each occurrence as an event.

    The event is appended at span *end* with the duration as its value
    (kind :data:`SPAN_EVENT`), so a trace exporter can reconstruct the
    start as ``t - value``.  Only used when the owning observer was
    created with ``trace_spans=True`` -- the aggregate-only path stays
    one allocation per span, as before.
    """

    __slots__ = ("_stats", "_events", "_t0", "_start")

    def __init__(
        self, stats: SpanStats, events: "EventLog", t0: float
    ) -> None:
        self._stats = stats
        self._events = events
        self._t0 = t0
        self._start = 0.0

    def __enter__(self) -> "_TracedSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = time.perf_counter()
        duration = end - self._start
        self._stats.record(duration)
        self._events.append(
            end - self._t0, SPAN_EVENT, self._stats.name, duration
        )


class _NullSpan:
    """Allocation-free no-op span used when observation is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class GaugeTimeline:
    """A float-valued gauge with its last value, extrema, and a bounded
    timeline of ``(t, value)`` samples (``t`` is seconds since the
    observer was created, monotonic)."""

    __slots__ = ("name", "last", "min_value", "max_value", "count",
                 "samples")

    def __init__(
        self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES
    ) -> None:
        self.name = name
        self.last = 0.0
        self.min_value = float("inf")
        self.max_value = float("-inf")
        self.count = 0
        self.samples: Deque[Tuple[float, float]] = deque(
            maxlen=max_samples
        )

    def record(self, t: float, value: float) -> None:
        self.last = value
        self.count += 1
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self.samples.append((t, value))

    def __repr__(self) -> str:
        return f"GaugeTimeline({self.name}={self.last:g}, n={self.count})"


class Event(NamedTuple):
    """One recorded occurrence: sequence number, time offset, kind,
    free-form label, and a numeric value (distance, size, ...)."""

    seq: int
    t: float
    kind: str
    label: str
    value: float


class EventLog:
    """A bounded event log.

    ``policy="first"`` keeps the first ``max_events`` events (an
    execution prefix -- what the join tracer wants); ``policy="ring"``
    keeps the last ``max_events`` (a flight recorder).  ``total``
    always counts every append, retained or not.
    """

    __slots__ = ("max_events", "policy", "total", "_events")

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        policy: str = KEEP_FIRST,
    ) -> None:
        if policy not in (KEEP_FIRST, KEEP_LAST):
            raise ValueError(
                f"policy must be {KEEP_FIRST!r} or {KEEP_LAST!r}, "
                f"got {policy!r}"
            )
        self.max_events = max_events
        self.policy = policy
        self.total = 0
        self._events: Deque[Event] = deque(
            maxlen=max_events if policy == KEEP_LAST else None
        )

    def append(
        self, t: float, kind: str, label: str = "", value: float = 0.0
    ) -> None:
        seq = self.total
        self.total += 1
        if self.policy == KEEP_FIRST and len(self._events) >= \
                self.max_events:
            return
        self._events.append(Event(seq, t, kind, label, value))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, index):
        return list(self._events)[index]

    def as_list(self) -> List[Event]:
        return list(self._events)


@dataclass
class ObsSnapshot:
    """A frozen, picklable view of an observer's measurements.

    ``spans`` maps phase name to ``(count, total_s, min_s, max_s)``;
    ``gauges`` maps gauge name to ``(count, last, min, max)``.  Like
    :class:`~repro.util.counters.CounterSnapshot`, snapshots are plain
    dataclasses of dicts so they pickle cheaply across process
    boundaries; parallel workers ship cumulative snapshots and the
    parent merges per-batch deltas (:meth:`delta_from`).
    """

    spans: Dict[str, Tuple[int, float, float, float]] = field(
        default_factory=dict
    )
    gauges: Dict[str, Tuple[int, float, float, float]] = field(
        default_factory=dict
    )

    def span_seconds(self, name: str) -> float:
        """Total seconds spent in phase ``name`` (0.0 if never timed)."""
        entry = self.spans.get(name)
        return entry[1] if entry is not None else 0.0

    def span_count(self, name: str) -> int:
        entry = self.spans.get(name)
        return entry[0] if entry is not None else 0

    def gauge_last(self, name: str) -> Optional[float]:
        entry = self.gauges.get(name)
        return entry[1] if entry is not None else None

    def delta_from(self, earlier: "ObsSnapshot") -> "ObsSnapshot":
        """The increment between ``earlier`` and this snapshot.

        Span counts and totals subtract (clamped at zero, mirroring
        the reset guard of
        :meth:`~repro.util.counters.CounterSnapshot.delta_from`);
        min/max keep this snapshot's values -- extrema are levels, not
        flows.  Gauges keep this snapshot's state with the sample-count
        increment.
        """
        spans: Dict[str, Tuple[int, float, float, float]] = {}
        for name, (count, total, mn, mx) in self.spans.items():
            prev = earlier.spans.get(name)
            if prev is None:
                spans[name] = (count, total, mn, mx)
                continue
            d_count = count - prev[0]
            d_total = total - prev[1]
            if d_count < 0 or d_total < 0:
                # The contributor was reset mid-run: everything it now
                # reports happened since the reset.
                d_count, d_total = count, total
            if d_count or d_total:
                spans[name] = (d_count, d_total, mn, mx)
        gauges: Dict[str, Tuple[int, float, float, float]] = {}
        for name, (count, last, mn, mx) in self.gauges.items():
            prev = earlier.gauges.get(name)
            d_count = count - prev[0] if prev is not None else count
            if d_count < 0:
                d_count = count
            if prev is None or d_count:
                gauges[name] = (d_count, last, mn, mx)
        return ObsSnapshot(spans=spans, gauges=gauges)

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}={total:.4f}s/{count}"
            for name, (count, total, __, ___) in sorted(
                self.spans.items()
            )
        )
        return f"ObsSnapshot({body})"


class Observer:
    """The recording surface handed to instrumented components.

    Parameters
    ----------
    enabled:
        When False every hook is a near-free no-op; components are
        expected to additionally gate *their* hot paths on this
        attribute so a disabled observer costs one attribute read.
    sample_every:
        Record only every ``n``-th gauge sample (spans and events are
        always recorded when enabled; gauges are the hot-loop signal).
    max_events, event_policy:
        Bound and retention policy of the event log.
    max_samples:
        Bound on each gauge's retained timeline.
    trace_spans:
        Also log every span occurrence as a :data:`SPAN_EVENT` event
        (end offset + duration), the raw material of
        :mod:`repro.util.tracing`'s Chrome trace export.  Off by
        default -- aggregate-only spans stay cheaper and the event
        log bound is then free for the caller's own events.
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_every: int = 1,
        max_events: int = DEFAULT_MAX_EVENTS,
        event_policy: str = KEEP_FIRST,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        trace_spans: bool = False,
    ) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every!r}"
            )
        self.enabled = enabled
        self.sample_every = sample_every
        self.trace_spans = trace_spans
        #: Optional trace identity (a ``repro.util.telemetry
        #: .TraceContext``) stamped by request-scoped owners (the
        #: service scheduler) so exporters can tag this observer's
        #: spans with the owning trace.  Untyped on purpose: obs must
        #: not import telemetry.
        self.trace_ctx: Optional[Any] = None
        self._max_samples = max_samples
        self._spans: Dict[str, SpanStats] = {}
        self._gauges: Dict[str, GaugeTimeline] = {}
        self._gauge_ticks: Dict[str, int] = {}
        self.events = EventLog(max_events=max_events, policy=event_policy)
        self._t0 = time.perf_counter()

    @property
    def t0(self) -> float:
        """The ``time.perf_counter`` reading at which this observer's
        clock started (event/gauge ``t`` offsets are relative to it).
        Exposed so trace stitchers can align observer timelines with a
        request-scoped clock."""
        return self._t0

    # -- spans ---------------------------------------------------------

    def span(self, name: str):
        """A context manager timing one occurrence of phase ``name``."""
        if not self.enabled:
            return _NULL_SPAN
        if self.trace_spans:
            return _TracedSpan(
                self._span_stats(name), self.events, self._t0
            )
        return _Span(self._span_stats(name))

    def _span_stats(self, name: str) -> SpanStats:
        stats = self._spans.get(name)
        if stats is None:
            stats = SpanStats(name)
            self._spans[name] = stats
        return stats

    def record_span(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold an externally measured duration into phase ``name``."""
        if not self.enabled:
            return
        stats = self._span_stats(name)
        if self.trace_spans:
            # Treat "now" as the external measurement's end.
            self.events.append(
                time.perf_counter() - self._t0, SPAN_EVENT, name,
                seconds,
            )
        if count == 1:
            stats.record(seconds)
            return
        stats.count += count
        stats.total_s += seconds
        if seconds > stats.max_s:
            stats.max_s = seconds

    def span_seconds(self, name: str) -> float:
        stats = self._spans.get(name)
        return stats.total_s if stats is not None else 0.0

    def span_count(self, name: str) -> int:
        stats = self._spans.get(name)
        return stats.count if stats is not None else 0

    # -- gauges --------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Record a float level for ``name`` (subject to sampling)."""
        if not self.enabled:
            return
        if self.sample_every > 1:
            tick = self._gauge_ticks.get(name, 0)
            self._gauge_ticks[name] = tick + 1
            if tick % self.sample_every:
                return
        timeline = self._gauges.get(name)
        if timeline is None:
            timeline = GaugeTimeline(name, self._max_samples)
            self._gauges[name] = timeline
        timeline.record(time.perf_counter() - self._t0, value)

    def gauge_value(self, name: str) -> Optional[float]:
        """The gauge's most recent value (None if never recorded)."""
        timeline = self._gauges.get(name)
        return timeline.last if timeline is not None else None

    def gauge_timeline(self, name: str) -> List[Tuple[float, float]]:
        timeline = self._gauges.get(name)
        return list(timeline.samples) if timeline is not None else []

    def gauge_names(self) -> List[str]:
        """Sorted names of every gauge recorded so far."""
        return sorted(self._gauges)

    # -- events --------------------------------------------------------

    def event(self, kind: str, label: str = "", value: float = 0.0) -> None:
        """Append one event to the bounded log."""
        if not self.enabled:
            return
        self.events.append(
            time.perf_counter() - self._t0, kind, label, value
        )

    # -- snapshots / merging ------------------------------------------

    def snapshot(self) -> ObsSnapshot:
        """Spans and gauges as a picklable value object."""
        return ObsSnapshot(
            spans={
                name: (s.count, s.total_s, s.min_s, s.max_s)
                for name, s in self._spans.items()
            },
            gauges={
                name: (g.count, g.last, g.min_value, g.max_value)
                for name, g in self._gauges.items()
            },
        )

    def merge(self, other: Union["Observer", ObsSnapshot]) -> None:
        """Fold another observer's (or snapshot's) measurements in.

        Span counts and totals add; extrema combine by min/max.  Gauge
        merges keep the other side's last value (it is newer by
        construction in the worker-batch flow) and combine extrema.
        """
        snap = other.snapshot() if isinstance(other, Observer) else other
        for name, (count, total, mn, mx) in snap.spans.items():
            stats = self._span_stats(name)
            stats.count += count
            stats.total_s += total
            if mn < stats.min_s:
                stats.min_s = mn
            if mx > stats.max_s:
                stats.max_s = mx
        for name, (count, last, mn, mx) in snap.gauges.items():
            timeline = self._gauges.get(name)
            if timeline is None:
                timeline = GaugeTimeline(name, self._max_samples)
                self._gauges[name] = timeline
            timeline.count += count
            timeline.last = last
            if mn < timeline.min_value:
                timeline.min_value = mn
            if mx > timeline.max_value:
                timeline.max_value = mx

    def reset(self) -> None:
        """Drop every recorded span, gauge, and event."""
        self._spans.clear()
        self._gauges.clear()
        self._gauge_ticks.clear()
        self.events = EventLog(
            max_events=self.events.max_events,
            policy=self.events.policy,
        )
        self._t0 = time.perf_counter()

    def __repr__(self) -> str:
        return (
            f"Observer(enabled={self.enabled}, "
            f"spans={len(self._spans)}, gauges={len(self._gauges)}, "
            f"events={self.events.total})"
        )


#: The shared disabled observer: instrumented components default to it
#: so uninstrumented call sites pay one attribute read.  Never enable
#: it in place -- create a private :class:`Observer` instead.
NULL_OBSERVER = Observer(enabled=False)


# ----------------------------------------------------------------------
# metrics export (JSON-lines + Prometheus-style text)
# ----------------------------------------------------------------------


def _counter_snapshot(
    counters: Union[CounterRegistry, CounterSnapshot, None]
) -> Optional[CounterSnapshot]:
    if counters is None:
        return None
    if isinstance(counters, CounterRegistry):
        return counters.full_snapshot()
    return counters


def _obs_snapshot(
    obs: Union[Observer, ObsSnapshot, None]
) -> Optional[ObsSnapshot]:
    if obs is None:
        return None
    if isinstance(obs, Observer):
        return obs.snapshot()
    return obs


def metrics_records(
    counters: Union[CounterRegistry, CounterSnapshot, None] = None,
    obs: Union[Observer, ObsSnapshot, None] = None,
    labels: Optional[Mapping[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Serialize counters and observations into flat metric records.

    The shared schema -- one dict per metric, stable keys::

        {"metric": "dist_calcs", "type": "counter", "value": 123,
         "labels": {...}}
        {"metric": "queue_size", "type": "peak", "value": 87, ...}
        {"metric": "parallel.merge", "type": "span", "count": 12,
         "seconds": 0.041, "min_s": ..., "max_s": ..., ...}
        {"metric": "pq_adaptive_dt", "type": "gauge", "value": 0.37,
         "count": 1, "min": 0.37, "max": 0.37, ...}

    Everything that emits metrics (CLI ``--metrics``, ``EXPLAIN
    ANALYZE``, the benchmark harness) goes through this function so the
    schema cannot drift between surfaces.
    """
    label_dict = dict(labels) if labels else {}
    records: List[Dict[str, Any]] = []
    counter_snap = _counter_snapshot(counters)
    if counter_snap is not None:
        for name in sorted(counter_snap.values):
            # Gauge-style counters (observe-only, e.g. queue_size)
            # carry a zero total; their signal is the peak record.
            if counter_snap.values[name]:
                records.append({
                    "metric": name,
                    "type": "counter",
                    "value": counter_snap.values[name],
                    "labels": label_dict,
                })
        for name in sorted(counter_snap.peaks):
            if counter_snap.peaks[name]:
                records.append({
                    "metric": name,
                    "type": "peak",
                    "value": counter_snap.peaks[name],
                    "labels": label_dict,
                })
    obs_snap = _obs_snapshot(obs)
    if obs_snap is not None:
        for name in sorted(obs_snap.spans):
            count, total, mn, mx = obs_snap.spans[name]
            records.append({
                "metric": name,
                "type": "span",
                "count": count,
                "seconds": total,
                "min_s": mn if mn != float("inf") else 0.0,
                "max_s": mx,
                "labels": label_dict,
            })
        for name in sorted(obs_snap.gauges):
            count, last, mn, mx = obs_snap.gauges[name]
            records.append({
                "metric": name,
                "type": "gauge",
                "value": last,
                "count": count,
                "min": mn if mn != float("inf") else last,
                "max": mx if mx != float("-inf") else last,
                "labels": label_dict,
            })
    return records


def _prom_name(metric: str, type_: str) -> str:
    base = "repro_" + "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in metric
    )
    if type_ == "peak":
        return base + "_peak"
    return base


def _prom_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and line feed must be written as ``\\\\``,
    ``\\"`` and ``\\n`` inside the quoted value."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_prom_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def prometheus_text(records: Iterable[Mapping[str, Any]]) -> str:
    """Render metric records as a Prometheus-style text exposition.

    Counters become ``repro_<name>`` counters, peaks and gauges become
    gauges, spans become a ``_seconds`` counter plus a ``_count``
    counter (the classic summary-lite pair).
    """
    out = io.StringIO()
    seen_types: Dict[str, str] = {}

    def emit(name: str, prom_type: str, labels: Mapping[str, Any],
             value: Any) -> None:
        if seen_types.get(name) != prom_type:
            out.write(f"# TYPE {name} {prom_type}\n")
            seen_types[name] = prom_type
        out.write(f"{name}{_prom_labels(labels)} {value}\n")

    for record in records:
        metric = str(record.get("metric", ""))
        type_ = str(record.get("type", "counter"))
        labels = record.get("labels", {}) or {}
        if type_ == "span":
            base = _prom_name(metric, type_)
            emit(base + "_seconds", "counter", labels,
                 record.get("seconds", 0.0))
            emit(base + "_count", "counter", labels,
                 record.get("count", 0))
        elif type_ in ("gauge", "peak"):
            emit(_prom_name(metric, type_), "gauge", labels,
                 record.get("value", 0))
        else:
            emit(_prom_name(metric, type_), "counter", labels,
                 record.get("value", 0))
    return out.getvalue()


def write_metrics(
    path: str,
    counters: Union[CounterRegistry, CounterSnapshot, None] = None,
    obs: Union[Observer, ObsSnapshot, None] = None,
    labels: Optional[Mapping[str, Any]] = None,
    records: Optional[List[Dict[str, Any]]] = None,
    append: bool = False,
) -> List[Dict[str, Any]]:
    """Write metrics as JSON-lines to ``path`` and a Prometheus-style
    dump to ``path + ".prom"``; returns the records written.

    Pass prebuilt ``records`` to write several executions' worth in one
    schema (the benchmark harness does), or ``counters``/``obs`` to
    serialize one execution.  ``append`` adds JSON-lines to an existing
    file (the ``.prom`` dump is always rewritten whole -- Prometheus
    expositions are not appendable).
    """
    if records is None:
        records = metrics_records(counters, obs, labels)
    mode = "a" if append else "w"
    with open(path, mode) as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    all_records = records
    if append:
        all_records = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    all_records.append(json.loads(line))
    with open(path + ".prom", "w") as handle:
        handle.write(prometheus_text(all_records))
    return records
