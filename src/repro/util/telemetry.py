"""Request-scoped tracing and certified progress estimation.

The paper's incremental joins have a property most query engines have
to approximate: the operator's *entire* state is its priority queue,
and the queue-head distance is monotonically non-decreasing (ascending
mode).  That gives the serving layer two things for free:

- a **certified progress signal** -- pairs emitted toward ``STOP AFTER
  k`` is a provable lower bound on the completed fraction, and the
  head distance's position inside the spec's ``[dmin, dmax]`` range is
  a natural (distribution-dependent) estimate;
- a **resumable timeline** -- because sessions suspend to a cursor and
  resume later, a request's trace must survive pickling and re-anchor
  its clock without time running backwards.

This module supplies both halves:

- :class:`TraceContext` -- W3C ``traceparent`` parsing/minting, the
  identity that ties HTTP request, scheduler quanta, operator spans,
  and parallel-worker snapshots into *one* trace;
- :class:`RequestTelemetry` -- a bounded, picklable span recorder with
  automatic parentage (a context-manager stack), a monotone clock that
  survives suspend/resume (``state()`` / ``restore()``), and export
  helpers (:func:`span_tree`, :func:`stitched_records`,
  :func:`chrome_trace_events`) that graft per-operator
  :class:`~repro.util.obs.Observer` span events and per-worker
  :class:`~repro.util.obs.ObsSnapshot` aggregates into the request's
  span tree;
- :class:`ProgressEstimator` -- folds an operator's raw
  ``progress_signals()`` dict into a
  ``(lower_bound, estimate, phase)`` :class:`ProgressReport` whose
  lower bound is *certified*: it ratchets (never decreases, including
  across pickled suspend/resume) and never exceeds the true completed
  fraction.

Overhead discipline mirrors :mod:`repro.util.obs`: every hook gates on
``enabled`` (one attribute read), :data:`NULL_TELEMETRY` and its shared
null span make the disabled path allocation-free, and nothing in this
module runs on the operator hot path -- the scheduler samples once per
quantum, not once per pair.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.util.obs import ObsSnapshot, Observer, SPAN_EVENT

__all__ = [
    "NULL_TELEMETRY",
    "ProgressEstimator",
    "ProgressReport",
    "RequestTelemetry",
    "SpanRecord",
    "TraceContext",
    "chrome_trace_events",
    "new_span_id",
    "new_trace_id",
    "span_tree",
    "stitched_records",
]

#: The only ``traceparent`` version we emit (and the current W3C one).
TRACEPARENT_VERSION = "00"

#: Envelope identifiers for pickled telemetry / progress state.
TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_VERSION = 1
PROGRESS_FORMAT = "repro-progress"
PROGRESS_VERSION = 1

#: Default bound on retained span records per request.
DEFAULT_MAX_SPANS = 512

#: Default bound on retained point events per request.
DEFAULT_MAX_TEL_EVENTS = 256

#: Slack (seconds) when deciding span containment during grafting --
#: observer span ends and telemetry span ends are separate clock reads.
_CONTAIN_EPS = 5e-4

_HEX_DIGITS = frozenset("0123456789abcdef")


def new_trace_id() -> str:
    """A random 32-hex-digit (128-bit) trace id."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A random 16-hex-digit (64-bit) span id."""
    return os.urandom(8).hex()


def _valid_id(value: str, width: int) -> bool:
    """Hex id of exactly ``width`` digits, not all zeros (the W3C
    formats reserve the all-zero id as "invalid")."""
    return (
        len(value) == width
        and all(ch in _HEX_DIGITS for ch in value)
        and value.count("0") != width
    )


@dataclass(frozen=True)
class TraceContext:
    """The identity of one distributed trace.

    ``trace_id`` names the whole trace; ``span_id`` is *this* request's
    root span; ``parent_id`` is the caller's span (empty when the trace
    was minted here rather than propagated in).
    """

    trace_id: str
    span_id: str
    parent_id: str = ""

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context (no upstream caller)."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a W3C ``traceparent`` header into a child context.

        The incoming span id becomes our ``parent_id`` and a fresh
        ``span_id`` is minted for the local root span, per the spec's
        propagation model.  Returns ``None`` on anything malformed --
        the caller then mints a new trace instead of failing the
        request.
        """
        if not header:
            return None
        parts = header.strip().lower().split("-")
        if len(parts) < 4:
            return None
        version, trace_id, parent_span, flags = parts[0], parts[1], parts[2], parts[3]
        if len(version) != 2 or not all(ch in _HEX_DIGITS for ch in version):
            return None
        if version == "ff":
            return None
        if not _valid_id(trace_id, 32) or not _valid_id(parent_span, 16):
            return None
        if len(flags) != 2 or not all(ch in _HEX_DIGITS for ch in flags):
            return None
        return cls(
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent_span,
        )

    def to_traceparent(self) -> str:
        """Render as an outgoing ``traceparent`` header (sampled)."""
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-01"

    def as_dict(self) -> Dict[str, str]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


@dataclass
class SpanRecord:
    """One finished span: times are seconds on the request's monotone
    clock (0.0 = request admission, surviving suspend/resume)."""

    name: str
    span_id: str
    parent_id: str
    t0: float
    dur: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t0": self.t0,
            "dur": self.dur,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            span_id=str(data["span_id"]),
            parent_id=str(data.get("parent_id", "")),
            t0=float(data["t0"]),
            dur=float(data["dur"]),
            attrs=dict(data.get("attrs", {})),
        )


class _TelSpan:
    """A live telemetry span: context manager appending a SpanRecord."""

    __slots__ = ("_tel", "_name", "_attrs", "span_id", "_parent_id",
                 "_start")

    def __init__(
        self, tel: "RequestTelemetry", name: str, attrs: Dict[str, Any]
    ) -> None:
        self._tel = tel
        self._name = name
        self._attrs = attrs
        self.span_id = ""
        self._parent_id = ""
        self._start = 0.0

    def __enter__(self) -> "_TelSpan":
        tel = self._tel
        stack = tel._stack
        self._parent_id = stack[-1] if stack else tel.ctx.span_id
        self.span_id = new_span_id()
        stack.append(self.span_id)
        self._start = tel.now()
        return self

    def set(self, **attrs: Any) -> "_TelSpan":
        """Attach attributes to the span while it is open."""
        self._attrs.update(attrs)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        tel = self._tel
        end = tel.now()
        if tel._stack and tel._stack[-1] == self.span_id:
            tel._stack.pop()
        tel._record(SpanRecord(
            name=self._name,
            span_id=self.span_id,
            parent_id=self._parent_id,
            t0=self._start,
            dur=end - self._start,
            attrs=self._attrs,
        ))


class _NullTelSpan:
    """Allocation-free no-op span for disabled telemetry."""

    __slots__ = ()
    span_id = ""

    def __enter__(self) -> "_NullTelSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **attrs: Any) -> "_NullTelSpan":
        return self


_NULL_TEL_SPAN = _NullTelSpan()


class RequestTelemetry:
    """Bounded request-scoped span recorder with a resumable clock.

    Times are seconds since admission on a monotone clock that
    survives pickling: ``state()`` captures the elapsed offset and
    ``restore()`` re-anchors ``time.perf_counter`` so spans recorded
    after a resume always come later than spans recorded before the
    suspend, even across processes.

    Parentage is automatic: nested ``with tel.span(...)`` blocks form
    a stack, the innermost open span parents the next one, and
    top-level spans parent to the request root (``ctx.span_id``).
    """

    def __init__(
        self,
        ctx: Optional[TraceContext] = None,
        enabled: bool = True,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_events: int = DEFAULT_MAX_TEL_EVENTS,
    ) -> None:
        self.ctx = ctx if ctx is not None else TraceContext.mint()
        self.enabled = enabled
        self.max_spans = max_spans
        self.max_events = max_events
        self.spans: List[SpanRecord] = []
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []
        self.dropped = 0
        self._stack: List[str] = []
        self._base = 0.0
        self._t0 = time.perf_counter()

    def now(self) -> float:
        """Seconds since request admission (monotone across resume)."""
        return self._base + (time.perf_counter() - self._t0)

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A context manager recording one span named ``name``."""
        if not self.enabled:
            return _NULL_TEL_SPAN
        return _TelSpan(self, name, attrs)

    def _record(self, record: SpanRecord) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(record)

    def record_span(
        self,
        name: str,
        t0: float,
        dur: float,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Append an externally measured span; returns its span id."""
        if not self.enabled:
            return ""
        sid = span_id if span_id else new_span_id()
        self._record(SpanRecord(
            name=name,
            span_id=sid,
            parent_id=parent_id if parent_id else self.ctx.span_id,
            t0=t0,
            dur=dur,
            attrs=dict(attrs) if attrs else {},
        ))
        return sid

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event on the request timeline."""
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append((self.now(), name, attrs))

    # -- suspend / resume ---------------------------------------------

    def state(self) -> Dict[str, Any]:
        """A picklable snapshot (plain dicts/lists only)."""
        return {
            "format": TELEMETRY_FORMAT,
            "version": TELEMETRY_VERSION,
            "trace_id": self.ctx.trace_id,
            "span_id": self.ctx.span_id,
            "parent_id": self.ctx.parent_id,
            "elapsed": self.now(),
            "dropped": self.dropped,
            "max_spans": self.max_spans,
            "max_events": self.max_events,
            "spans": [record.as_dict() for record in self.spans],
            "events": [
                [t, name, dict(attrs)] for t, name, attrs in self.events
            ],
        }

    @classmethod
    def restore(cls, state: Mapping[str, Any]) -> "RequestTelemetry":
        """Rebuild from :meth:`state`, re-anchoring the clock so time
        keeps moving forward from the suspended elapsed offset."""
        if state.get("format") != TELEMETRY_FORMAT:
            raise ValueError(
                f"not a telemetry state: format={state.get('format')!r}"
            )
        tel = cls(
            ctx=TraceContext(
                trace_id=str(state["trace_id"]),
                span_id=str(state["span_id"]),
                parent_id=str(state.get("parent_id", "")),
            ),
            enabled=True,
            max_spans=int(state.get("max_spans", DEFAULT_MAX_SPANS)),
            max_events=int(
                state.get("max_events", DEFAULT_MAX_TEL_EVENTS)
            ),
        )
        tel.spans = [
            SpanRecord.from_dict(item) for item in state.get("spans", [])
        ]
        tel.events = [
            (float(item[0]), str(item[1]), dict(item[2]))
            for item in state.get("events", [])
        ]
        tel.dropped = int(state.get("dropped", 0))
        tel._base = float(state.get("elapsed", 0.0))
        tel._t0 = time.perf_counter()
        return tel

    def __repr__(self) -> str:
        return (
            f"RequestTelemetry(trace={self.ctx.trace_id[:8]}..., "
            f"spans={len(self.spans)}, dropped={self.dropped})"
        )


#: Shared disabled telemetry: the scheduler defaults to it so the
#: telemetry-off path costs one attribute read and zero allocations.
NULL_TELEMETRY = RequestTelemetry(
    ctx=TraceContext(trace_id="0" * 32, span_id="0" * 16),
    enabled=False,
    max_spans=0,
    max_events=0,
)


# ----------------------------------------------------------------------
# stitching: observer spans and worker snapshots into the request tree
# ----------------------------------------------------------------------


def _containing_parent(
    records: Sequence[SpanRecord], start: float, end: float
) -> Optional[SpanRecord]:
    """The tightest recorded span containing ``[start, end]`` (with
    clock-skew slack), or None."""
    best: Optional[SpanRecord] = None
    for record in records:
        if (record.t0 <= start + _CONTAIN_EPS
                and record.t0 + record.dur >= end - _CONTAIN_EPS):
            if best is None or record.dur < best.dur:
                best = record
    return best


def stitched_records(
    tel: RequestTelemetry,
    observers: Iterable[Tuple[Observer, float, str]] = (),
    worker_tracks: Iterable[
        Tuple[Mapping[int, ObsSnapshot], Mapping[int, str], float,
              Optional[str]]
    ] = (),
    exclude_prefixes: Tuple[str, ...] = (),
) -> List[SpanRecord]:
    """The request's span records plus grafted operator/worker spans.

    Pure function of its inputs (never mutates ``tel``), so debug
    endpoints and slow-query dumps can stitch repeatedly without
    duplicating spans.

    ``observers`` entries are ``(obs, anchor, prefix)``: an operator
    :class:`Observer` recorded with ``trace_spans=True``, the telemetry
    time at which its clock started (its t=0), and a name prefix.  Each
    of its :data:`~repro.util.obs.SPAN_EVENT` entries becomes a child
    of the tightest telemetry span containing it (quantum spans, in the
    service flow), falling back to the request root.

    ``worker_tracks`` entries are ``(task_obs, task_workers, anchor,
    parent_id)`` -- the per-task snapshot/worker maps a
    :class:`~repro.parallel.join.ParallelDistanceJoin` exposes.
    Snapshots carry totals, not per-occurrence times, so each worker
    renders as one synthetic span with its stage totals laid end to
    end beneath it (a time budget, not a literal schedule).

    ``exclude_prefixes`` drops observer span labels the telemetry
    layer already records itself (the scheduler's ``service.*`` spans
    land in both surfaces); excluding them here keeps the tree free of
    duplicates.
    """
    base = list(tel.spans)
    out = list(base)
    for obs, anchor, prefix in observers:
        for event in obs.events:
            if event.kind != SPAN_EVENT:
                continue
            if exclude_prefixes and event.label.startswith(
                    exclude_prefixes):
                continue
            end = anchor + event.t
            start = end - event.value
            if start < anchor:
                start = anchor
            parent = _containing_parent(base, start, end)
            out.append(SpanRecord(
                name=prefix + event.label,
                span_id=new_span_id(),
                parent_id=(
                    parent.span_id if parent is not None
                    else tel.ctx.span_id
                ),
                t0=start,
                dur=event.value,
            ))
    for task_obs, task_workers, anchor, parent_id in worker_tracks:
        by_worker: Dict[str, List[ObsSnapshot]] = {}
        for task_id, snapshot in task_obs.items():
            label = task_workers.get(task_id, "worker-?")
            by_worker.setdefault(label, []).append(snapshot)
        for label in sorted(by_worker):
            merged = Observer(max_events=0)
            for snapshot in by_worker[label]:
                merged.merge(snapshot)
            snap = merged.snapshot()
            total = sum(entry[1] for entry in snap.spans.values())
            worker_sid = new_span_id()
            out.append(SpanRecord(
                name=f"worker:{label}",
                span_id=worker_sid,
                parent_id=(
                    parent_id if parent_id else tel.ctx.span_id
                ),
                t0=anchor,
                dur=total,
                attrs={"tasks": len(by_worker[label])},
            ))
            cursor = anchor
            for name in sorted(snap.spans):
                count, stage_total, _mn, _mx = snap.spans[name]
                out.append(SpanRecord(
                    name=name,
                    span_id=new_span_id(),
                    parent_id=worker_sid,
                    t0=cursor,
                    dur=stage_total,
                    attrs={"count": count},
                ))
                cursor += stage_total
    return out


def span_tree(
    tel: RequestTelemetry,
    records: Optional[Sequence[SpanRecord]] = None,
) -> Dict[str, Any]:
    """The request as one nested JSON span tree rooted at the trace
    context.  Records whose parent is unknown (e.g. their parent span
    was dropped by the bound) reattach to the root, so the tree is
    always connected."""
    if records is None:
        records = tel.spans
    ordered = sorted(records, key=lambda r: (r.t0, r.dur))
    known = {record.span_id for record in ordered}
    known.add(tel.ctx.span_id)
    children: Dict[str, List[SpanRecord]] = {}
    for record in ordered:
        parent = record.parent_id
        if parent not in known or parent == record.span_id:
            parent = tel.ctx.span_id
        children.setdefault(parent, []).append(record)

    def node(record: SpanRecord) -> Dict[str, Any]:
        entry = record.as_dict()
        entry["children"] = [
            node(child) for child in children.get(record.span_id, [])
        ]
        return entry

    return {
        "name": "request",
        "trace_id": tel.ctx.trace_id,
        "span_id": tel.ctx.span_id,
        "parent_id": tel.ctx.parent_id,
        "t0": 0.0,
        "dur": tel.now(),
        "dropped_spans": tel.dropped,
        "events": [
            {"t": t, "name": name, "attrs": dict(attrs)}
            for t, name, attrs in tel.events
        ],
        "children": [
            node(record)
            for record in children.get(tel.ctx.span_id, [])
        ],
    }


def chrome_trace_events(
    tel: RequestTelemetry,
    records: Optional[Sequence[SpanRecord]] = None,
    pid: int = 1,
    tid: int = 1,
    process_name: str = "repro service",
) -> List[Dict[str, Any]]:
    """Chrome trace-event JSON for one request: the root span plus
    every record, each carrying trace/span/parent ids in ``args`` so
    Perfetto's flow queries can follow the tree."""
    from repro.util.tracing import (
        process_name_event,
        span_record_events,
        thread_name_event,
    )

    if records is None:
        records = tel.spans
    events: List[Dict[str, Any]] = [
        process_name_event(pid, process_name),
        thread_name_event(
            pid, tid, f"trace {tel.ctx.trace_id[:16]}"
        ),
        {
            "name": "request", "cat": "telemetry", "ph": "X",
            "ts": 0.0, "dur": tel.now() * 1e6,
            "pid": pid, "tid": tid,
            "args": tel.ctx.as_dict(),
        },
    ]
    events.extend(span_record_events(
        records, pid=pid, tid=tid, trace_id=tel.ctx.trace_id,
    ))
    for t, name, attrs in tel.events:
        events.append({
            "name": name, "cat": "telemetry", "ph": "i",
            "ts": t * 1e6, "pid": pid, "tid": tid, "s": "t",
            "args": dict(attrs, trace_id=tel.ctx.trace_id),
        })
    return events


# ----------------------------------------------------------------------
# certified progress estimation
# ----------------------------------------------------------------------


class ProgressReport(NamedTuple):
    """One progress reading.

    ``lower_bound`` is *certified*: provably ≤ the true completed
    fraction, and monotone non-decreasing across readings of the same
    estimator (including across pickled suspend/resume).  ``estimate``
    is the best guess (≥ the lower bound, ≤ 1.0) folding in the
    distance-range position and cost-model cardinality -- useful, but
    distribution-dependent.  ``phase`` is ``init`` / ``running`` /
    ``done``.
    """

    lower_bound: float
    estimate: float
    phase: str
    detail: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "lower_bound": self.lower_bound,
            "estimate": self.estimate,
            "phase": self.phase,
            "detail": dict(self.detail),
        }


def _distance_fraction(signals: Mapping[str, Any]) -> Optional[float]:
    """Position of the queue-head distance inside the spec's distance
    range, or None when the range is unbounded or the head unknown."""
    head = signals.get("head_distance")
    dmax = signals.get("max_distance")
    if head is None or dmax is None:
        return None
    try:
        head = float(head)
        dmax = float(dmax)
    except (TypeError, ValueError):
        return None
    if not math.isfinite(dmax):
        return None
    dmin = float(signals.get("min_distance") or 0.0)
    if dmax <= dmin:
        return None
    if signals.get("descending"):
        fraction = (dmax - head) / (dmax - dmin)
    else:
        fraction = (head - dmin) / (dmax - dmin)
    if fraction < 0.0:
        return 0.0
    if fraction > 1.0:
        return 1.0
    return fraction


class ProgressEstimator:
    """Certified progress for one incremental operator.

    The lower bound uses only facts the algorithm proves:

    - ``produced / max_pairs`` when the query carries ``STOP AFTER k``
      (the true total is ``min(k, available)`` ≤ ``k``, so the ratio
      never overstates);
    - 1.0 exactly when the operator reports ``done``.

    Everything distribution-dependent -- the head distance's position
    in ``[dmin, dmax]`` and the cost model's cardinality estimate
    (``total_hint``) -- only raises the *estimate*.  A ratcheting
    floor, persisted by :meth:`state` / :meth:`restore`, keeps the
    lower bound monotone across quantum boundaries and suspend/resume
    cycles.
    """

    def __init__(self, total_hint: Optional[float] = None) -> None:
        self.total_hint = (
            float(total_hint)
            if total_hint and total_hint > 0 else None
        )
        self._floor = 0.0

    @property
    def lower_bound(self) -> float:
        """The current certified floor (last reported lower bound)."""
        return self._floor

    def report(self, signals: Mapping[str, Any]) -> ProgressReport:
        produced = int(signals.get("produced") or 0)
        max_pairs = signals.get("max_pairs")
        done = bool(signals.get("done"))
        lower = self._floor
        if max_pairs:
            certified = produced / float(max_pairs)
            if certified > lower:
                lower = certified
        if done:
            lower = 1.0
        if lower > 1.0:
            lower = 1.0
        self._floor = lower

        detail: Dict[str, Any] = dict(signals)
        estimate = lower
        fraction = _distance_fraction(signals)
        if fraction is not None:
            detail["distance_fraction"] = fraction
            if fraction > estimate:
                estimate = fraction
        hint = self.total_hint
        if not hint:
            raw_hint = signals.get("total_hint")
            if raw_hint and raw_hint > 0:
                hint = float(raw_hint)
        if hint:
            detail["total_hint"] = hint
            hinted = produced / hint
            if hinted > estimate:
                estimate = hinted
        if estimate > 1.0:
            estimate = 1.0
        if done:
            estimate = 1.0

        if done:
            phase = "done"
        elif produced == 0:
            phase = "init"
        else:
            phase = "running"
        return ProgressReport(
            lower_bound=lower,
            estimate=estimate,
            phase=phase,
            detail=detail,
        )

    def state(self) -> Dict[str, Any]:
        return {
            "format": PROGRESS_FORMAT,
            "version": PROGRESS_VERSION,
            "floor": self._floor,
            "total_hint": self.total_hint,
        }

    @classmethod
    def restore(cls, state: Mapping[str, Any]) -> "ProgressEstimator":
        if state.get("format") != PROGRESS_FORMAT:
            raise ValueError(
                f"not a progress state: format={state.get('format')!r}"
            )
        estimator = cls(total_hint=state.get("total_hint"))
        estimator._floor = float(state.get("floor", 0.0))
        return estimator

    def __repr__(self) -> str:
        return (
            f"ProgressEstimator(floor={self._floor:.3f}, "
            f"total_hint={self.total_hint})"
        )
