"""The columnar (struct-of-arrays) mirror of a node's entry list.

An R-tree node stores a Python list of entry objects, each holding a
:class:`~repro.geometry.rectangle.Rect` of coordinate tuples -- ideal
for the object API, hostile to vectorization.  :func:`build` mirrors
one node's entries into contiguous ``float64`` arrays once; the node
caches the result until its entry list is mutated (see
``Node.entries_soa`` / ``Node.invalidate_soa``).

Only imported when numpy is available -- gate through
:func:`repro.kernels.build_entry_soa`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["EntrySoA", "build"]


class EntrySoA:
    """Columnar view of one node's entries.

    Attributes
    ----------
    n:
        Number of entries mirrored.
    lo, hi:
        ``(n, dim)`` float64 arrays of the entry rectangles' corners
        (``None`` when ``n == 0``).
    pts:
        ``(n, dim)`` float64 array of the entries' point payloads, or
        ``None`` unless *every* entry is a leaf entry whose object is a
        :class:`~repro.geometry.point.Point` of the node's
        dimensionality.  The object-distance kernel path requires it.
    items:
        Scratch cache for the vectorized expansion: child ``Item``
        lists keyed by item kind.  Items are immutable once built, so
        a node expanded against many partners reuses one list instead
        of reconstructing its children per expansion; the cache lives
        and dies with the SoA (node mutation invalidates both).
    """

    __slots__ = ("n", "lo", "hi", "pts", "items")

    def __init__(self, n: int, lo, hi, pts) -> None:
        self.n = n
        self.lo = lo
        self.hi = hi
        self.pts = pts
        self.items = {}

    def __repr__(self) -> str:
        kind = "points" if self.pts is not None else "rects"
        return f"EntrySoA(n={self.n}, {kind})"


def build(entries: Sequence) -> EntrySoA:
    """Mirror ``entries`` (leaf or branch) into an :class:`EntrySoA`."""
    n = len(entries)
    if n == 0:
        # A fresh instance per call, never a shared singleton: the
        # ``items`` scratch cache must live and die with *this*
        # node's SoA.  A process-global empty SoA would share one
        # items dict across every empty node of every tree, leaking
        # child Items between unrelated trees once a consumer caches
        # into it (delete-then-reinsert leaves nodes empty routinely).
        return EntrySoA(0, None, None, None)
    lo = np.array([e.rect.lo for e in entries], dtype=np.float64)
    hi = np.array([e.rect.hi for e in entries], dtype=np.float64)
    pts = _point_payloads(entries, lo.shape[1])
    return EntrySoA(n, lo, hi, pts)


def _point_payloads(entries: Sequence, dim: int) -> Optional[np.ndarray]:
    coords = []
    for e in entries:
        point_coords = getattr(e, "point_coords", None)
        if point_coords is None:
            return None  # branch entries (or foreign entry types)
        c = point_coords()
        if c is None or len(c) != dim:
            return None
        coords.append(c)
    return np.array(coords, dtype=np.float64)
