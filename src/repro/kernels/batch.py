"""Bit-reproducible batch MINDIST / MAXDIST / MINMAXDIST kernels.

Each kernel evaluates a rectangle bound (or an exact point distance)
for many item pairs in one numpy call and is **bit-identical** to the
scalar :class:`~repro.geometry.metrics.MinkowskiMetric` evaluation of
the same inputs.  That property is engineered, not hoped for:

- every arithmetic step (subtract, multiply, add, ``sqrt``) is an
  IEEE-754 correctly-rounded operation in both CPython and numpy, so
  identical operand order gives identical bits;
- per-dimension accumulations run left-to-right exactly like the
  scalar loops (no pairwise/SIMD reassociation -- the loop over
  dimensions here is a Python loop over *columns*, each column op
  vectorized over pairs);
- selection steps (``max``/``min``/branch chains) replicate the
  scalar comparison polarity with ``np.where``, preserving Python's
  keep-first-on-ties and NaN-propagation behaviour.

Supported metrics are L1, L2 and L-infinity (general ``L_p`` needs
``pow``, whose libm implementation numpy does not reproduce exactly).
This module imports numpy unconditionally; gate access through
:func:`repro.kernels.resolve_kernels`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.metrics import MinkowskiMetric

__all__ = ["BatchKernels"]


class BatchKernels:
    """Batch bound evaluation for one :class:`MinkowskiMetric`.

    All rectangle arguments are coordinate arrays broadcastable to a
    common ``(n, dim)`` shape (a single rectangle may be passed as its
    ``(dim,)`` lo/hi tuples); every method returns a ``(n,)`` float64
    array.  Argument *order* is significant: ``(lo1, hi1)`` plays the
    role of the scalar bounds' first rectangle, so NaN-producing
    degenerate inputs (infinite coordinates) resolve identically.

    The ``np`` attribute re-exports the numpy module so callers can
    build masks without importing numpy at module scope themselves.
    """

    __slots__ = ("metric", "p")

    np = np

    def __init__(self, metric: MinkowskiMetric) -> None:
        self.metric = metric
        self.p = float(metric.p)

    # ------------------------------------------------------------------
    # the norm: replicates MinkowskiMetric.combine left-to-right
    # ------------------------------------------------------------------

    def _combine(self, deltas: np.ndarray) -> np.ndarray:
        if deltas.ndim == 1:
            deltas = deltas.reshape(1, -1)
        p = self.p
        dim = deltas.shape[1]
        if p == 2.0:
            d0 = deltas[:, 0]
            acc = 0.0 + d0 * d0
            for k in range(1, dim):
                dk = deltas[:, k]
                acc = acc + dk * dk
            return np.sqrt(acc)
        if p == 1.0:
            # sum() starts from (int) 0: the first term is 0.0 + d0.
            acc = 0.0 + deltas[:, 0]
            for k in range(1, dim):
                acc = acc + deltas[:, k]
            return acc
        # L-infinity: max() keeps the incumbent unless strictly beaten.
        acc = deltas[:, 0]
        for k in range(1, dim):
            dk = deltas[:, k]
            acc = np.where(dk > acc, dk, acc)
        return acc

    # ------------------------------------------------------------------
    # rectangle bounds
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(*arrays):
        # No explicit broadcasting: the ufunc calls below broadcast a
        # single rectangle's (dim,) corners against (n, dim) arrays on
        # their own, which is far cheaper than materializing the
        # broadcast (this sits on the node-expansion hot path).
        return tuple(np.asarray(a, dtype=np.float64) for a in arrays)

    def mindist(self, lo1, hi1, lo2, hi2) -> np.ndarray:
        """Batch ``Metric.mindist_rect_rect`` (elif-chain per dimension)."""
        lo1, hi1, lo2, hi2 = self._coerce(lo1, hi1, lo2, hi2)
        deltas = np.where(
            hi1 < lo2, lo2 - hi1,
            np.where(hi2 < lo1, lo1 - hi2, 0.0),
        )
        return self._combine(deltas)

    def maxdist(self, lo1, hi1, lo2, hi2) -> np.ndarray:
        """Batch ``Metric.maxdist_rect_rect``."""
        lo1, hi1, lo2, hi2 = self._coerce(lo1, hi1, lo2, hi2)
        x = hi1 - lo2
        y = hi2 - lo1
        deltas = np.where(y > x, y, x)  # max(x, y): y only if strictly >
        return self._combine(deltas)

    def minmaxdist(self, lo1, hi1, lo2, hi2) -> np.ndarray:
        """Batch ``Metric.minmaxdist_rect_rect``."""
        lo1, hi1, lo2, hi2 = self._coerce(lo1, hi1, lo2, hi2)
        c1 = np.abs(lo1 - lo2)
        c2 = np.abs(lo1 - hi2)
        c3 = np.abs(hi1 - lo2)
        c4 = np.abs(hi1 - hi2)
        # min(c1, c2, c3, c4): keep the incumbent unless strictly below.
        face_gap = c1
        for c in (c2, c3, c4):
            face_gap = np.where(c < face_gap, c, face_gap)
        x = hi1 - lo2
        y = hi2 - lo1
        max_comp = np.where(y > x, y, x)
        if max_comp.ndim == 1:
            max_comp = max_comp.reshape(1, -1)
            face_gap = face_gap.reshape(1, -1)
        best = np.full(max_comp.shape[0], math.inf)
        for k in range(max_comp.shape[1]):
            deltas = max_comp.copy()
            deltas[:, k] = face_gap[:, k]
            value = self._combine(deltas)
            best = np.where(value < best, value, best)
        return best

    # ------------------------------------------------------------------
    # exact point/point distances
    # ------------------------------------------------------------------

    def point_distance(self, a, b) -> np.ndarray:
        """Batch ``MinkowskiMetric.distance`` over coordinate arrays."""
        a, b = self._coerce(a, b)
        if a.ndim == 1 and b.ndim == 1:
            a = a.reshape(1, -1)
        if self.p == 2.0:
            d0 = a[..., 0] - b[..., 0]
            acc = 0.0 + d0 * d0
            for k in range(1, a.shape[-1]):
                dk = a[..., k] - b[..., k]
                acc = acc + dk * dk
            return np.sqrt(acc)
        return self._combine(np.abs(a - b))
