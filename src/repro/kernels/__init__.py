"""Batch (vectorized) distance kernels over columnar node data.

The scalar hot path of every join operator computes one
MINDIST/MAXDIST/MINMAXDIST bound per Python call, walking tuple
coordinates in interpreted code.  This package computes the same
bounds for a whole node's entry array in one numpy call, against the
lazily-built columnar mirror that nodes expose via ``entries_soa()``
(see :mod:`repro.kernels.soa` and ``docs/KERNELS.md``).

numpy is an *optional* dependency (the ``repro[fast]`` extra).  When
it is missing -- or the ``REPRO_NO_NUMPY`` environment variable is set
to a non-empty value -- every entry point here degrades to ``None``
and the operators silently use the scalar path.  The
``JoinSpec.kernel`` knob selects the behaviour explicitly:

``"auto"`` (default)
    Use the batch kernels whenever numpy is importable and the metric
    is supported; otherwise fall back to the scalar path.
``"scalar"``
    Never use the batch kernels.
``"vector"``
    Require the batch kernels; :class:`~repro.errors.KernelError` is
    raised when they are unavailable.

The contract of the vector path is **bit-identical results**: the same
result rows in the same tie order, and the same deterministic counter
totals, as the scalar path (batch kernels charge one counter unit per
bound computed).  That is only achievable for metrics whose scalar
evaluation can be replicated exactly with IEEE-754 correctly-rounded
numpy primitives, which restricts support to the Minkowski metrics the
paper uses: L1, L2 and L-infinity.  General ``L_p`` goes through
``libm`` ``pow`` and stays scalar.
"""

from __future__ import annotations

import math
import os
from typing import Optional

from repro.errors import KernelError
from repro.geometry.metrics import Metric, MinkowskiMetric

__all__ = [
    "DISABLE_ENV",
    "build_entry_soa",
    "kernels_available",
    "numpy_or_none",
    "resolve_kernels",
    "support_reason",
]

#: Setting this environment variable (to any non-empty value) makes the
#: package behave as if numpy were not installed -- the CI leg that
#: exercises the scalar fallback uses it, and so can users debugging a
#: suspected kernel discrepancy.
DISABLE_ENV = "REPRO_NO_NUMPY"

_numpy = None
_numpy_checked = False


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when unavailable/disabled.

    The import attempt is cached; the :data:`DISABLE_ENV` override is
    re-read on every call so tests can toggle it.
    """
    global _numpy, _numpy_checked
    if os.environ.get(DISABLE_ENV):
        return None
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy
        except ImportError:
            _numpy = None
        else:
            _numpy = numpy
    return _numpy


def kernels_available() -> bool:
    """True when the batch kernels can be used at all."""
    return numpy_or_none() is not None


def support_reason(metric: Metric) -> Optional[str]:
    """``None`` when batch kernels can serve ``metric`` bit-identically;
    otherwise a human-readable reason for falling back to scalar."""
    if numpy_or_none() is None:
        return (
            "numpy is not importable (install the repro[fast] extra"
            f" / unset {DISABLE_ENV})"
        )
    if not isinstance(metric, MinkowskiMetric):
        return f"metric {metric!r} has no batch kernels"
    p = metric.p
    if p not in (1.0, 2.0) and not math.isinf(p):
        return (
            f"Minkowski order p={p:g} evaluates through libm pow, "
            "which the kernels cannot replicate bit-identically"
        )
    return None


def resolve_kernels(mode: str, metric: Metric):
    """Resolve the ``JoinSpec.kernel`` knob to a kernel set or ``None``.

    ``None`` means "use the scalar path".  ``mode="vector"`` raises
    :class:`~repro.errors.KernelError` instead of falling back.
    """
    if mode == "scalar":
        return None
    reason = support_reason(metric)
    if reason is not None:
        if mode == "vector":
            raise KernelError(f'kernel="vector" is unavailable: {reason}')
        return None
    from repro.kernels.batch import BatchKernels

    return BatchKernels(metric)


def build_entry_soa(entries):
    """Columnar mirror of a node's entry list, or ``None`` without numpy.

    See :class:`repro.kernels.soa.EntrySoA`.
    """
    if numpy_or_none() is None:
        return None
    from repro.kernels.soa import build

    return build(entries)
