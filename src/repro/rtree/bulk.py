"""Sort-Tile-Recursive (STR) bulk loading.

Building a 20k-point R*-tree one insert at a time is the dominant cost
of a benchmark run, and the paper's trees are built offline anyway, so
the benchmark harness bulk-loads with STR (Leutenegger et al., 1997).
The resulting tree satisfies all structural invariants checked by
:func:`repro.rtree.validate.validate_tree` and is, if anything, a
slightly *better*-clustered tree than repeated insertion produces.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.rtree.base import RTreeBase
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.rstar import RStarTree
from repro.util.validation import require


def bulk_load_str(
    objects: Sequence[Any],
    tree: Optional[RTreeBase] = None,
    fill: float = 0.7,
    **tree_kwargs: Any,
) -> RTreeBase:
    """Bulk load ``objects`` into an R-tree using the STR algorithm.

    Parameters
    ----------
    objects:
        Points, Rects, or anything with an ``mbr()`` method.  Object
        ids are assigned in input order (0, 1, 2, ...), so callers can
        map ids back to their own records.
    tree:
        An *empty* tree to load into; a fresh :class:`RStarTree` with
        ``tree_kwargs`` is created when omitted.
    fill:
        Target node fill factor in (0, 1]; nodes are packed to
        ``ceil(fill * max_entries)`` entries.

    Returns
    -------
    The loaded tree.
    """
    require(0.0 < fill <= 1.0, "fill must be in (0, 1]")
    if tree is None:
        sample_rect = RTreeBase._rect_of(objects[0]) if objects else None
        dim = sample_rect.dim if sample_rect is not None else 2
        tree_kwargs.setdefault("dim", dim)
        tree = RStarTree(**tree_kwargs)
    require(tree.size == 0, "bulk loading requires an empty tree")

    if not objects:
        return tree

    node_cap = max(2, int(math.ceil(fill * tree.max_entries)))
    leaf_entries: List[LeafEntry] = []
    for oid, obj in enumerate(objects):
        rect = tree._rect_of(obj)
        payload = obj if isinstance(obj, Point) or hasattr(obj, "mbr") else None
        leaf_entries.append(LeafEntry(rect, oid, payload))
    tree._next_oid = len(leaf_entries)
    tree.size = len(leaf_entries)

    level = 0
    entries: List[Any] = leaf_entries
    # Free the empty pre-allocated root; STR builds its own nodes.
    old_root = tree.read_node(tree.root_id)
    tree._free_node(old_root)
    while True:
        nodes = _pack_level(tree, entries, level, node_cap)
        if len(nodes) == 1:
            tree.root_id = nodes[0].page_id
            return tree
        entries = [BranchEntry(n.mbr(), n.page_id) for n in nodes]
        level += 1


def _pack_level(
    tree: RTreeBase, entries: List[Any], level: int, node_cap: int
):
    """Tile one level of entries into nodes of ``node_cap`` entries."""
    dim = tree.dim

    def center_key(axis: int):
        def key(entry) -> float:
            return (entry.rect.lo[axis] + entry.rect.hi[axis]) / 2.0
        return key

    # Recursive tiling: sort by the first axis, cut into slabs sized so
    # that each slab tiles the remaining axes; recurse on the slabs.
    def tile(items: List[Any], axes: Tuple[int, ...]) -> List[List[Any]]:
        if len(items) <= node_cap or len(axes) == 1:
            items = sorted(items, key=center_key(axes[0]))
            return [
                items[i:i + node_cap]
                for i in range(0, len(items), node_cap)
            ]
        axis, rest = axes[0], axes[1:]
        slab_count = int(math.ceil(
            (len(items) / node_cap) ** (1.0 / len(axes))
        ))
        # Round slab sizes up to a multiple of node_cap so that every
        # slab except possibly the last packs into completely full
        # nodes; at most one underfull node then exists tree-wide.
        slab_size = int(math.ceil(len(items) / slab_count))
        slab_size = int(math.ceil(slab_size / node_cap)) * node_cap
        items = sorted(items, key=center_key(axis))
        groups: List[List[Any]] = []
        for i in range(0, len(items), slab_size):
            groups.extend(tile(items[i:i + slab_size], rest))
        return groups

    groups = tile(entries, tuple(range(dim)))
    # Guard against a degenerate final group of size < min_entries:
    # combine it with its neighbour (one node if it fits the capacity,
    # otherwise two balanced halves, each at least min_entries because
    # the combined size then exceeds max_entries >= 2 * min_entries).
    if len(groups) > 1 and len(groups[-1]) < tree.min_entries:
        combined = groups[-2] + groups[-1]
        if len(combined) <= tree.max_entries:
            groups[-2:] = [combined]
        else:
            half = len(combined) // 2
            groups[-2:] = [combined[:half], combined[half:]]

    nodes = []
    for group in groups:
        node = tree._new_node(level=level, entries=group)
        tree._write_node(node)
        nodes.append(node)
    return nodes
