"""The R*-tree of Beckmann, Kriegel, Schneider and Seeger (1990).

This is the index the paper runs all experiments on.  It differs from
the classic R-tree in three ways, all implemented here:

- *ChooseSubtree* minimizes overlap enlargement at the level above the
  leaves (and area enlargement higher up);
- the split picks its axis by minimum margin sum and its distribution
  by minimum overlap (see :func:`repro.rtree.split.rstar_split`);
- the first overflow on each level during an insertion triggers
  *forced reinsertion* of the 30% of entries farthest from the node
  center instead of an immediate split.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry.rectangle import Rect
from repro.rtree.base import RTreeBase
from repro.rtree.entry import BranchEntry
from repro.rtree.node import Node
from repro.rtree.split import rstar_split

#: Fraction of entries removed on forced reinsertion (R* paper: 30%).
REINSERT_FRACTION = 0.3

_INF = float("inf")


class RStarTree(RTreeBase):
    """R*-tree; see :class:`repro.rtree.base.RTreeBase` for parameters."""

    def _choose_subtree(self, node: Node, rect: Rect) -> BranchEntry:
        entries = node.entries
        if node.level == 1:
            # Children are leaves: minimize overlap enlargement, then
            # area enlargement, then area.
            best = None
            best_key: Tuple[float, float, float] = (_INF, _INF, _INF)
            for entry in entries:
                enlarged = entry.rect.union(rect)
                overlap_before = 0.0
                overlap_after = 0.0
                for other in entries:
                    if other is entry:
                        continue
                    overlap_before += entry.rect.overlap_area(other.rect)
                    overlap_after += enlarged.overlap_area(other.rect)
                key = (
                    overlap_after - overlap_before,
                    enlarged.area() - entry.rect.area(),
                    entry.rect.area(),
                )
                if key < best_key:
                    best_key = key
                    best = entry
            assert best is not None
            return best
        # Higher levels: minimize area enlargement, then area.
        best = None
        best_key2: Tuple[float, float] = (_INF, _INF)
        for entry in entries:
            key2 = (entry.rect.enlargement(rect), entry.rect.area())
            if key2 < best_key2:
                best_key2 = key2
                best = entry
        assert best is not None
        return best

    def _split_entries(self, entries) -> Tuple[List, List]:
        return rstar_split(entries, self.min_entries)

    def _handle_overflow(self, node: Node):
        # Forced reinsertion: once per level per insertion, and never
        # for the root.
        if (
            node.page_id != self.root_id
            and node.level not in self._reinserted_levels
        ):
            self._reinserted_levels.add(node.level)
            self._force_reinsert(node)
            return None
        return self._split_node(node)

    def _force_reinsert(self, node: Node) -> None:
        """Remove the 30% of entries farthest from the node's center and
        queue them for reinsertion ("close reinsert": nearest first)."""
        center = node.mbr().center()
        reinsert_count = max(1, int(REINSERT_FRACTION * self.max_entries))

        def center_dist(entry) -> float:
            entry_center = entry.rect.center()
            return sum(
                (a - b) ** 2 for a, b in zip(center, entry_center)
            )

        ranked = sorted(node.entries, key=center_dist, reverse=True)
        to_reinsert = ranked[:reinsert_count]
        node.entries = ranked[reinsert_count:]
        self._write_node(node)
        self.counters.add("forced_reinserts", len(to_reinsert))
        # Close reinsert: entries nearest the center are reinserted
        # first; _pending is a stack, so push farthest first.
        for entry in to_reinsert:
            self._pending.append((entry, node.level))
