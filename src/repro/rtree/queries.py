"""Single-tree queries: range search, k-NN, incremental nearest neighbour.

:func:`incremental_nearest` is the Hjaltason–Samet incremental
nearest-neighbour algorithm (reference [18] of the paper) that the
incremental distance join generalizes: a priority queue holds nodes and
objects keyed by their minimum distance from the query object, and
whenever an object surfaces at the queue head it is the next nearest.
It is also the engine of the paper's Section 4.2.3 semi-join baseline.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterator, List, NamedTuple, Optional, Tuple

from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.base import RTreeBase
from repro.rtree.entry import LeafEntry
from repro.util.validation import require


class Neighbor(NamedTuple):
    """One result of a nearest-neighbour query."""

    distance: float
    oid: int
    obj: Any
    rect: Rect


def range_search(tree: RTreeBase, window: Rect) -> Iterator[LeafEntry]:
    """Yield all leaf entries whose rectangle intersects ``window``."""
    root = tree.root()
    if not root.entries:
        return
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        for entry in node.entries:
            if not entry.rect.intersects(window):
                continue
            if node.is_leaf:
                yield entry
            else:
                stack.append(entry.child_id)


def _query_rect(query: Any) -> Rect:
    if isinstance(query, Rect):
        return query
    if isinstance(query, Point):
        return Rect.from_point(query)
    mbr = getattr(query, "mbr", None)
    if callable(mbr):
        return mbr()
    raise TypeError(
        f"cannot derive a query rectangle from {type(query).__name__}"
    )


def incremental_nearest(
    tree: RTreeBase,
    query: Any,
    metric: Metric = EUCLIDEAN,
    max_distance: Optional[float] = None,
) -> Iterator[Neighbor]:
    """Yield the tree's objects in order of increasing distance from
    ``query`` (a Point, Rect, or spatial object).

    The generator's entire state is its priority queue, so consuming
    one more neighbour costs only the incremental work -- this is the
    "fast first" behaviour the paper builds on.  ``max_distance``
    prunes queue insertions the way the join's ``Dmax`` does.
    """
    query_rect = _query_rect(query)
    counters = tree.counters
    root = tree.root()
    if not root.entries:
        return

    seq = count()
    # Heap items: (distance, kind_rank, seq, payload); objects (rank 0)
    # surface before nodes (rank 1) at equal distance.
    heap: List[Tuple[float, int, int, Any]] = []
    heapq.heappush(heap, (0.0, 1, next(seq), tree.root_id))
    while heap:
        distance, kind_rank, __, payload = heapq.heappop(heap)
        if kind_rank == 0:
            entry = payload
            yield Neighbor(distance, entry.oid, entry.obj, entry.rect)
            continue
        node = tree.read_node(payload)
        for entry in node.entries:
            entry_dist = metric.mindist_rect_rect(query_rect, entry.rect)
            counters.add("bound_calcs")
            if max_distance is not None and entry_dist > max_distance:
                continue
            if node.is_leaf:
                heapq.heappush(heap, (entry_dist, 0, next(seq), entry))
            else:
                heapq.heappush(
                    heap, (entry_dist, 1, next(seq), entry.child_id)
                )
        counters.observe("queue_size", len(heap))


def nearest_neighbors(
    tree: RTreeBase,
    query: Any,
    k: int = 1,
    metric: Metric = EUCLIDEAN,
    max_distance: Optional[float] = None,
) -> List[Neighbor]:
    """The ``k`` nearest objects to ``query``, nearest first."""
    require(k >= 1, "k must be at least 1")
    results: List[Neighbor] = []
    for neighbor in incremental_nearest(
        tree, query, metric=metric, max_distance=max_distance
    ):
        results.append(neighbor)
        if len(results) == k:
            break
    return results


def nearest_neighbors_bnb(
    tree: RTreeBase,
    query: Any,
    k: int = 1,
    metric: Metric = EUCLIDEAN,
) -> List[Neighbor]:
    """Branch-and-bound k-NN (Roussopoulos et al., the paper's [25]).

    Depth-first traversal ordered by MINDIST, pruning subtrees whose
    MINDIST exceeds the current k-th best distance; the MINMAXDIST
    bound additionally seeds the pruning radius before any object has
    been seen (each visited rectangle *guarantees* an object within
    its MINMAXDIST).  Returns the same answers as the incremental
    algorithm; exists as the classic non-incremental comparator and as
    a live exercise of the MINMAXDIST machinery.
    """
    require(k >= 1, "k must be at least 1")
    query_rect = _query_rect(query)
    root = tree.root()
    if not root.entries:
        return []
    counters = tree.counters

    # Max-heap of the k best candidates: (-distance, seq, Neighbor).
    best: List[Tuple[float, int, Neighbor]] = []
    seq = count()
    # MINMAXDIST guarantee for the 1-NN radius: every visited entry
    # rectangle contains an object within its MINMAXDIST.  (For k >= 2
    # the guarantees of nested rectangles may be witnessed by the same
    # object, so only the k = 1 seed is sound.)
    guarantee = [float("inf")]

    def radius() -> float:
        if len(best) == k:
            return -best[0][0]
        if k == 1:
            return guarantee[0]
        return float("inf")

    def visit(node_id: int) -> None:
        node = tree.read_node(node_id)
        if node.is_leaf:
            for entry in node.entries:
                distance = metric.mindist_rect_rect(
                    query_rect, entry.rect
                )
                counters.add("dist_calcs")
                if len(best) < k:
                    heapq.heappush(best, (
                        -distance, next(seq),
                        Neighbor(distance, entry.oid, entry.obj,
                                 entry.rect),
                    ))
                elif distance < -best[0][0]:
                    heapq.heapreplace(best, (
                        -distance, next(seq),
                        Neighbor(distance, entry.oid, entry.obj,
                                 entry.rect),
                    ))
            return
        ranked = []
        for entry in node.entries:
            mindist = metric.mindist_rect_rect(query_rect, entry.rect)
            minmax = metric.minmaxdist_rect_rect(query_rect, entry.rect)
            counters.add("bound_calcs", 2)
            if minmax < guarantee[0]:
                guarantee[0] = minmax
            ranked.append((mindist, entry.child_id))
        ranked.sort()
        for mindist, child_id in ranked:
            if mindist > radius():
                counters.add("pruned_bnb")
                continue
            visit(child_id)

    visit(tree.root_id)
    ordered = sorted(best, key=lambda item: -item[0])
    return [neighbor for __, ___, neighbor in ordered]
