"""Shared machinery for R-tree variants.

:class:`RTreeBase` owns the storage plumbing (page store + buffer pool +
counters), the recursive insertion/deletion skeleton with MBR
maintenance, and the public read API.  Variants customize subtree
choice, splitting, and overflow treatment.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import TreeError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.entry import BranchEntry, LeafEntry, entry_size_bytes
from repro.rtree.node import Node
from repro.storage.buffer import DEFAULT_CAPACITY, BufferPool
from repro.storage.pager import DEFAULT_PAGE_SIZE, PageStore
from repro.util.counters import CounterRegistry
from repro.util.validation import require, require_positive

#: Paper's R*-tree fan-out for 1 KB nodes.
DEFAULT_MAX_ENTRIES = 50

#: R*-tree minimum fill: 40% of the maximum fan-out.
DEFAULT_MIN_FILL = 0.4


class RTreeBase:
    """Common base class for :class:`RStarTree` and :class:`GuttmanRTree`.

    Parameters
    ----------
    dim:
        Dimensionality of the indexed space.
    max_entries:
        Node capacity (fan-out).  The paper uses 50.
    min_entries:
        Minimum node fill; defaults to 40% of ``max_entries``.
    counters:
        Shared performance-counter registry.  Node reads that miss the
        buffer pool increment ``node_io``; all logical node reads
        increment ``node_reads``.
    buffer_pages:
        Buffer-pool capacity in pages (paper: 256).
    page_size:
        Simulated page size in bytes (paper: 1024).
    """

    def __init__(
        self,
        dim: int = 2,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: Optional[int] = None,
        counters: Optional[CounterRegistry] = None,
        buffer_pages: int = DEFAULT_CAPACITY,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        require_positive(dim, "dim")
        require(max_entries >= 2, "max_entries must be at least 2")
        if min_entries is None:
            min_entries = max(1, int(math.ceil(DEFAULT_MIN_FILL * max_entries)))
        require(
            1 <= min_entries <= max_entries // 2,
            "min_entries must be in [1, max_entries/2]",
        )
        self.dim = dim
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.counters = counters if counters is not None else CounterRegistry()
        self.store = PageStore(page_size=page_size, counters=self.counters)
        self.pool = BufferPool(
            self.store, capacity=buffer_pages, counters=self.counters
        )
        self.size = 0
        self._next_oid = 0
        # Monotone structural-version counter: bumped by every insert
        # and delete.  Derived summaries (cost-model stats, shard
        # catalogs) key their caches on it to detect staleness.
        self._mutations = 0
        root = self._new_node(level=0)
        self.root_id = root.page_id
        # Transient state for one insert/delete operation.
        self._reinserted_levels: set = set()
        self._pending: List[Tuple[Any, int]] = []

    # ------------------------------------------------------------------
    # node access (all I/O accounting funnels through here)
    # ------------------------------------------------------------------

    def read_node(self, page_id: int) -> Node:
        """Fetch a node, counting ``node_reads`` and, on a miss, ``node_io``."""
        hit = self.pool.contains(page_id)
        page = self.pool.read(page_id)
        self.counters.add("node_reads")
        if not hit:
            self.counters.add("node_io")
        return page.payload

    def root(self) -> Node:
        """The root node (read through the buffer pool)."""
        return self.read_node(self.root_id)

    @property
    def height(self) -> int:
        """Number of levels; 1 for a tree that is a single leaf."""
        return self.root().level + 1

    def node_size_bytes(self, node: Node) -> int:
        """Simulated on-page size of ``node``."""
        return 8 + len(node.entries) * entry_size_bytes(self.dim)

    def _new_node(self, level: int, entries=None) -> Node:
        node = Node(page_id=-1, level=level, entries=entries)
        node.page_id = self.store.allocate(node, 8)
        return node

    def _write_node(self, node: Node) -> None:
        # Every entry-list mutation funnels through here, so this is
        # the single invalidation point for the columnar mirror.
        node.invalidate_soa()
        self.store.write(node.page_id, node, min(
            self.store.page_size, self.node_size_bytes(node)
        ))

    def _free_node(self, node: Node) -> None:
        self.pool.invalidate(node.page_id)
        self.store.free(node.page_id)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, obj: Any = None, rect: Optional[Rect] = None,
               oid: Optional[int] = None) -> int:
        """Insert an object and return its object id.

        Either ``obj`` (a :class:`Point` or anything with an ``mbr()``
        method) or an explicit ``rect`` must be given; when both are
        present, ``rect`` wins.  Object ids are assigned sequentially
        when not supplied, so they densely index the semi-join bitset.
        """
        if rect is None:
            rect = self._rect_of(obj)
        if rect.dim != self.dim:
            raise TreeError(
                f"object of dimension {rect.dim} inserted into "
                f"{self.dim}-d tree"
            )
        if oid is None:
            oid = self._next_oid
        self._next_oid = max(self._next_oid, oid + 1)
        entry = LeafEntry(rect, oid, obj)

        self._reinserted_levels = set()
        self._pending = [(entry, 0)]
        while self._pending:
            pending_entry, level = self._pending.pop()
            self._insert_at_level(pending_entry, level)
        self.size += 1
        self._mutations += 1
        return oid

    def insert_point(self, coords) -> int:
        """Convenience: insert a point given as a coordinate sequence."""
        point = coords if isinstance(coords, Point) else Point(coords)
        return self.insert(obj=point)

    @staticmethod
    def _rect_of(obj: Any) -> Rect:
        if isinstance(obj, Point):
            return Rect.from_point(obj)
        if isinstance(obj, Rect):
            return obj
        mbr = getattr(obj, "mbr", None)
        if callable(mbr):
            return mbr()
        raise TreeError(
            f"cannot derive a bounding rectangle from {type(obj).__name__}"
        )

    def _insert_at_level(self, entry: Any, target_level: int) -> None:
        split_entry = self._insert_recursive(self.root_id, entry, target_level)
        if split_entry is not None:
            old_root = self.read_node(self.root_id)
            new_root = self._new_node(level=old_root.level + 1)
            new_root.entries.append(
                BranchEntry(old_root.mbr(), old_root.page_id)
            )
            new_root.entries.append(split_entry)
            self._write_node(new_root)
            self.root_id = new_root.page_id

    def _insert_recursive(
        self, node_id: int, entry: Any, target_level: int
    ) -> Optional[BranchEntry]:
        node = self.read_node(node_id)
        if node.level == target_level:
            node.entries.append(entry)
        else:
            child_entry = self._choose_subtree(node, entry.rect)
            split_entry = self._insert_recursive(
                child_entry.child_id, entry, target_level
            )
            child_node = self.read_node(child_entry.child_id)
            child_entry.rect = child_node.mbr()
            if split_entry is not None:
                node.entries.append(split_entry)
        self._write_node(node)
        if len(node.entries) > self.max_entries:
            return self._handle_overflow(node)
        return None

    def _handle_overflow(self, node: Node) -> Optional[BranchEntry]:
        """Deal with an overfull node; return a new sibling entry if split.

        The base implementation always splits; :class:`RStarTree`
        overrides this to apply forced reinsertion first.
        """
        return self._split_node(node)

    def _split_node(self, node: Node) -> BranchEntry:
        group1, group2 = self._split_entries(node.entries)
        node.entries = group1
        self._write_node(node)
        sibling = self._new_node(level=node.level, entries=group2)
        self._write_node(sibling)
        return BranchEntry(sibling.mbr(), sibling.page_id)

    # Hooks customized by variants -------------------------------------

    def _choose_subtree(self, node: Node, rect: Rect) -> BranchEntry:
        raise NotImplementedError

    def _split_entries(self, entries) -> Tuple[list, list]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, oid: int, rect: Rect) -> bool:
        """Delete the object with id ``oid`` whose MBR is ``rect``.

        Returns True if the object was found and removed.  Underfull
        nodes on the deletion path are dissolved and their entries
        reinserted (the classic condense-tree step).
        """
        orphans: List[Tuple[Any, int]] = []
        found = self._delete_recursive(self.root_id, oid, rect, orphans)
        if not found:
            return False
        self.size -= 1
        self._mutations += 1
        root = self.read_node(self.root_id)
        if not root.is_leaf and len(root.entries) == 1:
            only_child = root.entries[0].child_id
            self._free_node(root)
            self.root_id = only_child
        elif not root.is_leaf and not root.entries:
            self._free_node(root)
            new_root = self._new_node(level=0)
            self.root_id = new_root.page_id
        for entry, level in orphans:
            self._reinserted_levels = set()
            self._pending = [(entry, level)]
            while self._pending:
                pending_entry, pending_level = self._pending.pop()
                self._insert_at_level(pending_entry, pending_level)
        return True

    def _delete_recursive(
        self,
        node_id: int,
        oid: int,
        rect: Rect,
        orphans: List[Tuple[Any, int]],
    ) -> bool:
        node = self.read_node(node_id)
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.oid == oid and entry.rect == rect:
                    del node.entries[i]
                    self._write_node(node)
                    return True
            return False
        for i, entry in enumerate(node.entries):
            if not entry.rect.contains_rect(rect):
                continue
            if self._delete_recursive(entry.child_id, oid, rect, orphans):
                child = self.read_node(entry.child_id)
                if len(child.entries) < self.min_entries:
                    del node.entries[i]
                    for orphan in child.entries:
                        orphans.append((orphan, child.level))
                    self._free_node(child)
                else:
                    entry.rect = child.mbr()
                self._write_node(node)
                return True
        return False

    # ------------------------------------------------------------------
    # iteration / misc
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def items(self) -> Iterator[LeafEntry]:
        """Iterate over all leaf entries (tree order, not spatial order)."""
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                for entry in node.entries:
                    yield entry
            else:
                for entry in node.entries:
                    stack.append(entry.child_id)

    def bounds(self) -> Optional[Rect]:
        """MBR of the whole data set, or None when the tree is empty."""
        root = self.root()
        if not root.entries:
            return None
        return root.mbr()

    def min_subtree_count(self, level: int) -> int:
        """Lower bound on objects under a node at ``level``.

        Used by the maximum-distance estimator (paper Section 2.2.4):
        every non-root node holds at least ``min_entries`` entries, so a
        node at level ``L`` subtends at least ``min_entries ** L``
        objects (a level-0 leaf is counted as holding at least
        ``min_entries`` objects when it is not the root).
        """
        require(level >= 0, "level must be non-negative")
        return self.min_entries ** (level + 1)

    def avg_subtree_count(self, level: int) -> float:
        """Average-occupancy estimate of objects under a node at ``level``.

        The paper calls using this the "more aggressive strategy" that
        may overestimate and force a query restart.
        """
        if self.size == 0:
            return 0.0
        # Average fan-out estimated from the actual tree shape.
        root = self.root()
        if root.level == 0:
            return float(len(root.entries))
        avg_fanout = max(2.0, self.size ** (1.0 / (root.level + 1)))
        return float(avg_fanout ** (level + 1))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self.size}, "
            f"height={self.height}, fanout={self.max_entries})"
        )
