"""Node splitting algorithms: the R* topological split and Guttman's
quadratic split.

Both functions take the overflowing entry list (``M + 1`` entries) and
return two entry lists, each holding at least ``min_entries`` items.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import TreeError
from repro.geometry.rectangle import Rect

_INF = float("inf")


def _bounding(entries: Sequence) -> Rect:
    return Rect.union_of([e.rect for e in entries])


def rstar_split(
    entries: Sequence, min_entries: int
) -> Tuple[List, List]:
    """The R*-tree split of Beckmann et al.

    1. *ChooseSplitAxis*: for each axis, sort the entries by lower and
       by upper rectangle boundary and sum the margins of the bounding
       rectangles of every legal distribution; pick the axis with the
       smallest margin sum.
    2. *ChooseSplitIndex*: along that axis, pick the distribution with
       minimum overlap between the two groups, breaking ties by minimum
       total area.
    """
    count = len(entries)
    if count < 2 * min_entries:
        raise TreeError(
            f"cannot split {count} entries with min_entries={min_entries}"
        )
    dim = entries[0].rect.dim
    # Number of legal distributions: group 1 takes the first
    # (min_entries - 1 + k) entries for k = 1 .. count - 2*min_entries + 1
    # (the R* paper's M - 2m + 2 with count = M + 1 entries).
    split_count = count - 2 * min_entries + 1

    best_axis = -1
    best_margin = _INF
    best_sortings: Tuple[List, List] = ([], [])
    for axis in range(dim):
        by_lo = sorted(entries, key=lambda e: (e.rect.lo[axis],
                                               e.rect.hi[axis]))
        by_hi = sorted(entries, key=lambda e: (e.rect.hi[axis],
                                               e.rect.lo[axis]))
        margin_sum = 0.0
        for ordering in (by_lo, by_hi):
            for k in range(split_count):
                cut = min_entries + k
                margin_sum += _bounding(ordering[:cut]).margin()
                margin_sum += _bounding(ordering[cut:]).margin()
        if margin_sum < best_margin:
            best_margin = margin_sum
            best_axis = axis
            best_sortings = (by_lo, by_hi)

    assert best_axis >= 0
    best_overlap = _INF
    best_area = _INF
    best_groups: Tuple[List, List] = ([], [])
    for ordering in best_sortings:
        for k in range(split_count):
            cut = min_entries + k
            group1, group2 = ordering[:cut], ordering[cut:]
            bb1, bb2 = _bounding(group1), _bounding(group2)
            overlap = bb1.overlap_area(bb2)
            area = bb1.area() + bb2.area()
            if overlap < best_overlap or (
                overlap == best_overlap and area < best_area
            ):
                best_overlap = overlap
                best_area = area
                best_groups = (list(group1), list(group2))
    return best_groups


def quadratic_split(
    entries: Sequence, min_entries: int
) -> Tuple[List, List]:
    """Guttman's quadratic split, used by the classic R-tree baseline.

    *PickSeeds* chooses the pair of entries wasting the most area when
    covered together; remaining entries are assigned one by one to the
    group whose bounding rectangle needs the smaller enlargement
    (*PickNext* selects the entry with maximal enlargement difference),
    while guaranteeing both groups reach ``min_entries``.
    """
    count = len(entries)
    if count < 2 * min_entries:
        raise TreeError(
            f"cannot split {count} entries with min_entries={min_entries}"
        )
    remaining = list(entries)

    # PickSeeds: maximize dead area of the pair's bounding rectangle.
    worst_waste = -_INF
    seed_a = seed_b = 0
    for i in range(count):
        area_i = remaining[i].rect.area()
        for j in range(i + 1, count):
            waste = (
                remaining[i].rect.union(remaining[j].rect).area()
                - area_i
                - remaining[j].rect.area()
            )
            if waste > worst_waste:
                worst_waste = waste
                seed_a, seed_b = i, j

    group1 = [remaining[seed_a]]
    group2 = [remaining[seed_b]]
    for index in sorted((seed_a, seed_b), reverse=True):
        del remaining[index]
    bb1 = group1[0].rect
    bb2 = group2[0].rect

    while remaining:
        # If one group must take all the rest to reach min_entries, do so.
        need1 = min_entries - len(group1)
        need2 = min_entries - len(group2)
        if need1 >= len(remaining):
            group1.extend(remaining)
            remaining = []
            break
        if need2 >= len(remaining):
            group2.extend(remaining)
            remaining = []
            break

        # PickNext: entry with the greatest preference for one group.
        best_index = 0
        best_diff = -_INF
        for i, entry in enumerate(remaining):
            d1 = bb1.union(entry.rect).area() - bb1.area()
            d2 = bb2.union(entry.rect).area() - bb2.area()
            diff = abs(d1 - d2)
            if diff > best_diff:
                best_diff = diff
                best_index = i
        entry = remaining.pop(best_index)
        d1 = bb1.union(entry.rect).area() - bb1.area()
        d2 = bb2.union(entry.rect).area() - bb2.area()
        if d1 < d2 or (d1 == d2 and bb1.area() < bb2.area()) or (
            d1 == d2 and bb1.area() == bb2.area() and len(group1) <= len(group2)
        ):
            group1.append(entry)
            bb1 = bb1.union(entry.rect)
        else:
            group2.append(entry)
            bb2 = bb2.union(entry.rect)

    return group1, group2
