"""The classic R-tree of Guttman (1984) with quadratic split.

Provided as a structural baseline: the join algorithms run unchanged on
it, and comparing against the R*-tree shows how much the join benefits
from the better-clustered index the paper chose.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry.rectangle import Rect
from repro.rtree.base import RTreeBase
from repro.rtree.entry import BranchEntry
from repro.rtree.node import Node
from repro.rtree.split import quadratic_split

_INF = float("inf")


class GuttmanRTree(RTreeBase):
    """Classic R-tree: ChooseLeaf by minimum area enlargement, quadratic
    split, no forced reinsertion."""

    def _choose_subtree(self, node: Node, rect: Rect) -> BranchEntry:
        best = None
        best_key: Tuple[float, float] = (_INF, _INF)
        for entry in node.entries:
            key = (entry.rect.enlargement(rect), entry.rect.area())
            if key < best_key:
                best_key = key
                best = entry
        assert best is not None
        return best

    def _split_entries(self, entries) -> Tuple[List, List]:
        return quadratic_split(entries, self.min_entries)
