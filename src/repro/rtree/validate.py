"""Structural invariant checking for R-trees.

Used heavily by the test suite (including the property-based tests) to
certify that every tree produced by insertion, deletion, or bulk
loading is a legal R-tree:

1. every node except the root holds between ``min_entries`` and
   ``max_entries`` entries (bulk loading may legally leave one
   underfull node; see ``allow_underfull``);
2. every branch entry's rectangle equals the MBR of its child node
   (tight keys -- this implementation recomputes keys on every update,
   so containment is required to be exact);
3. all leaves are at level 0 and all root-to-leaf paths have the same
   length (balance);
4. the recorded object count matches the number of leaf entries;
5. page ids are unique and every reachable node is allocated.
"""

from __future__ import annotations

from typing import Set

from repro.errors import TreeInvariantError
from repro.rtree.base import RTreeBase


def validate_tree(tree: RTreeBase, allow_underfull: bool = False) -> None:
    """Raise :class:`TreeInvariantError` on any violated invariant."""
    root = tree.root()
    seen_pages: Set[int] = set()
    underfull_budget = [1 if allow_underfull else 0]
    object_count = _validate_node(
        tree, root.page_id, root.level, is_root=True,
        seen_pages=seen_pages, underfull_budget=underfull_budget,
    )
    if object_count != tree.size:
        raise TreeInvariantError(
            f"tree.size is {tree.size} but {object_count} leaf entries found"
        )


def _validate_node(
    tree: RTreeBase,
    page_id: int,
    expected_level: int,
    is_root: bool,
    seen_pages: Set[int],
    underfull_budget: list,
) -> int:
    if page_id in seen_pages:
        raise TreeInvariantError(f"page {page_id} reachable twice")
    seen_pages.add(page_id)
    if not tree.store.exists(page_id):
        raise TreeInvariantError(f"page {page_id} is not allocated")
    node = tree.read_node(page_id)

    if node.level != expected_level:
        raise TreeInvariantError(
            f"node {page_id} at level {node.level}, expected "
            f"{expected_level} (unbalanced tree)"
        )
    entry_count = len(node.entries)
    if entry_count > tree.max_entries:
        raise TreeInvariantError(
            f"node {page_id} overfull: {entry_count} > {tree.max_entries}"
        )
    if not is_root and entry_count < tree.min_entries:
        if underfull_budget[0] > 0:
            underfull_budget[0] -= 1
        else:
            raise TreeInvariantError(
                f"node {page_id} underfull: {entry_count} < "
                f"{tree.min_entries}"
            )
    if is_root and not node.is_leaf and entry_count < 2:
        raise TreeInvariantError(
            f"non-leaf root {page_id} has fewer than 2 entries"
        )

    if node.is_leaf:
        return entry_count

    object_count = 0
    for entry in node.entries:
        child = tree.read_node(entry.child_id)
        child_mbr = child.mbr()
        if entry.rect != child_mbr:
            raise TreeInvariantError(
                f"entry rect {entry.rect!r} in node {page_id} does not "
                f"match child {entry.child_id} MBR {child_mbr!r}"
            )
        object_count += _validate_node(
            tree, entry.child_id, expected_level - 1, is_root=False,
            seen_pages=seen_pages, underfull_budget=underfull_budget,
        )
    return object_count
