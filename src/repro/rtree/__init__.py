"""R-tree substrate: R*-tree, classic R-tree, bulk loading, queries.

The paper presents its algorithms in the context of the R-tree and runs
all experiments on R*-trees with objects stored directly in the leaves
(Section 3.1).  This package implements:

- :class:`RStarTree` -- the R*-tree of Beckmann et al. (choose-subtree
  with overlap minimization, margin-driven split-axis selection, forced
  reinsertion);
- :class:`GuttmanRTree` -- the classic R-tree with quadratic split, as a
  structural baseline;
- STR bulk loading (:func:`bulk_load_str`);
- range / point / k-NN queries and the **incremental nearest
  neighbour** generator (:func:`incremental_nearest`), i.e. the
  single-tree algorithm the incremental distance join generalizes.
"""

from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.node import Node
from repro.rtree.rstar import RStarTree
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.bulk import bulk_load_str
from repro.rtree.spacefill import bulk_load_curve, hilbert_key_2d, morton_key
from repro.rtree.stats import TreeQuality, tree_quality
from repro.rtree.queries import (
    incremental_nearest,
    nearest_neighbors,
    nearest_neighbors_bnb,
    range_search,
)
from repro.rtree.validate import validate_tree

__all__ = [
    "BranchEntry",
    "LeafEntry",
    "Node",
    "RStarTree",
    "GuttmanRTree",
    "bulk_load_str",
    "bulk_load_curve",
    "hilbert_key_2d",
    "morton_key",
    "TreeQuality",
    "tree_quality",
    "range_search",
    "nearest_neighbors",
    "nearest_neighbors_bnb",
    "incremental_nearest",
    "validate_tree",
]
