"""Space-filling-curve bulk loading: Hilbert (2-d) and Morton (any d).

STR is this library's default packer; Hilbert packing (Kamel & Faloutsos)
is the classic alternative and Morton/Z-order the cheap one.  All three
produce legal R-trees; they differ in how well node rectangles cluster,
which the packing ablation benchmark quantifies through the join's own
cost counters.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence

from repro.errors import GeometryError
from repro.geometry.rectangle import Rect
from repro.rtree.base import RTreeBase
from repro.rtree.bulk import bulk_load_str
from repro.util.validation import require

#: Grid resolution (bits per axis) for curve keys.
DEFAULT_ORDER = 16

CURVES = ("hilbert", "morton", "str")


def morton_key(cell: Sequence[int], order: int = DEFAULT_ORDER) -> int:
    """Z-order (bit-interleaved) key of an integer grid cell."""
    key = 0
    dim = len(cell)
    for bit in range(order):
        for axis in range(dim):
            key |= ((cell[axis] >> bit) & 1) << (bit * dim + axis)
    return key


def hilbert_key_2d(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Hilbert-curve index of 2-d grid cell ``(x, y)``.

    The standard rotate-and-reflect iteration (Hamilton's algorithm /
    the Wikipedia ``xy2d`` routine): walk quadrants from the top bit
    down, accumulating the quadrant's offset and transforming the
    coordinates into the sub-square's frame.
    """
    rx = ry = 0
    key = 0
    s = 1 << (order - 1)
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        key += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return key


def _grid_cells(
    rects: List[Rect], order: int
) -> List[List[int]]:
    """Map rectangle centers onto a ``2^order`` integer grid."""
    if not rects:
        return []
    dim = rects[0].dim
    bounds = Rect.union_of(rects)
    spans = [
        max(hi - lo, 1e-12) for lo, hi in zip(bounds.lo, bounds.hi)
    ]
    cells = []
    limit = (1 << order) - 1
    for rect in rects:
        cell = []
        for axis in range(dim):
            center = (rect.lo[axis] + rect.hi[axis]) / 2.0
            fraction = (center - bounds.lo[axis]) / spans[axis]
            cell.append(min(limit, max(0, int(fraction * limit))))
        cells.append(cell)
    return cells


def bulk_load_curve(
    objects: Sequence[Any],
    curve: str = "hilbert",
    order: int = DEFAULT_ORDER,
    tree: Optional[RTreeBase] = None,
    fill: float = 0.7,
    **tree_kwargs: Any,
) -> RTreeBase:
    """Bulk load by sorting objects along a space-filling curve.

    ``curve`` is ``"hilbert"`` (2-d only), ``"morton"`` (any
    dimension), or ``"str"`` (delegates to :func:`bulk_load_str` so the
    packing ablation can sweep one entry point).  Object ids follow
    the *input* order, exactly like :func:`bulk_load_str`.
    """
    require(curve in CURVES, f"curve must be one of {CURVES}")
    if curve == "str":
        return bulk_load_str(
            objects, tree=tree, fill=fill, **tree_kwargs
        )
    rects = [RTreeBase._rect_of(obj) for obj in objects]
    if curve == "hilbert" and rects and rects[0].dim != 2:
        raise GeometryError(
            "hilbert packing supports 2-d data; use curve='morton' "
            "for higher dimensions"
        )
    cells = _grid_cells(rects, order)
    if curve == "hilbert":
        keys = [hilbert_key_2d(c[0], c[1], order) for c in cells]
    else:
        keys = [morton_key(c, order) for c in cells]
    ranked = sorted(range(len(objects)), key=lambda i: keys[i])

    # Delegate the packing to the STR loader's machinery by feeding it
    # pre-sorted input?  No -- STR re-sorts by coordinates.  Pack
    # directly: consecutive curve-ordered runs become leaves.
    ordered = [objects[i] for i in ranked]
    loaded = _pack_sorted(
        ordered, ranked, tree=tree, fill=fill, **tree_kwargs
    )
    return loaded


def _pack_sorted(
    ordered: Sequence[Any],
    original_ids: Sequence[int],
    tree: Optional[RTreeBase],
    fill: float,
    **tree_kwargs: Any,
) -> RTreeBase:
    """Pack an already curve-ordered object list into a tree."""
    from repro.rtree.entry import BranchEntry, LeafEntry
    from repro.rtree.rstar import RStarTree
    from repro.geometry.point import Point

    require(0.0 < fill <= 1.0, "fill must be in (0, 1]")
    if tree is None:
        dim = (
            RTreeBase._rect_of(ordered[0]).dim if ordered else 2
        )
        tree_kwargs.setdefault("dim", dim)
        tree = RStarTree(**tree_kwargs)
    require(tree.size == 0, "bulk loading requires an empty tree")
    if not ordered:
        return tree

    node_cap = max(2, int(math.ceil(fill * tree.max_entries)))
    entries: List[Any] = []
    for position, obj in enumerate(ordered):
        rect = tree._rect_of(obj)
        payload = (
            obj if isinstance(obj, Point) or hasattr(obj, "mbr")
            else None
        )
        entries.append(
            LeafEntry(rect, original_ids[position], payload)
        )
    tree._next_oid = len(entries)
    tree.size = len(entries)
    old_root = tree.read_node(tree.root_id)
    tree._free_node(old_root)

    level = 0
    while True:
        groups = [
            entries[i:i + node_cap]
            for i in range(0, len(entries), node_cap)
        ]
        # Merge an underfull tail into its neighbour (or split evenly).
        if len(groups) > 1 and len(groups[-1]) < tree.min_entries:
            combined = groups[-2] + groups[-1]
            if len(combined) <= tree.max_entries:
                groups[-2:] = [combined]
            else:
                half = len(combined) // 2
                groups[-2:] = [combined[:half], combined[half:]]
        nodes = []
        for group in groups:
            node = tree._new_node(level=level, entries=group)
            tree._write_node(node)
            nodes.append(node)
        if len(nodes) == 1:
            tree.root_id = nodes[0].page_id
            return tree
        entries = [BranchEntry(n.mbr(), n.page_id) for n in nodes]
        level += 1
