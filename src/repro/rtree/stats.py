"""Structural quality metrics for R-trees.

Packing and insertion algorithms are compared by how well their node
rectangles cluster: sibling overlap and dead space drive every
query's node-access count.  These metrics feed the packing ablation
benchmark and give users a way to judge an index before running
queries on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtree.base import RTreeBase


@dataclass
class TreeQuality:
    """Aggregate structural metrics of one R-tree."""

    nodes: int
    height: int
    avg_fill: float
    total_margin: float
    sibling_overlap: float
    coverage_ratio: float

    def __str__(self) -> str:
        return (
            f"nodes={self.nodes} height={self.height} "
            f"fill={self.avg_fill:.2f} margin={self.total_margin:.4g} "
            f"overlap={self.sibling_overlap:.4g} "
            f"coverage={self.coverage_ratio:.3f}"
        )


def tree_quality(tree: RTreeBase) -> TreeQuality:
    """Measure ``tree``'s structural quality.

    - ``avg_fill``: mean entries-per-node relative to capacity;
    - ``total_margin``: summed node-MBR margins (the R* split
      criterion, aggregated);
    - ``sibling_overlap``: summed pairwise overlap area between
      sibling entry rectangles (0 for a perfectly tiled tree);
    - ``coverage_ratio``: summed leaf-MBR area over the root area
      (>1 means leaves overlap / re-cover space).
    """
    root = tree.root()
    if not root.entries:
        return TreeQuality(1, 1, 0.0, 0.0, 0.0, 0.0)
    root_area = root.mbr().area()
    nodes = 0
    fill = 0.0
    margin = 0.0
    overlap = 0.0
    leaf_area = 0.0
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        nodes += 1
        fill += len(node.entries) / tree.max_entries
        margin += node.mbr().margin()
        entries = node.entries
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                overlap += entries[i].rect.overlap_area(entries[j].rect)
        if node.is_leaf:
            leaf_area += node.mbr().area()
        else:
            for entry in entries:
                stack.append(entry.child_id)
    return TreeQuality(
        nodes=nodes,
        height=tree.height,
        avg_fill=fill / nodes,
        total_margin=margin,
        sibling_overlap=overlap,
        coverage_ratio=leaf_area / root_area if root_area else 0.0,
    )
