"""R-tree nodes.

A node is the payload of one storage page.  ``level`` counts from 0 at
the leaves; a node at level ``L > 0`` holds :class:`BranchEntry` items
whose children are nodes at level ``L - 1``.
"""

from __future__ import annotations

from typing import List, Union

from repro.errors import TreeError
from repro.geometry.rectangle import Rect
from repro.kernels import build_entry_soa
from repro.rtree.entry import BranchEntry, LeafEntry

Entry = Union[LeafEntry, BranchEntry]


class Node:
    """One R-tree node: a level tag and a list of entries.

    The node's region is not stored; it is always recomputed as the
    union of its entry rectangles (see :meth:`mbr`), which keeps parent
    keys and child regions consistent by construction.

    Besides the entry list, a node lazily maintains a *columnar
    mirror* of the entries (:meth:`entries_soa`): contiguous per-axis
    lo/hi numpy arrays the batch distance kernels operate on.  The
    mirror is pure cache -- built on first use, dropped whenever the
    entry list is mutated (every mutation path goes through
    ``RTreeBase._write_node``, which calls :meth:`invalidate_soa`) --
    so the object API is unchanged and numpy stays optional.
    """

    __slots__ = ("page_id", "level", "entries", "_soa")

    def __init__(self, page_id: int, level: int, entries=None) -> None:
        self.page_id = page_id
        self.level = level
        self.entries: List[Entry] = list(entries) if entries else []
        self._soa = None

    @property
    def is_leaf(self) -> bool:
        """True for level-0 nodes, whose entries are data objects."""
        return self.level == 0

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries in the node."""
        if not self.entries:
            raise TreeError(f"node {self.page_id} is empty, has no MBR")
        return Rect.union_of([e.rect for e in self.entries])

    def entries_soa(self):
        """The cached columnar mirror of :attr:`entries`.

        Returns a :class:`repro.kernels.soa.EntrySoA`, or ``None`` when
        numpy is unavailable (callers then use the scalar path).
        """
        soa = self._soa
        if soa is None:
            soa = build_entry_soa(self.entries)
            if soa is not None:
                self._soa = soa
        return soa

    def invalidate_soa(self) -> None:
        """Drop the columnar mirror (the entry list changed)."""
        self._soa = None

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"Node(page={self.page_id}, level={self.level}, "
            f"entries={len(self.entries)})"
        )
