"""R-tree node entries.

Every entry carries a key rectangle.  A :class:`BranchEntry` points at a
child node (by page id); a :class:`LeafEntry` identifies a data object
and -- following the paper's experimental setup -- may store the object
itself directly in the leaf.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


class LeafEntry:
    """An entry of a leaf node: ``(bounding rect, object id, object)``.

    Attributes
    ----------
    rect:
        Minimum bounding rectangle of the object (degenerate for
        points).
    oid:
        Small-integer object identifier, unique within one tree.  The
        semi-join's bit-string seen-set indexes by this.
    obj:
        The object itself (e.g. a :class:`repro.geometry.Point`), or
        ``None`` when the object lives in external storage and only its
        bounding rectangle is indexed.
    """

    __slots__ = ("rect", "oid", "obj")

    kind = "leaf"

    def __init__(self, rect: Rect, oid: int, obj: Any = None) -> None:
        self.rect = rect
        self.oid = oid
        self.obj = obj

    def point_coords(self) -> Optional[Tuple[float, ...]]:
        """The payload's coordinates when it is a point, else ``None``.

        The columnar mirror (:mod:`repro.kernels.soa`) uses this to
        decide whether a leaf qualifies for the batched exact
        point-distance path; branch entries have no such method, which
        is itself the signal that a node holds child pointers.
        """
        obj = self.obj
        if isinstance(obj, Point):
            return obj.coords
        return None

    def __repr__(self) -> str:
        return f"LeafEntry(oid={self.oid}, rect={self.rect!r})"


class BranchEntry:
    """An entry of a non-leaf node: ``(bounding rect, child page id)``."""

    __slots__ = ("rect", "child_id")

    kind = "branch"

    def __init__(self, rect: Rect, child_id: int) -> None:
        self.rect = rect
        self.child_id = child_id

    def __repr__(self) -> str:
        return f"BranchEntry(child={self.child_id}, rect={self.rect!r})"


def entry_size_bytes(dim: int) -> int:
    """Simulated byte size of one entry.

    Approximates the paper's layout: ``2 * dim`` 8-byte coordinates for
    the key rectangle plus a 4-byte pointer/identifier.  With ``dim=2``
    that is 36 bytes, giving a fan-out of about 28 for 1 KB pages; the
    paper quotes 50, which corresponds to 4-byte floats -- fan-out is
    configurable on the tree, so either layout can be matched exactly.
    """
    return 16 * dim + 4
