"""Physical plans: executable Volcano-style operator trees.

:func:`build_physical_plan` lowers a logical plan
(:mod:`repro.query.logical`) into a tree of physical operators:

``Limit(RowProject(RemapOids(DistanceJoinOp(side, side))))``

where each ``side`` is an :class:`IndexScan` optionally wrapped in one
of the two predicate implementations the paper's Section 5 discusses:

- :class:`PairFilterPushdown` -- the **pipeline** plan: the predicate
  rides into the join as a ``pair_filter``, so non-qualifying objects
  never enter the queue and the join still streams incrementally;
- :class:`PrefilterMaterialize` -- the **prefilter** plan: the
  qualifying subset is materialized into a temporary index first (the
  paper: best for highly selective predicates, at the price of an
  index build before the first result).

The choice between them is a *planner rule* here: under
``strategy="auto"`` both plans are priced with the Section 5 cost
model (:mod:`repro.query.costmodel`) and the cheaper shape is built;
the costs stay annotated on the join node so ``EXPLAIN`` can show
both.  ``execute``, ``EXPLAIN`` and ``EXPLAIN ANALYZE`` all walk this
same tree -- EXPLAIN renders it without opening it (no temporary
index is built), execution opens it and streams rows.
"""

from __future__ import annotations

import contextlib
import itertools
import math
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.core.distance_join import IncrementalDistanceJoin, JoinResult
from repro.core.pairs import NODE, Pair
from repro.core.reverse import ReverseDistanceJoin, ReverseDistanceSemiJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.errors import QueryError
from repro.parallel.join import (
    ParallelDistanceJoin,
    ParallelDistanceSemiJoin,
)
from repro.errors import CursorError
from repro.query.ast_nodes import Query
from repro.query.costmodel import JoinCostModel, estimate_build_cost
from repro.query.logical import LogicalPlan, build_logical_plan
from repro.rtree.base import DEFAULT_MAX_ENTRIES
from repro.rtree.bulk import bulk_load_str

# NOTE: repro.shard depends on this package (its catalogs carry
# cost-model stats), so the shard operators are imported lazily inside
# the functions that need them.
from repro.util.validation import require

_INF = float("inf")

STRATEGIES = ("auto", "pipeline", "prefilter")

__all__ = [
    "STRATEGIES",
    "Row",
    "PlanExplanation",
    "OperatorState",
    "PhysicalNode",
    "IndexScan",
    "PrefilterMaterialize",
    "PairFilterPushdown",
    "DistanceJoinOp",
    "RemapOids",
    "RowProject",
    "Limit",
    "PhysicalPlan",
    "build_physical_plan",
    "build_standing_join",
    "materialize_filtered",
]


class Row(NamedTuple):
    """One output tuple of a distance (semi-)join query."""

    d: float
    oid1: int
    geom1: Any
    oid2: int
    geom2: Any


class PlanExplanation(NamedTuple):
    """Output of :meth:`repro.query.executor.Database.explain`."""

    operator: str
    strategy: str
    relation1: str
    relation2: str
    outer_size: int
    inner_size: int
    min_distance: float
    max_distance: float
    stop_after: Optional[int]
    selectivity1: float
    selectivity2: float
    estimated_result_pairs: float
    estimated_node_io: float
    estimated_dist_calcs: float
    estimated_cost: float
    pipeline_cost: float
    prefilter_cost: float
    parallel: Optional[int] = None
    tree: Optional[str] = None
    shards: Optional[int] = None
    shard_route: Optional[Dict[str, Any]] = None

    def pretty(self) -> str:
        """A human-readable plan description."""
        bound = (
            f"STOP AFTER {self.stop_after}"
            if self.stop_after is not None else "unbounded"
        )
        lines = [
            f"{self.operator}({self.relation1}[{self.outer_size:,}], "
            f"{self.relation2}[{self.inner_size:,}])",
            f"  strategy: {self.strategy}",
            f"  distance range: [{self.min_distance:g}, "
            f"{self.max_distance:g}], {bound}",
        ]
        if self.parallel is not None:
            lines.append(f"  parallel workers: {self.parallel}")
        if self.shards is not None:
            lines.append(f"  shards: {self.shards} per relation")
        if self.shard_route is not None:
            route = self.shard_route
            lines.append(
                f"  shard route ({route['method']}): "
                f"{route['pairs_planned']}/{route['pairs_total']} "
                f"pairs planned, {route['range_pruned']} range-pruned"
            )
        if self.selectivity1 < 1.0 or self.selectivity2 < 1.0:
            lines.append(
                f"  predicate selectivity: "
                f"{self.relation1}={self.selectivity1:.3f}, "
                f"{self.relation2}={self.selectivity2:.3f}"
            )
            lines.append(
                f"  plan costs: pipeline={self.pipeline_cost:,.0f}, "
                f"prefilter={self.prefilter_cost:,.0f}"
            )
        lines += [
            f"  est. result pairs: {self.estimated_result_pairs:,.0f}",
            f"  est. node I/O:     {self.estimated_node_io:,.0f}",
            f"  est. dist. calcs:  {self.estimated_dist_calcs:,.0f}",
            f"  est. cost:         {self.estimated_cost:,.0f}",
        ]
        if self.tree:
            lines.append("  plan:")
            lines += [
                "    " + line for line in self.tree.splitlines()
            ]
        return "\n".join(lines)


def materialize_filtered(
    tree: Any, matches: Callable[[int], bool]
) -> Tuple[Any, List[int]]:
    """Materialize the qualifying subset into a temporary index;
    returns the tree and the new-oid -> original-oid mapping.

    The temporary index inherits the source tree's storage
    configuration -- fanout, page size and buffer-pool capacity -- so
    its ``node_io`` counters stay comparable with a join over the
    original index instead of silently reverting to defaults.
    """
    kept = sorted(
        (entry.oid, entry.obj if entry.obj is not None else entry.rect)
        for entry in tree.items()
        if matches(entry.oid)
    )
    mapping = [oid for oid, __ in kept]
    objects = [obj for __, obj in kept]
    build_kwargs: Dict[str, Any] = dict(
        max_entries=getattr(tree, "max_entries", DEFAULT_MAX_ENTRIES),
        dim=tree.dim,
        counters=tree.counters,
    )
    store = getattr(tree, "store", None)
    if store is not None:
        build_kwargs["page_size"] = store.page_size
    pool = getattr(tree, "pool", None)
    if pool is not None:
        build_kwargs["buffer_pages"] = pool.capacity
    sub_tree = bulk_load_str(objects, **build_kwargs)
    return sub_tree, mapping


def _maybe_span(obs: Optional[Any], name: str):
    return obs.span(name) if obs is not None \
        else contextlib.nullcontext()


def _compose_pair_filter(
    match1: Optional[Callable[[int], bool]],
    match2: Optional[Callable[[int], bool]],
) -> Optional[Callable[[Pair], bool]]:
    """Fold the two sides' oid predicates into one join pair filter."""
    if match1 is None and match2 is None:
        return None

    def keep(pair: Pair) -> bool:
        if (
            match1 is not None
            and pair.item1.kind != NODE
            and not match1(pair.item1.oid)
        ):
            return False
        if (
            match2 is not None
            and pair.item2.kind != NODE
            and not match2(pair.item2.oid)
        ):
            return False
        return True

    return keep


class ResolvedInput(NamedTuple):
    """One join input, ready to hand to the operator constructor."""

    tree: Any
    mapping: Optional[List[int]]  # new-oid -> original oid, or None
    matcher: Optional[Callable[[int], bool]]  # pushed-down predicate


class OperatorState(NamedTuple):
    """One node of a saved physical-plan cursor.

    A plan cursor is a tree of these mirroring the operator tree:
    ``operator`` names the class that wrote it, ``version`` its payload
    layout, ``payload`` the class-specific picklable state, and
    ``children`` the saved subtrees.  Restore by rebuilding an
    identical plan (same SQL, same strategy) and calling
    :meth:`PhysicalNode.load` on its root.
    """

    operator: str
    version: int
    payload: Any
    children: Tuple["OperatorState", ...]


class PhysicalNode:
    """Base class: tree shape plus the EXPLAIN rendering."""

    #: Bump in a subclass when its :meth:`_state_payload` layout changes.
    STATE_VERSION = 1

    def children(self) -> Tuple["PhysicalNode", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def walk(self) -> Iterator["PhysicalNode"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # suspendable cursor
    # ------------------------------------------------------------------

    def save(self) -> OperatorState:
        """Snapshot this operator subtree as a picklable cursor."""
        return OperatorState(
            operator=type(self).__name__,
            version=self.STATE_VERSION,
            payload=self._state_payload(),
            children=tuple(child.save() for child in self.children()),
        )

    def load(self, state: OperatorState) -> None:
        """Restore a :meth:`save` cursor into this operator subtree.

        Call on a freshly built plan of the same shape (same query,
        same strategy); children restore bottom-up so a parent's
        payload can rely on its restored inputs.
        """
        if state.operator != type(self).__name__:
            raise CursorError(
                f"cursor node was saved by {state.operator!r}, "
                f"found {type(self).__name__!r} -- the plan shape "
                "changed since the cursor was taken"
            )
        if state.version != self.STATE_VERSION:
            raise CursorError(
                f"unsupported {state.operator} cursor version "
                f"{state.version!r} (this build reads "
                f"{self.STATE_VERSION})"
            )
        children = self.children()
        if len(children) != len(state.children):
            raise CursorError(
                f"cursor for {state.operator} has "
                f"{len(state.children)} children, plan has "
                f"{len(children)}"
            )
        for child, child_state in zip(children, state.children):
            child.load(child_state)
        self._load_payload(state.payload)

    def _state_payload(self) -> Any:
        """Subclass hook: this operator's own picklable state."""
        return None

    def _load_payload(self, payload: Any) -> None:
        """Subclass hook: restore what :meth:`_state_payload` wrote."""


class IndexScan(PhysicalNode):
    """Expose one relation's index to the join."""

    def __init__(self, relation: str, tree: Any) -> None:
        self.relation = relation
        self.tree = tree

    def label(self) -> str:
        kind = type(self.tree).__name__
        return (
            f"IndexScan({self.relation}, {kind}, "
            f"{len(self.tree):,} objects)"
        )

    def resolve(self, obs: Optional[Any] = None) -> ResolvedInput:
        return ResolvedInput(self.tree, None, None)

    def _state_payload(self) -> Any:
        return {
            "relation": self.relation,
            "size": len(self.tree),
            "dim": self.tree.dim,
        }

    def _load_payload(self, payload: Any) -> None:
        if (
            payload["relation"] != self.relation
            or payload["size"] != len(self.tree)
            or payload["dim"] != self.tree.dim
        ):
            raise CursorError(
                f"cursor was taken against relation "
                f"{payload['relation']!r} ({payload['size']} objects, "
                f"dim {payload['dim']}); the plan scans "
                f"{self.relation!r} ({len(self.tree)} objects, "
                f"dim {self.tree.dim})"
            )


class PrefilterMaterialize(PhysicalNode):
    """The prefilter plan's side: build a temporary index over the
    qualifying subset (resolved lazily, so EXPLAIN never builds it;
    the build is idempotent once opened)."""

    def __init__(
        self,
        child: IndexScan,
        matcher: Callable[[int], bool],
        selectivity: float,
    ) -> None:
        self.child = child
        self.matcher = matcher
        self.selectivity = selectivity
        self._resolved: Optional[ResolvedInput] = None

    def children(self) -> Tuple[PhysicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"PrefilterMaterialize(sel={self.selectivity:.3f})"

    def resolve(self, obs: Optional[Any] = None) -> ResolvedInput:
        if self._resolved is None:
            source = self.child.resolve(obs).tree
            with _maybe_span(obs, "op.PrefilterMaterialize"):
                tree, mapping = materialize_filtered(
                    source, self.matcher
                )
            self._resolved = ResolvedInput(tree, mapping, None)
        return self._resolved

    def _state_payload(self) -> Any:
        # The materialized index itself is not saved:
        # materialize_filtered is deterministic (sorted oids, bulk
        # load), so a resume rebuilds the identical temporary index on
        # demand and the join cursor's node ids stay valid.
        return {"selectivity": self.selectivity}


class PairFilterPushdown(PhysicalNode):
    """The pipeline plan's side: the predicate travels into the join
    as a pair filter (composed in :class:`DistanceJoinOp`)."""

    def __init__(
        self,
        child: IndexScan,
        matcher: Callable[[int], bool],
        selectivity: float,
    ) -> None:
        self.child = child
        self.matcher = matcher
        self.selectivity = selectivity

    def children(self) -> Tuple[PhysicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"PairFilterPushdown(sel={self.selectivity:.3f})"

    def resolve(self, obs: Optional[Any] = None) -> ResolvedInput:
        base = self.child.resolve(obs)
        return ResolvedInput(base.tree, base.mapping, self.matcher)

    def _state_payload(self) -> Any:
        # The matcher is a closure over database columns; the rebuilt
        # plan recreates it from the same query text.
        return {"selectivity": self.selectivity}


class DistanceJoinOp(PhysicalNode):
    """The distance (semi-)join operator.

    ``open()`` resolves both inputs (building prefilter indexes if the
    plan has any), composes pushed-down predicates into one
    ``pair_filter`` (a caller-supplied ``pair_filter`` kwarg wins) and
    constructs the join iterator exactly once.  The planner's cost
    annotations (both strategies' estimates) live here for EXPLAIN.
    """

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        operator_cls: type,
        kwargs: Dict[str, Any],
        strategy: str,
    ) -> None:
        self.left = left
        self.right = right
        self.operator_cls = operator_cls
        self.kwargs = kwargs
        self.strategy = strategy
        # Cost annotations arrive lazily (see PhysicalPlan.explanation):
        # plain execution never prices plans it was not asked to choose
        # between, so it skips the cost model's tree walk entirely.
        self.pipeline_cost: Optional[float] = None
        self.prefilter_cost: Optional[float] = None
        self.mapping1: Optional[List[int]] = None
        self.mapping2: Optional[List[int]] = None
        self._join: Optional[IncrementalDistanceJoin] = None

    def children(self) -> Tuple[PhysicalNode, ...]:
        return (self.left, self.right)

    def annotate_costs(
        self, pipeline_cost: float, prefilter_cost: float
    ) -> None:
        self.pipeline_cost = pipeline_cost
        self.prefilter_cost = prefilter_cost

    def label(self) -> str:
        cost = self.estimated_cost
        if cost is None:
            return f"{self.operator_cls.__name__}[{self.strategy}]"
        return (
            f"{self.operator_cls.__name__}"
            f"[{self.strategy}, est. cost {cost:,.0f}]"
        )

    @property
    def estimated_cost(self) -> Optional[float]:
        return (
            self.prefilter_cost if self.strategy == "prefilter"
            else self.pipeline_cost
        )

    def open(self) -> IncrementalDistanceJoin:
        if self._join is None:
            obs = self.kwargs.get("observer")
            with _maybe_span(obs, "op.DistanceJoin"):
                left = self.left.resolve(obs)
                right = self.right.resolve(obs)
                self.mapping1 = left.mapping
                self.mapping2 = right.mapping
                kwargs = dict(self.kwargs)
                pair_filter = _compose_pair_filter(
                    left.matcher, right.matcher
                )
                if pair_filter is not None:
                    kwargs.setdefault("pair_filter", pair_filter)
                self._join = self.operator_cls(
                    left.tree, right.tree, **kwargs
                )
        return self._join

    def results(self) -> Iterator[JoinResult]:
        return iter(self.open())

    def progress_signals(self) -> Optional[Dict[str, Any]]:
        """The live join's raw progress facts (None before open)."""
        join = self._join
        if join is None:
            return None
        probe = getattr(join, "progress_signals", None)
        return probe() if probe is not None else None

    def _state_payload(self) -> Any:
        return {
            "strategy": self.strategy,
            "join": self._join.save() if self._join is not None
            else None,
        }

    def _load_payload(self, payload: Any) -> None:
        if payload["strategy"] != self.strategy:
            raise CursorError(
                f"cursor was taken under strategy "
                f"{payload['strategy']!r}; rebuild the plan with that "
                f"strategy (got {self.strategy!r})"
            )
        cursor = payload["join"]
        if cursor is None:
            # Suspended before the join was ever opened: a fresh open
            # is exactly equivalent.
            return
        loader = getattr(self.operator_cls, "load", None)
        if loader is None:
            raise CursorError(
                f"{self.operator_cls.__name__} does not support "
                "cursor restore"
            )
        obs = self.kwargs.get("observer")
        with _maybe_span(obs, "op.DistanceJoin"):
            left = self.left.resolve(obs)
            right = self.right.resolve(obs)
            self.mapping1 = left.mapping
            self.mapping2 = right.mapping
            # Recompose the pushed-down predicate closure that save()
            # had to strip (a caller-supplied pair_filter kwarg wins,
            # matching open()).
            pair_filter = self.kwargs.get(
                "pair_filter"
            ) or _compose_pair_filter(left.matcher, right.matcher)
            self._join = loader(
                cursor, left.tree, right.tree,
                counters=self.kwargs.get("counters"),
                observer=obs,
                pair_filter=pair_filter,
            )


class RemapOids(PhysicalNode):
    """Translate prefilter-index oids back to original object ids
    (identity when neither side was materialized)."""

    def __init__(self, child: DistanceJoinOp) -> None:
        self.child = child

    def children(self) -> Tuple[PhysicalNode, ...]:
        return (self.child,)

    def results(self) -> Iterator[JoinResult]:
        join = self.child.open()
        mapping1 = self.child.mapping1
        mapping2 = self.child.mapping2
        if mapping1 is None and mapping2 is None:
            yield from join
            return
        for result in join:
            oid1 = mapping1[result.oid1] if mapping1 is not None \
                else result.oid1
            oid2 = mapping2[result.oid2] if mapping2 is not None \
                else result.oid2
            yield JoinResult(
                result.distance, oid1, result.obj1, oid2, result.obj2
            )


class RowProject(PhysicalNode):
    """Shape join results into the SELECT list's row tuples."""

    def __init__(self, child: RemapOids) -> None:
        self.child = child

    def children(self) -> Tuple[PhysicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "RowProject(d, oid1, geom1, oid2, geom2)"

    def rows(self) -> Iterator[Row]:
        for result in self.child.results():
            yield Row(
                result.distance,
                result.oid1, result.obj1,
                result.oid2, result.obj2,
            )


class Limit(PhysicalNode):
    """``STOP AFTER n`` safety net.

    The real bounding is the join's own ``max_pairs`` (so the
    incremental algorithm stops expanding); this operator only
    guarantees the row stream never exceeds the bound, pulling no
    extra rows beyond it.
    """

    def __init__(self, child: RowProject, count: int) -> None:
        self.child = child
        self.count = count
        #: Rows already delivered; a resumed plan only emits the rest.
        self.emitted = 0

    def children(self) -> Tuple[PhysicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit({self.count})"

    def rows(self) -> Iterator[Row]:
        remaining = max(0, self.count - self.emitted)
        for row in itertools.islice(self.child.rows(), remaining):
            self.emitted += 1
            yield row

    def _state_payload(self) -> Any:
        return {"count": self.count, "emitted": self.emitted}

    def _load_payload(self, payload: Any) -> None:
        if payload["count"] != self.count:
            raise CursorError(
                f"cursor was taken with STOP AFTER {payload['count']}; "
                f"the plan stops after {self.count}"
            )
        self.emitted = payload["emitted"]


class PhysicalPlan:
    """An executable plan: the operator tree plus its explanation.

    The same instance serves all three consumers: ``explain`` renders
    :attr:`explanation` (without opening anything), ``execute``
    streams :meth:`rows`, and ``EXPLAIN ANALYZE`` does both.
    """

    def __init__(
        self,
        root: PhysicalNode,
        join_op: DistanceJoinOp,
        logical: LogicalPlan,
        explanation_factory: Callable[[], PlanExplanation],
    ) -> None:
        self.root = root
        self.join_op = join_op
        self.logical = logical
        self.query = logical.query
        self._explanation_factory = explanation_factory
        self._explanation: Optional[PlanExplanation] = None

    @property
    def explanation(self) -> PlanExplanation:
        """The EXPLAIN view of this plan (cost estimates are computed
        on first access; plain execution never needs them)."""
        if self._explanation is None:
            self._explanation = self._explanation_factory()
        return self._explanation

    def open_join(self) -> IncrementalDistanceJoin:
        """Build (once) and return the underlying join iterator."""
        return self.join_op.open()

    def rows(self) -> Iterator[Row]:
        """Open the plan eagerly and stream result rows.

        Opening is eager so the cost of temporary index builds and
        join construction is paid at call time (matching the join
        constructors' own semantics), not at first ``next()``.
        """
        self.join_op.open()
        root = self.root
        assert isinstance(root, (Limit, RowProject))
        return root.rows()

    def progress_signals(self) -> Optional[Dict[str, Any]]:
        """Raw progress facts for the whole plan (None before open).

        Delegates to the join operator, then overlays the plan-level
        emission bound: a ``Limit`` root knows how many rows actually
        left the plan (``produced`` at the join can run ahead of
        emission by one pulled-but-unreturned row, and replays after a
        semi-join restart).  When the plan was already priced (its
        explanation computed -- never forced here, pricing walks both
        relations), the cost model's cardinality rides along as
        ``total_hint``.
        """
        signals = self.join_op.progress_signals()
        if signals is None:
            return None
        root = self.root
        if isinstance(root, Limit):
            signals["emitted"] = root.emitted
            if root.count and root.emitted >= root.count:
                signals["done"] = True
        if self._explanation is not None:
            signals["total_hint"] = (
                self._explanation.estimated_result_pairs
            )
        return signals

    def save(self) -> OperatorState:
        """Snapshot the whole operator tree as a picklable cursor."""
        return self.root.save()

    def restore(self, state: OperatorState) -> None:
        """Load a :meth:`save` cursor into this freshly built plan."""
        self.root.load(state)

    def pretty(self) -> str:
        return self.root.pretty()


def _matcher(
    db: Any, query: Query, relation: str
) -> Tuple[Optional[Callable[[int], bool]], float]:
    """An oid predicate and its selectivity for one relation."""
    predicates = [
        p for p in query.attribute_predicates
        if p.relation == relation
    ]
    if not predicates:
        return None, 1.0
    columns = [
        (db.attribute(relation, p.attribute), p)
        for p in predicates
    ]

    def matches(oid: int) -> bool:
        return all(p.matches(col[oid]) for col, p in columns)

    size = len(db.relation(relation))
    selectivity = (
        sum(1 for oid in range(size) if matches(oid)) / size
        if size else 1.0
    )
    return matches, selectivity


def _operator_for(query: Query) -> type:
    """Map the logical join kind onto an operator class."""
    if query.shards is not None:
        from repro.shard.router import (
            ShardRouterJoin,
            ShardRouterSemiJoin,
        )

        if query.parallel is not None:
            raise QueryError(
                "SHARDS and PARALLEL are mutually exclusive hints"
            )
        if query.descending:
            raise QueryError(
                "SHARDS does not support ORDER BY ... DESC "
                "(the shard router's merge is nearest-first)"
            )
        return (
            ShardRouterSemiJoin if query.is_semi_join
            else ShardRouterJoin
        )
    if query.parallel is not None:
        if query.descending:
            raise QueryError(
                "PARALLEL does not support ORDER BY ... DESC "
                "(the parallel merge is nearest-first)"
            )
        return (
            ParallelDistanceSemiJoin if query.is_semi_join
            else ParallelDistanceJoin
        )
    if query.is_semi_join:
        return (
            ReverseDistanceSemiJoin if query.descending
            else IncrementalDistanceSemiJoin
        )
    return (
        ReverseDistanceJoin if query.descending
        else IncrementalDistanceJoin
    )


def _price_strategies(
    query: Query,
    tree1: Any,
    tree2: Any,
    selectivity1: float,
    selectivity2: float,
) -> Tuple[str, float, float]:
    """The planner rule: price the two Section 5 plans; returns
    (choice, cost_pipeline, cost_prefilter)."""
    __, dmax = query.distance_bounds()
    model = JoinCostModel(tree1, tree2)
    pair_selectivity = selectivity1 * selectivity2
    # Pipeline: the join must surface enough raw pairs that the
    # qualifying subset reaches the requested count.
    raw_pairs = None
    if query.stop_after is not None and pair_selectivity > 0:
        raw_pairs = int(
            math.ceil(query.stop_after / pair_selectivity)
        )
    pipeline = model.estimate(
        max_distance=dmax,
        max_pairs=raw_pairs,
        semi_join=query.is_semi_join,
    ).total_cost()
    # Prefilter: pay the index builds, then join the small inputs.
    scaled = model.scaled(selectivity1, selectivity2)
    build = 0.0
    if selectivity1 < 1.0:
        build += estimate_build_cost(
            int(len(tree1) * selectivity1),
            getattr(tree1, "max_entries", DEFAULT_MAX_ENTRIES),
        )
    if selectivity2 < 1.0:
        build += estimate_build_cost(
            int(len(tree2) * selectivity2),
            getattr(tree2, "max_entries", DEFAULT_MAX_ENTRIES),
        )
    prefilter = build + scaled.estimate(
        max_distance=dmax,
        max_pairs=query.stop_after,
        semi_join=query.is_semi_join,
    ).total_cost()
    choice = "prefilter" if prefilter < pipeline else "pipeline"
    return choice, pipeline, prefilter


def build_physical_plan(
    db: Any,
    query: Query,
    strategy: str = "auto",
    join_kwargs: Optional[Dict[str, Any]] = None,
) -> PhysicalPlan:
    """Lower ``query`` into an executable physical plan.

    ``strategy`` forces the predicate plan (``pipeline`` /
    ``prefilter``); ``auto`` applies the cost rule.  ``join_kwargs``
    are forwarded to the join operator constructor and take precedence
    over planner defaults (e.g. a caller ``pair_filter`` suppresses
    the pushed-down predicate filter).
    """
    require(strategy in STRATEGIES,
            f"strategy must be one of {STRATEGIES}")
    if query.watch:
        raise QueryError(
            "WATCH queries are standing registrations, not pull "
            "plans; use Database.watch() (or build_standing_join)"
        )
    logical = build_logical_plan(query)
    tree1 = db.relation(query.relation1)
    tree2 = db.relation(query.relation2)
    match1, selectivity1 = _matcher(db, query, query.relation1)
    match2, selectivity2 = _matcher(db, query, query.relation2)
    dmin, dmax = query.distance_bounds()
    operator_cls = _operator_for(query)
    has_predicates = match1 is not None or match2 is not None

    def price() -> Tuple[str, float, float]:
        if has_predicates:
            return _price_strategies(
                query, tree1, tree2, selectivity1, selectivity2
            )
        # Without predicates the two shapes coincide; one pipeline
        # estimate covers both.
        cost = JoinCostModel(tree1, tree2).estimate(
            max_distance=dmax,
            max_pairs=query.stop_after,
            semi_join=query.is_semi_join,
        ).total_cost()
        return "pipeline", cost, cost

    # Planner rule: the cost model only runs when it has a choice to
    # make (auto + predicates) -- or lazily, for EXPLAIN (below).
    costs: Optional[Tuple[float, float]] = None
    if strategy != "auto":
        strategy_used = strategy
    elif has_predicates:
        strategy_used, pipeline_cost, prefilter_cost = price()
        costs = (pipeline_cost, prefilter_cost)
    else:
        strategy_used = "pipeline"

    kwargs: Dict[str, Any] = dict(
        metric=db.metric,
        min_distance=dmin,
        max_distance=dmax,
        max_pairs=query.stop_after,
        counters=db.counters,
    )
    kwargs.update(join_kwargs or {})
    if query.parallel is not None:
        kwargs.setdefault("workers", query.parallel)
    if query.shards is not None:
        kwargs.setdefault("shards", query.shards)

    def side(
        relation: str,
        tree: Any,
        matcher: Optional[Callable[[int], bool]],
        selectivity: float,
    ) -> PhysicalNode:
        scan = IndexScan(relation, tree)
        if matcher is None:
            return scan
        if strategy_used == "prefilter":
            return PrefilterMaterialize(scan, matcher, selectivity)
        return PairFilterPushdown(scan, matcher, selectivity)

    join_op = DistanceJoinOp(
        left=side(query.relation1, tree1, match1, selectivity1),
        right=side(query.relation2, tree2, match2, selectivity2),
        operator_cls=operator_cls,
        kwargs=kwargs,
        strategy=strategy_used,
    )
    if costs is not None:
        join_op.annotate_costs(*costs)
    project = RowProject(RemapOids(join_op))
    root: PhysicalNode = (
        Limit(project, query.stop_after)
        if query.stop_after is not None else project
    )

    def shard_route_info() -> Optional[Dict[str, Any]]:
        """Describe the shard router's plan without constructing the
        operator (no counters charged beyond catalog/stat builds)."""
        if query.shards is None:
            return None
        from repro.shard.catalog import catalog_for
        from repro.shard.router import plan_shard_pairs

        catalogs = kwargs.get("catalogs")
        method = kwargs.get("partition_method", "str")
        shards = kwargs.get("shards", query.shards)
        if catalogs is not None:
            cat1, cat2 = catalogs
        else:
            cat1 = catalog_for(
                tree1, shards, method, counters=db.counters
            )
            cat2 = catalog_for(
                tree2, shards, method, counters=db.counters
            )
        pairs, range_pruned, __ = plan_shard_pairs(
            cat1, cat2, db.metric, dmin, dmax
        )
        return {
            "shards": (len(cat1), len(cat2)),
            "method": method,
            "pairs_total": len(cat1) * len(cat2),
            "pairs_planned": len(pairs),
            "range_pruned": range_pruned,
            "order": [
                (pair.sid1, pair.sid2, pair.bound) for pair in pairs
            ],
        }

    def explanation_factory() -> PlanExplanation:
        if join_op.pipeline_cost is None:
            __, pipeline_cost, prefilter_cost = price()
            join_op.annotate_costs(pipeline_cost, prefilter_cost)
        detail_model = JoinCostModel(tree1, tree2)
        if strategy_used == "prefilter":
            detail_model = detail_model.scaled(
                selectivity1, selectivity2
            )
        estimate = detail_model.estimate(
            max_distance=dmax,
            max_pairs=query.stop_after,
            semi_join=query.is_semi_join,
        )
        assert join_op.pipeline_cost is not None
        assert join_op.prefilter_cost is not None
        assert join_op.estimated_cost is not None
        return PlanExplanation(
            operator=operator_cls.__name__,
            strategy=strategy_used,
            relation1=query.relation1,
            relation2=query.relation2,
            outer_size=len(tree1),
            inner_size=len(tree2),
            min_distance=dmin,
            max_distance=dmax,
            stop_after=query.stop_after,
            selectivity1=selectivity1,
            selectivity2=selectivity2,
            estimated_result_pairs=estimate.result_pairs,
            estimated_node_io=estimate.node_io,
            estimated_dist_calcs=estimate.dist_calcs,
            estimated_cost=join_op.estimated_cost,
            pipeline_cost=join_op.pipeline_cost,
            prefilter_cost=join_op.prefilter_cost,
            parallel=query.parallel,
            tree=root.pretty(),
            shards=query.shards,
            shard_route=shard_route_info(),
        )

    return PhysicalPlan(
        root=root,
        join_op=join_op,
        logical=logical,
        explanation_factory=explanation_factory,
    )


def build_standing_join(
    db: Any,
    query: Query,
    *,
    counters: Optional[Any] = None,
    observer: Optional[Any] = None,
    frontier: Optional[int] = None,
    **join_kwargs: Any,
) -> Any:
    """Lower a ``WATCH`` query into a registered standing join.

    The standing counterpart of :func:`build_physical_plan`: resolves
    the relations, folds the WHERE distance range and ``STOP AFTER``
    into a :class:`~repro.core.spec.JoinSpec`, and bootstraps a
    :class:`~repro.live.StandingJoin` whose initial result is already
    queued as ADD deltas.  ``join_kwargs`` override individual spec
    knobs (``node_policy``, ``tie_break``, ...).
    """
    from repro.core.spec import JoinSpec
    from repro.live import StandingJoin

    if not query.watch:
        raise QueryError(
            "build_standing_join needs a WATCH query; use "
            "build_physical_plan for pull queries"
        )
    tree1 = db.relation(query.relation1)
    tree2 = db.relation(query.relation2)
    dmin, dmax = query.distance_bounds()
    knobs: Dict[str, Any] = dict(
        metric=db.metric,
        min_distance=dmin,
        max_distance=dmax,
        max_pairs=query.stop_after,
    )
    knobs.update(join_kwargs)
    return StandingJoin(
        tree1, tree2, JoinSpec(**knobs),
        counters=counters if counters is not None else db.counters,
        observer=observer,
        frontier=frontier,
    )
