"""AST for the mini SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Comparison:
    """A comparison of the distance alias against a constant:
    ``d <op> value`` with ``op`` in ``<, <=, >, >=, =``."""

    op: str
    value: float


@dataclass
class AttributePredicate:
    """A selection on a relation attribute: ``rel.attr <op> value``.

    The paper's running example -- "find the city nearest to any
    river, such that the city has a population of more than
    5 million" -- is exactly one of these on top of a distance join
    (Sections 1 and 5)."""

    relation: str
    attribute: str
    op: str
    value: float

    def matches(self, attribute_value: float) -> bool:
        """Evaluate the predicate on one attribute value."""
        if self.op == "<":
            return attribute_value < self.value
        if self.op == "<=":
            return attribute_value <= self.value
        if self.op == ">":
            return attribute_value > self.value
        if self.op == ">=":
            return attribute_value >= self.value
        return attribute_value == self.value


@dataclass
class Query:
    """A parsed distance (semi-)join query (the paper's Figure 1).

    Attributes
    ----------
    relation1, relation2:
        Names of the joined relations, in FROM order.
    attr1, attr2:
        The spatial attributes named in the ``DISTANCE(...)`` term.
    alias:
        The ``AS`` alias of the distance term (default ``d``).
    select_min:
        True when the select list contains ``MIN(d)`` -- together with
        ``group_by`` this marks a distance semi-join (Figure 1b).
    group_by:
        The ``GROUP BY`` target ``(relation, attribute)`` or None.
    comparisons:
        Conjunctive distance predicates from the WHERE clause.
    attribute_predicates:
        Conjunctive non-spatial selections (``rel.attr <op> value``).
    descending:
        True for ``ORDER BY d DESC`` (reverse/farthest-first).
    stop_after:
        The ``STOP AFTER n`` bound, or None.
    parallel:
        The ``PARALLEL n`` worker-count hint, or None (sequential).
    shards:
        The ``SHARDS n`` hint, or None.  Routes the join through
        per-shard R-tree partitions with MINDIST-ordered shard pairs
        (the shard router); mutually exclusive with ``parallel``.
    explain, analyze:
        An ``EXPLAIN`` prefix asks for the plan instead of rows;
        ``EXPLAIN ANALYZE`` additionally executes the query and
        annotates the plan with actual counters and stage timings.
    watch:
        A ``WATCH`` prefix registers the query as a standing join
        whose result is maintained under updates and published as a
        delta stream (see docs/LIVE.md).  The optional trailing
        ``NOTIFY`` is declarative emphasis -- standing queries always
        notify -- and is only legal together with ``WATCH``.
    """

    relation1: str = ""
    relation2: str = ""
    attr1: str = "geom"
    attr2: str = "geom"
    alias: str = "d"
    select_min: bool = False
    group_by: Optional[Tuple[str, str]] = None
    comparisons: List[Comparison] = field(default_factory=list)
    attribute_predicates: List[AttributePredicate] = field(
        default_factory=list
    )
    descending: bool = False
    stop_after: Optional[int] = None
    parallel: Optional[int] = None
    shards: Optional[int] = None
    explain: bool = False
    analyze: bool = False
    watch: bool = False

    @property
    def is_semi_join(self) -> bool:
        """Figure 1(b): GROUP BY on the first relation's attribute."""
        return self.group_by is not None

    def distance_bounds(self) -> Tuple[float, float]:
        """Fold the WHERE comparisons into a ``[dmin, dmax]`` range.

        Strict comparisons are treated as their closed counterparts;
        the executor documents this (distances are continuous, so the
        practical difference is a measure-zero boundary).
        """
        dmin = 0.0
        dmax = float("inf")
        for cmp_ in self.comparisons:
            if cmp_.op in (">", ">="):
                dmin = max(dmin, cmp_.value)
            elif cmp_.op in ("<", "<="):
                dmax = min(dmax, cmp_.value)
            elif cmp_.op == "=":
                dmin = max(dmin, cmp_.value)
                dmax = min(dmax, cmp_.value)
        return dmin, dmax
