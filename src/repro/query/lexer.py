"""Tokenizer for the mini SQL dialect."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from repro.errors import QuerySyntaxError

#: Token types.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
PUNCT = "PUNCT"
OP = "OP"
EOF = "EOF"

KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "ORDER", "BY", "GROUP", "STOP", "AFTER",
    "AND", "AS", "ASC", "DESC", "MIN", "DISTANCE", "BETWEEN", "NOT",
    "PARALLEL", "SHARDS", "EXPLAIN", "ANALYZE", "WATCH", "NOTIFY",
})

_PUNCT_CHARS = {",", "(", ")", "*", "."}
_OP_STARTS = {"<", ">", "=", "!"}


class Token(NamedTuple):
    """One lexical token: type, normalized text, source position."""

    type: str
    text: str
    position: int


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises :class:`QuerySyntaxError` on junk."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCT_CHARS:
            yield Token(PUNCT, ch, i)
            i += 1
            continue
        if ch in _OP_STARTS:
            if ch != "=" and i + 1 < length and sql[i + 1] == "=":
                yield Token(OP, ch + "=", i)
                i += 2
            elif ch in ("<", ">", "="):
                yield Token(OP, ch, i)
                i += 1
            else:
                raise QuerySyntaxError(f"unexpected character {ch!r}", i)
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < length and sql[i + 1].isdigit()
        ):
            start = i
            i += 1
            seen_dot = False
            while i < length and (
                sql[i].isdigit()
                or (sql[i] == "." and not seen_dot)
                or sql[i] in "eE"
                or (sql[i] in "+-" and sql[i - 1] in "eE")
            ):
                if sql[i] == ".":
                    seen_dot = True
                i += 1
            yield Token(NUMBER, sql[start:i], start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(KEYWORD, upper, start)
            else:
                yield Token(IDENT, word, start)
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", i)
    yield Token(EOF, "", length)
