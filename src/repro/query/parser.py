"""Recursive-descent parser for the mini SQL dialect.

Grammar (terminals in caps, ``[]`` optional, ``{}`` repetition)::

    query      := [EXPLAIN [ANALYZE] | WATCH] SELECT select_list
                  FROM ident "," ident "," distance_term
                  [WHERE predicate {AND predicate}]
                  [GROUP BY qualified]
                  [ORDER BY ident [ASC | DESC]]
                  [STOP AFTER NUMBER]
                  [PARALLEL NUMBER]
                  [NOTIFY]
    select_list := "*" ["," MIN "(" ident ")"]
                 | MIN "(" ident ")" ["," "*"]
    distance_term := DISTANCE "(" qualified "," qualified ")" [AS ident]
    predicate  := ident cmp NUMBER
                | NUMBER cmp ident
                | ident BETWEEN NUMBER AND NUMBER
    qualified  := ident "." ident
    cmp        := "<" | "<=" | ">" | ">=" | "="

This is the paper's Figure 1 surface: the distance term in the FROM
clause, distance predicates in WHERE, GROUP BY for the semi-join,
ORDER BY d (DESC for the reverse variant), the STOP AFTER extension,
and a PARALLEL worker-count hint routing the query to the partitioned
parallel engine (:mod:`repro.parallel`).  An ``EXPLAIN [ANALYZE]``
prefix asks for the plan (estimated, or measured by actually running
the query) instead of rows.  A ``WATCH`` prefix (optionally closed by
``NOTIFY``) registers the query as a *standing* join whose result is
maintained incrementally under updates (:mod:`repro.live`, see
docs/LIVE.md).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import QuerySyntaxError
from repro.query.ast_nodes import AttributePredicate, Comparison, Query
from repro.query.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PUNCT,
    Token,
    tokenize,
)

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != EOF:
            self._pos += 1
        return token

    def _expect(self, type_: str, text: str = "") -> Token:
        token = self._peek()
        if token.type != type_ or (text and token.text != text):
            wanted = text or type_
            raise QuerySyntaxError(
                f"expected {wanted}, got {token.text or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _accept(self, type_: str, text: str = "") -> bool:
        token = self._peek()
        if token.type == type_ and (not text or token.text == text):
            self._advance()
            return True
        return False

    # -- grammar --------------------------------------------------------

    def parse_query(self) -> Query:
        """Parse one full query and verify nothing trails it."""
        query = Query()
        if self._accept(KEYWORD, "EXPLAIN"):
            query.explain = True
            if self._accept(KEYWORD, "ANALYZE"):
                query.analyze = True
        if self._accept(KEYWORD, "WATCH"):
            query.watch = True
        self._expect(KEYWORD, "SELECT")
        self._select_list(query)
        self._expect(KEYWORD, "FROM")
        query.relation1 = self._expect(IDENT).text
        self._expect(PUNCT, ",")
        query.relation2 = self._expect(IDENT).text
        self._expect(PUNCT, ",")
        self._distance_term(query)
        if self._accept(KEYWORD, "WHERE"):
            self._predicates(query)
        if self._accept(KEYWORD, "GROUP"):
            self._expect(KEYWORD, "BY")
            query.group_by = self._qualified()
        if self._accept(KEYWORD, "ORDER"):
            self._expect(KEYWORD, "BY")
            order_ident = self._expect(IDENT).text
            if order_ident != query.alias:
                raise QuerySyntaxError(
                    f"can only ORDER BY the distance alias "
                    f"{query.alias!r}, got {order_ident!r}"
                )
            if self._accept(KEYWORD, "DESC"):
                query.descending = True
            else:
                self._accept(KEYWORD, "ASC")
        if self._accept(KEYWORD, "STOP"):
            self._expect(KEYWORD, "AFTER")
            number = self._expect(NUMBER)
            value = float(number.text)
            if value != int(value) or value < 1:
                raise QuerySyntaxError(
                    f"STOP AFTER needs a positive integer, got "
                    f"{number.text}", number.position,
                )
            query.stop_after = int(value)
        if self._accept(KEYWORD, "PARALLEL"):
            number = self._expect(NUMBER)
            value = float(number.text)
            if value != int(value) or value < 1:
                raise QuerySyntaxError(
                    f"PARALLEL needs a positive integer, got "
                    f"{number.text}", number.position,
                )
            query.parallel = int(value)
        if self._accept(KEYWORD, "SHARDS"):
            number = self._expect(NUMBER)
            value = float(number.text)
            if value != int(value) or value < 1:
                raise QuerySyntaxError(
                    f"SHARDS needs a positive integer, got "
                    f"{number.text}", number.position,
                )
            query.shards = int(value)
        if self._peek().type == KEYWORD and self._peek().text == "NOTIFY":
            token = self._advance()
            if not query.watch:
                raise QuerySyntaxError(
                    "NOTIFY is only valid on a WATCH query",
                    token.position,
                )
        self._expect(EOF)
        self._validate(query)
        return query

    def _select_list(self, query: Query) -> None:
        saw_star = False
        while True:
            if self._accept(PUNCT, "*"):
                saw_star = True
            elif self._accept(KEYWORD, "MIN"):
                self._expect(PUNCT, "(")
                self._expect(IDENT)
                self._expect(PUNCT, ")")
                query.select_min = True
            else:
                token = self._peek()
                raise QuerySyntaxError(
                    "select list supports '*' and 'MIN(d)'",
                    token.position,
                )
            # A comma followed by another select item continues the
            # list; a comma before FROM's first relation does not occur
            # because FROM is a keyword.
            if self._peek().type == PUNCT and self._peek().text == ",":
                nxt = self._tokens[self._pos + 1]
                is_item = nxt.type == PUNCT and nxt.text == "*" or (
                    nxt.type == KEYWORD and nxt.text == "MIN"
                )
                if is_item:
                    self._advance()
                    continue
            break
        if not saw_star and not query.select_min:
            raise QuerySyntaxError("empty select list")

    def _distance_term(self, query: Query) -> None:
        self._expect(KEYWORD, "DISTANCE")
        self._expect(PUNCT, "(")
        rel1, attr1 = self._qualified()
        self._expect(PUNCT, ",")
        rel2, attr2 = self._qualified()
        self._expect(PUNCT, ")")
        if self._accept(KEYWORD, "AS"):
            query.alias = self._expect(IDENT).text
        if rel1 != query.relation1 or rel2 != query.relation2:
            raise QuerySyntaxError(
                f"DISTANCE arguments must be "
                f"{query.relation1}.<attr>, {query.relation2}.<attr> "
                f"in FROM order; got {rel1}.{attr1}, {rel2}.{attr2}"
            )
        query.attr1 = attr1
        query.attr2 = attr2

    def _qualified(self) -> Tuple[str, str]:
        relation = self._expect(IDENT).text
        self._expect(PUNCT, ".")
        attribute = self._expect(IDENT).text
        return relation, attribute

    def _predicates(self, query: Query) -> None:
        while True:
            self._predicate(query)
            if not self._accept(KEYWORD, "AND"):
                break

    def _predicate(self, query: Query) -> None:
        token = self._peek()
        if token.type == IDENT:
            name = self._advance().text
            if self._peek().type == PUNCT and self._peek().text == ".":
                # rel.attr <op> NUMBER -- an attribute selection
                # (paper's "population > 5 million" style predicate).
                self._advance()
                attribute = self._expect(IDENT).text
                op = self._expect(OP).text
                value = float(self._expect(NUMBER).text)
                if name not in (query.relation1, query.relation2):
                    raise QuerySyntaxError(
                        f"predicate references unknown relation "
                        f"{name!r}", token.position,
                    )
                query.attribute_predicates.append(
                    AttributePredicate(name, attribute, op, value)
                )
                return
            if name != query.alias:
                raise QuerySyntaxError(
                    f"WHERE supports the distance alias "
                    f"{query.alias!r} or rel.attr predicates, got "
                    f"{name!r}", token.position,
                )
            if self._accept(KEYWORD, "BETWEEN"):
                low = float(self._expect(NUMBER).text)
                self._expect(KEYWORD, "AND")
                high = float(self._expect(NUMBER).text)
                query.comparisons.append(Comparison(">=", low))
                query.comparisons.append(Comparison("<=", high))
                return
            op = self._expect(OP).text
            value = float(self._expect(NUMBER).text)
            query.comparisons.append(Comparison(op, value))
            return
        if token.type == NUMBER:
            value = float(self._advance().text)
            op = self._expect(OP).text
            name = self._expect(IDENT).text
            if name != query.alias:
                raise QuerySyntaxError(
                    f"WHERE supports only the distance alias "
                    f"{query.alias!r}, got {name!r}", token.position,
                )
            query.comparisons.append(Comparison(_FLIP[op], value))
            return
        raise QuerySyntaxError(
            "expected a distance predicate", token.position
        )

    @staticmethod
    def _validate(query: Query) -> None:
        if query.group_by is not None:
            rel, attr = query.group_by
            if rel != query.relation1 or attr != query.attr1:
                raise QuerySyntaxError(
                    f"GROUP BY must target the first relation's spatial "
                    f"attribute {query.relation1}.{query.attr1} "
                    f"(the distance semi-join of Figure 1b)"
                )
        dmin, dmax = query.distance_bounds()
        if dmin > dmax:
            raise QuerySyntaxError(
                f"contradictory distance predicates: "
                f"d >= {dmin} and d <= {dmax}"
            )
        if query.parallel is not None and query.descending:
            raise QuerySyntaxError(
                "PARALLEL does not support ORDER BY ... DESC "
                "(the parallel engine's merge is nearest-first)"
            )
        if query.shards is not None and query.descending:
            raise QuerySyntaxError(
                "SHARDS does not support ORDER BY ... DESC "
                "(the shard router's merge is nearest-first)"
            )
        if query.shards is not None and query.parallel is not None:
            raise QuerySyntaxError(
                "SHARDS and PARALLEL are mutually exclusive hints"
            )
        if query.watch:
            # The standing-join repair machinery maintains the
            # ascending one-result-per-pair stream; everything else
            # is a different (unsupported) maintenance problem.
            if query.explain:
                raise QuerySyntaxError(
                    "EXPLAIN and WATCH are mutually exclusive"
                )
            if query.descending:
                raise QuerySyntaxError(
                    "WATCH maintains the nearest-first result; "
                    "ORDER BY ... DESC is not supported"
                )
            if query.is_semi_join or query.select_min:
                raise QuerySyntaxError(
                    "WATCH does not support the distance semi-join "
                    "(GROUP BY / MIN(d))"
                )
            if query.parallel is not None or query.shards is not None:
                raise QuerySyntaxError(
                    "WATCH runs on the standing-join engine; "
                    "PARALLEL and SHARDS hints do not apply"
                )
            if query.attribute_predicates:
                raise QuerySyntaxError(
                    "WATCH cannot maintain attribute predicates; "
                    "filter the delta stream instead"
                )
            if (
                query.stop_after is None
                and query.distance_bounds()[1] == float("inf")
            ):
                raise QuerySyntaxError(
                    "WATCH needs a finite result: give STOP AFTER k "
                    "(top-K) and/or a d <= bound (range)"
                )


def parse(sql: str) -> Query:
    """Parse a distance (semi-)join query into a :class:`Query`."""
    return _Parser(tokenize(sql)).parse_query()
