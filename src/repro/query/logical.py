"""Logical plans: the parsed query as an operator tree.

A :class:`~repro.query.ast_nodes.Query` is a flat record of clauses;
the logical plan normalizes it into the relational-algebra shape the
planner reasons about:

``Project(Limit(Join(Filter(Scan(R1)), Filter(Scan(R2)))))``

Logical nodes carry *what* the query asks for (which relations, which
predicates, join kind and distance bounds, result bound) and nothing
about *how* to run it -- no strategy, no costs, no operator classes.
:mod:`repro.query.physical` lowers this tree into an executable
physical plan; the planner rule that prices pipeline-vs-prefilter
lives there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.query.ast_nodes import AttributePredicate, Query

__all__ = [
    "LogicalNode",
    "LogicalScan",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalLimit",
    "LogicalProject",
    "LogicalWatch",
    "LogicalPlan",
    "build_logical_plan",
]


@dataclass(frozen=True)
class LogicalNode:
    """Base class: a node knows its children and how to label itself."""

    def children(self) -> Tuple["LogicalNode", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def walk(self) -> Iterator["LogicalNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class LogicalScan(LogicalNode):
    """Read one named relation's index."""

    relation: str

    def label(self) -> str:
        return f"Scan({self.relation})"


@dataclass(frozen=True)
class LogicalFilter(LogicalNode):
    """Attribute predicates restricting one relation."""

    child: LogicalScan
    predicates: Tuple[AttributePredicate, ...]

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        terms = ", ".join(
            f"{p.relation}.{p.attribute} {p.op} {p.value:g}"
            for p in self.predicates
        )
        return f"Filter({terms})"


@dataclass(frozen=True)
class LogicalJoin(LogicalNode):
    """The distance (semi-)join of the two inputs.

    ``semi_join`` / ``descending`` select the operator family;
    ``parallel`` is the requested worker count (None = sequential);
    ``min_distance`` / ``max_distance`` are the WHERE-clause distance
    bounds already normalized by ``Query.distance_bounds()``.
    """

    left: LogicalNode
    right: LogicalNode
    semi_join: bool = False
    descending: bool = False
    parallel: Optional[int] = None
    min_distance: float = 0.0
    max_distance: float = field(default=float("inf"))

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        kind = "SemiJoin" if self.semi_join else "Join"
        order = "desc" if self.descending else "asc"
        extra = (
            f", parallel={self.parallel}"
            if self.parallel is not None else ""
        )
        return (
            f"Distance{kind}(range=[{self.min_distance:g}, "
            f"{self.max_distance:g}], {order}{extra})"
        )


@dataclass(frozen=True)
class LogicalLimit(LogicalNode):
    """``STOP AFTER n``."""

    child: LogicalNode
    count: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit({self.count})"


@dataclass(frozen=True)
class LogicalProject(LogicalNode):
    """The SELECT list (always the full row shape here)."""

    child: LogicalNode

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Project(d, oid1, geom1, oid2, geom2)"


@dataclass(frozen=True)
class LogicalWatch(LogicalNode):
    """A standing registration of the subtree's result.

    Wraps the whole query shape: the result below is not pulled once
    but *maintained* -- the node's output is the delta stream that
    keeps a subscriber's copy of the result current (docs/LIVE.md).
    """

    child: LogicalNode

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Watch(+pair/-pair deltas)"


@dataclass(frozen=True)
class LogicalPlan:
    """The logical tree plus the query it was derived from."""

    root: LogicalNode
    query: Query

    @property
    def join(self) -> LogicalJoin:
        for node in self.root.walk():
            if isinstance(node, LogicalJoin):
                return node
        raise ValueError("logical plan has no join node")

    def pretty(self) -> str:
        return self.root.pretty()


def build_logical_plan(query: Query) -> LogicalPlan:
    """Normalize a parsed query into the logical operator tree."""
    dmin, dmax = query.distance_bounds()

    def side(relation: str) -> LogicalNode:
        scan = LogicalScan(relation)
        predicates = tuple(
            p for p in query.attribute_predicates
            if p.relation == relation
        )
        if predicates:
            return LogicalFilter(scan, predicates)
        return scan

    node: LogicalNode = LogicalJoin(
        left=side(query.relation1),
        right=side(query.relation2),
        semi_join=query.is_semi_join,
        descending=query.descending,
        parallel=query.parallel,
        min_distance=dmin,
        max_distance=dmax,
    )
    if query.stop_after is not None:
        node = LogicalLimit(node, query.stop_after)
    root: LogicalNode = LogicalProject(node)
    if query.watch:
        root = LogicalWatch(root)
    return LogicalPlan(root=root, query=query)
