"""A miniature SQL dialect for the paper's Figure 1 queries.

The paper defines the distance join and distance semi-join in SQL-92
syntax extended with the ``STOP AFTER`` clause of Carey & Kossmann.
This package implements exactly that surface: a lexer, a
recursive-descent parser producing a small AST, and an executor that
plans the query onto the incremental join iterators -- so ``STOP
AFTER n`` really does stop the pipeline after ``n`` tuples instead of
computing everything.

Example
-------
>>> from repro.query import Database
>>> from repro.geometry import Point
>>> db = Database()
>>> _ = db.create_relation("stores", [Point((0, 0)), Point((5, 5))])
>>> _ = db.create_relation("warehouses", [Point((1, 0)), Point((9, 9))])
>>> rows = list(db.execute(
...     "SELECT *, MIN(d) FROM stores, warehouses, "
...     "DISTANCE(stores.geom, warehouses.geom) AS d "
...     "GROUP BY stores.geom ORDER BY d"
... ))
>>> [round(r.d, 3) for r in rows]
[1.0, 5.657]
"""

from repro.query.ast_nodes import Comparison, Query
from repro.query.executor import AnalyzedPlan, Database, PlanExplanation, Row
from repro.query.lexer import Token, tokenize
from repro.query.parser import parse

__all__ = [
    "AnalyzedPlan",
    "Database",
    "PlanExplanation",
    "Row",
    "Query",
    "Comparison",
    "parse",
    "tokenize",
    "Token",
]
