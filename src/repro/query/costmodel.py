"""An analytic cost model for the incremental distance join.

The paper's Section 5 leaves "developing cost models for the
incremental distance join algorithms" as future work, needed for a
query optimizer to choose between plans.  This module implements a
first-order model in that spirit, in the style of the R-tree join
models it cites: data is summarized by per-level node counts and
average node extents, and the expected work is the number of node
pairs whose MINDIST falls below the distance of interest.

The model deliberately assumes (locally) uniform data -- the classic
simplification -- so its absolute predictions are rough on skewed
inputs; its purpose is *ranking* candidate plans, and the accompanying
tests check exactly that (monotonicity in the distance bound, and
agreement in ordering with measured counters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.rtree.base import RTreeBase

_INF = float("inf")


@dataclass
class LevelStats:
    """Summary of one tree level: node count and average side length."""

    level: int
    nodes: int
    avg_side: float


@dataclass
class TreeStats:
    """Per-tree summary feeding the join cost model."""

    size: int
    height: int
    universe_sides: List[float]
    levels: List[LevelStats]

    @property
    def universe_volume(self) -> float:
        """Volume of the data set's bounding box (floored per axis)."""
        volume = 1.0
        for side in self.universe_sides:
            volume *= max(side, 1e-12)
        return volume


def stats_fingerprint(tree: RTreeBase) -> Optional[tuple]:
    """Cache key for a tree's :class:`TreeStats` (None = uncacheable).

    Any structural change moves at least one component: inserts and
    deletes bump the tree's mutation counter, bulk loading replaces the
    root page and the size.
    """
    mutations = getattr(tree, "_mutations", None)
    if mutations is None:
        return None
    return (len(tree), tree.root_id, mutations)


def collect_stats(tree: RTreeBase) -> TreeStats:
    """Summarize a tree for the cost model (one full walk, cached).

    The walk touches every node, so repeated EXPLAIN / routing calls
    against an unchanged tree would dominate planning cost; the result
    is memoized on the tree keyed by :func:`stats_fingerprint` and
    recomputed after any insert, delete, or bulk (re)load.  Only the
    first walk charges ``node_reads``/``node_io``.  Callers must treat
    the returned object as immutable (it is shared between calls).
    """
    key = stats_fingerprint(tree)
    if key is not None:
        cached = getattr(tree, "_stats_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
    stats = _walk_stats(tree)
    if key is not None:
        tree._stats_cache = (key, stats)
    return stats


def _walk_stats(tree: RTreeBase) -> TreeStats:
    bounds = tree.bounds()
    if bounds is None:
        return TreeStats(0, 1, [1.0], [LevelStats(0, 1, 0.0)])
    sides = [hi - lo for lo, hi in zip(bounds.lo, bounds.hi)]
    counts: dict = {}
    side_sums: dict = {}
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        counts[node.level] = counts.get(node.level, 0) + 1
        mean_side = (
            sum(node.mbr().hi[i] - node.mbr().lo[i]
                for i in range(tree.dim)) / tree.dim
            if node.entries else 0.0
        )
        side_sums[node.level] = side_sums.get(node.level, 0.0) + mean_side
        if not node.is_leaf:
            for entry in node.entries:
                stack.append(entry.child_id)
    levels = [
        LevelStats(
            level,
            counts[level],
            side_sums[level] / counts[level],
        )
        for level in sorted(counts)
    ]
    return TreeStats(len(tree), len(counts), sides, levels)


@dataclass
class JoinCostEstimate:
    """Predicted work for one incremental distance join execution."""

    node_pairs: float
    node_io: float
    dist_calcs: float
    result_pairs: float

    def total_cost(
        self, io_weight: float = 10.0, cpu_weight: float = 1.0
    ) -> float:
        """A single comparable scalar (I/O-dominant by default)."""
        return io_weight * self.node_io + cpu_weight * self.dist_calcs


def estimate_build_cost(
    count: int,
    fanout: int = 50,
    io_weight: float = 10.0,
    cpu_weight: float = 1.0,
) -> float:
    """Rough cost of bulk-loading an R-tree over ``count`` objects:
    an n·log n sort plus one page write per packed node."""
    if count <= 1:
        return 0.0
    pages = count / max(1, int(0.7 * fanout))
    return cpu_weight * count * math.log2(count) + io_weight * pages


class JoinCostModel:
    """Estimates the cost of a distance (semi-)join between two trees.

    Parameters
    ----------
    tree1, tree2:
        The joined indexes; their stats are collected once on
        construction.
    """

    def __init__(
        self,
        tree1: Optional[RTreeBase] = None,
        tree2: Optional[RTreeBase] = None,
        stats1: Optional[TreeStats] = None,
        stats2: Optional[TreeStats] = None,
        dim: Optional[int] = None,
    ) -> None:
        if stats1 is None:
            assert tree1 is not None
            stats1 = collect_stats(tree1)
            dim = tree1.dim
        if stats2 is None:
            assert tree2 is not None
            stats2 = collect_stats(tree2)
        assert dim is not None
        self.dim = dim
        self.stats1 = stats1
        self.stats2 = stats2
        self._overlap_sides = [
            max(
                0.0,
                min(a, b),
            )
            for a, b in zip(
                self.stats1.universe_sides, self.stats2.universe_sides
            )
        ]

    def scaled(self, scale1: float, scale2: float) -> "JoinCostModel":
        """A model for hypothetically filtered inputs: each side's
        cardinality and node counts shrink by the given selectivity
        (used to price the restrict-first plan of Section 5)."""

        def shrink(stats: TreeStats, scale: float) -> TreeStats:
            return TreeStats(
                size=max(0, int(stats.size * scale)),
                height=stats.height,
                universe_sides=list(stats.universe_sides),
                levels=[
                    LevelStats(
                        l.level,
                        max(1, int(math.ceil(l.nodes * scale))),
                        l.avg_side,
                    )
                    for l in stats.levels
                ],
            )

        return JoinCostModel(
            stats1=shrink(self.stats1, scale1),
            stats2=shrink(self.stats2, scale2),
            dim=self.dim,
        )

    # ------------------------------------------------------------------
    # selectivity
    # ------------------------------------------------------------------

    def _ball_volume(self, radius: float) -> float:
        """Volume of a Euclidean ball of ``radius`` in ``dim``."""
        if radius <= 0.0:
            return 0.0
        dim = self.dim
        return (
            math.pi ** (dim / 2.0)
            / math.gamma(dim / 2.0 + 1.0)
            * radius ** dim
        )

    def _joint_volume(self) -> float:
        volume = 1.0
        for side in self._overlap_sides:
            volume *= max(side, 1e-12)
        return volume

    def expected_pairs_within(self, distance: float) -> float:
        """Expected object pairs with distance <= ``distance``
        (uniformity assumption; capped by the Cartesian product)."""
        total = float(self.stats1.size * self.stats2.size)
        if distance == _INF or total == 0.0:
            return total
        fraction = min(
            1.0, self._ball_volume(distance) / self._joint_volume()
        )
        return total * fraction

    def distance_for_pairs(self, pairs: int) -> float:
        """Inverse of :meth:`expected_pairs_within`: the distance at
        which roughly ``pairs`` result pairs exist."""
        total = self.stats1.size * self.stats2.size
        if total == 0:
            return 0.0
        fraction = min(1.0, pairs / float(total))
        volume = fraction * self._joint_volume()
        dim = self.dim
        unit = math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)
        return (volume / unit) ** (1.0 / dim)

    # ------------------------------------------------------------------
    # work estimation
    # ------------------------------------------------------------------

    def _level_pair_count(
        self, l1: LevelStats, l2: LevelStats, distance: float
    ) -> float:
        """Expected node pairs at (l1, l2) with MINDIST <= distance.

        Two nodes of average sides s1, s2 come within ``distance``
        when their centers fall inside a region of per-axis extent
        ``(s1 + s2) / 2 * 2 + 2 * distance``; with uniformly placed
        node centers this yields the standard Minkowski-sum estimate.
        """
        volume = 1.0
        for side in self._overlap_sides:
            reach = l1.avg_side + l2.avg_side + 2.0 * distance
            volume *= min(1.0, max(reach, 1e-12) / max(side, 1e-12))
        return l1.nodes * l2.nodes * volume

    def estimate(
        self,
        max_distance: float = _INF,
        max_pairs: Optional[int] = None,
        semi_join: bool = False,
    ) -> JoinCostEstimate:
        """Predict the work to produce the requested result.

        ``max_pairs`` is converted to an effective distance via the
        selectivity model (mirroring the algorithm's own
        maximum-distance estimation); for a semi-join the result size
        is at most the outer cardinality.
        """
        effective = max_distance
        if max_pairs is not None:
            effective = min(
                effective, self.distance_for_pairs(max_pairs)
            )
        if semi_join:
            # Every outer object finds a neighbour within roughly the
            # NN-distance scale: n2 points -> spacing ~ (V/n2)^(1/dim).
            if self.stats2.size:
                nn_scale = (
                    self._joint_volume() / self.stats2.size
                ) ** (1.0 / self.dim)
                effective = min(effective, 2.0 * nn_scale)

        if effective == _INF:
            # Full join: all node pairs eventually meet.
            node_pairs = float(
                sum(l.nodes for l in self.stats1.levels)
                * sum(l.nodes for l in self.stats2.levels)
            )
        else:
            node_pairs = 0.0
            for l1 in self.stats1.levels:
                for l2 in self.stats2.levels:
                    # The even policy pairs similar depths; weigh
                    # matched levels fully and mismatched ones lightly.
                    weight = 1.0 if l1.level == l2.level else 0.25
                    node_pairs += weight * self._level_pair_count(
                        l1, l2, effective
                    )

        leaf1 = self.stats1.levels[0]
        leaf2 = self.stats2.levels[0]
        avg_leaf_fill1 = self.stats1.size / max(1, leaf1.nodes)
        avg_leaf_fill2 = self.stats2.size / max(1, leaf2.nodes)
        leaf_pairs = (
            self._level_pair_count(leaf1, leaf2, effective)
            if effective != _INF
            else float(leaf1.nodes * leaf2.nodes)
        )
        dist_calcs = leaf_pairs * avg_leaf_fill1 * avg_leaf_fill2
        result_pairs = (
            min(self.stats1.size, self.expected_pairs_within(effective))
            if semi_join
            else self.expected_pairs_within(effective)
        )
        if max_pairs is not None:
            result_pairs = min(result_pairs, float(max_pairs))
        return JoinCostEstimate(
            node_pairs=node_pairs,
            node_io=node_pairs,  # one child read per expanded pair side
            dist_calcs=dist_calcs,
            result_pairs=result_pairs,
        )
