"""The database facade: catalog plus query entry points.

The executor is intentionally a *pipeline*: :meth:`Database.execute`
returns a row iterator backed directly by an incremental join, so a
consumer that stops early (or a ``STOP AFTER n`` clause) costs only the
incremental work -- the property the paper's algorithms exist to
provide.

Planning lives in two sibling modules: :mod:`repro.query.logical`
normalizes the parsed query into a logical operator tree, and
:mod:`repro.query.physical` lowers it into an executable physical
plan (including the Section 5 pipeline-vs-prefilter cost rule for
attribute predicates).  ``execute``, ``EXPLAIN`` and ``EXPLAIN
ANALYZE`` all walk that same physical plan tree: EXPLAIN renders it
without opening it, execution opens it and streams rows, and EXPLAIN
ANALYZE does both and annotates the plan with measurements.
"""

from __future__ import annotations

import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.distance_join import IncrementalDistanceJoin
from repro.errors import QueryError
from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.parallel.join import ParallelDistanceJoin
from repro.quadtree.prquadtree import PRQuadtree
from repro.query.ast_nodes import Query
from repro.query.parser import parse
from repro.query.physical import (  # noqa: F401  (re-exported)
    STRATEGIES,
    PhysicalPlan,
    PlanExplanation,
    Row,
    build_physical_plan,
    build_standing_join,
    materialize_filtered,
)
from repro.rtree.base import RTreeBase
from repro.rtree.bulk import bulk_load_str
from repro.rtree.rstar import RStarTree
from repro.util.counters import CounterRegistry, CounterSnapshot
from repro.util.obs import ObsSnapshot, Observer, metrics_records
from repro.util.telemetry import ProgressEstimator
from repro.util.validation import require

_INF = float("inf")

INDEX_KINDS = ("rtree", "quadtree")

#: Display order of the parallel pipeline stages in EXPLAIN ANALYZE.
_STAGE_ORDER = ("partition", "worker_build", "worker_join", "merge")


class AnalyzedPlan(NamedTuple):
    """Output of :meth:`Database.explain_analyze`: the estimated plan
    plus what actually happened when the query ran to completion."""

    plan: PlanExplanation
    rows: int
    elapsed_s: float
    counters: CounterSnapshot
    obs: ObsSnapshot
    stages: Optional[Dict[str, float]]  # parallel queries only
    #: Final certified progress report (a dict view of
    #: :class:`repro.util.telemetry.ProgressReport`); None when the
    #: operator exposes no progress signals.
    progress: Optional[Dict[str, Any]] = None

    def metrics(self, labels: Optional[Dict[str, Any]] = None) -> list:
        """The execution's metrics in the shared export schema
        (:func:`repro.util.obs.metrics_records`)."""
        return metrics_records(self.counters, self.obs, labels)

    def pretty(self) -> str:
        """The estimated plan annotated with actual measurements."""
        lines = [self.plan.pretty()]
        lines.append(
            f"  actual: rows={self.rows:,}, "
            f"time={self.elapsed_s:.4f}s"
        )
        if self.progress is not None:
            lines.append(
                f"  progress: phase={self.progress['phase']}, "
                f"certified>={self.progress['lower_bound']:.2f}, "
                f"estimate={self.progress['estimate']:.2f}"
            )
        if self.stages is not None:
            lines.append("  actual stages (wall seconds):")
            for name in _STAGE_ORDER:
                seconds = self.stages.get(name, 0.0)
                note = (
                    "  (summed across workers)"
                    if name.startswith("worker") else ""
                )
                lines.append(f"    {name:<13} {seconds:9.4f}s{note}")
            extras = sorted(set(self.stages) - set(_STAGE_ORDER))
            for name in extras:
                lines.append(
                    f"    {name:<13} {self.stages[name]:9.4f}s"
                )
        spans = {
            name: entry for name, entry in sorted(self.obs.spans.items())
            if self.stages is None or not (
                name.startswith("parallel.") or name.startswith("worker.")
            )
        }
        if spans:
            lines.append("  actual spans:")
            for name, (count, total, __, ___) in spans.items():
                lines.append(
                    f"    {name:<18} {total:9.4f}s / {count:,}x"
                )
        if self.counters.values:
            lines.append("  actual counters:")
            for name in sorted(self.counters.values):
                lines.append(
                    f"    {name:<22} {self.counters.values[name]:,}"
                )
        peaks = {
            name: peak for name, peak in sorted(self.counters.peaks.items())
            if peak and peak != self.counters.values.get(name)
        }
        if peaks:
            lines.append("  actual peaks:")
            for name, peak in peaks.items():
                lines.append(f"    {name:<22} {peak:,}")
        return "\n".join(lines)


class Database:
    """A tiny spatial database: named relations over spatial indexes.

    Parameters
    ----------
    metric:
        Point metric used for all distance terms.
    counters:
        Shared performance-counter registry (one is created if
        omitted) -- handy for inspecting what a query cost.
    """

    def __init__(
        self,
        metric: Metric = EUCLIDEAN,
        counters: Optional[CounterRegistry] = None,
    ) -> None:
        self.metric = metric
        self.counters = counters if counters is not None else CounterRegistry()
        self._relations: Dict[str, Any] = {}
        self._attributes: Dict[str, Dict[str, List[float]]] = {}

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        data: Union[RTreeBase, PRQuadtree, Sequence[Any]],
        bulk: bool = True,
        attributes: Optional[Dict[str, Sequence[float]]] = None,
        index: str = "rtree",
        **tree_kwargs: Any,
    ) -> Any:
        """Register a relation.

        ``data`` is either an existing spatial index (anything
        speaking the join substrate protocol, e.g. an R-tree or a
        :class:`~repro.quadtree.prquadtree.PRQuadtree`) or a sequence
        of spatial objects, which is indexed here.  ``index`` selects
        the index built over a plain sequence: ``"rtree"`` (the
        default; bulk-loaded unless ``bulk=False``) or ``"quadtree"``
        (a PR quadtree -- point data only; pass ``bounds=`` to fix the
        universe, otherwise the data's padded bounding box is used).
        ``attributes`` maps attribute names to value sequences aligned
        with the objects' ids (insertion order).
        """
        require(index in INDEX_KINDS,
                f"index must be one of {INDEX_KINDS}")
        if name in self._relations:
            raise QueryError(f"relation {name!r} already exists")
        if isinstance(data, RTreeBase) or hasattr(data, "read_node"):
            tree = data
        elif index == "quadtree":
            tree = self._build_quadtree(list(data), **tree_kwargs)
        elif bulk:
            tree_kwargs.setdefault("counters", self.counters)
            tree = bulk_load_str(list(data), **tree_kwargs)
        else:
            tree_kwargs.setdefault("counters", self.counters)
            sample = data[0] if data else Point((0.0, 0.0))
            dim = sample.dim if isinstance(sample, Point) else (
                sample.mbr().dim if hasattr(sample, "mbr") else 2
            )
            tree_kwargs.setdefault("dim", dim)
            tree = RStarTree(**tree_kwargs)
            for obj in data:
                tree.insert(obj=obj)
        if attributes:
            for attr_name, values in attributes.items():
                if len(values) != len(tree):
                    raise QueryError(
                        f"attribute {attr_name!r} has {len(values)} "
                        f"values for {len(tree)} objects"
                    )
            self._attributes[name] = {
                attr_name: list(values)
                for attr_name, values in attributes.items()
            }
        self._relations[name] = tree
        return tree

    def _build_quadtree(
        self, objects: List[Any], **tree_kwargs: Any
    ) -> PRQuadtree:
        """Index a point sequence with a PR quadtree."""
        points = []
        for obj in objects:
            if not isinstance(obj, Point):
                raise QueryError(
                    "index='quadtree' requires Point data "
                    f"(got {type(obj).__name__})"
                )
            points.append(obj)
        bounds = tree_kwargs.pop("bounds", None)
        if bounds is None:
            if points:
                tight = Rect.from_points(points)
                # Pad the universe so boundary points (and the
                # half-open quadrant splits) stay strictly inside.
                pad = [
                    max(1e-9, 0.01 * (hi - lo)) if hi > lo else 1.0
                    for lo, hi in zip(tight.lo, tight.hi)
                ]
                bounds = Rect(
                    [lo - p for lo, p in zip(tight.lo, pad)],
                    [hi + p for hi, p in zip(tight.hi, pad)],
                )
            else:
                bounds = Rect((0.0, 0.0), (1.0, 1.0))
        tree_kwargs.setdefault("counters", self.counters)
        tree = PRQuadtree(bounds, **tree_kwargs)
        for point in points:
            tree.insert(point)
        return tree

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog."""
        if name not in self._relations:
            raise QueryError(f"relation {name!r} does not exist")
        del self._relations[name]
        self._attributes.pop(name, None)

    def relation(self, name: str) -> Any:
        """Look up a relation's index."""
        tree = self._relations.get(name)
        if tree is None:
            raise QueryError(f"relation {name!r} does not exist")
        return tree

    def relations(self) -> List[str]:
        """Names of all registered relations."""
        return sorted(self._relations)

    def attribute(self, relation: str, name: str) -> List[float]:
        """The stored values of one attribute (indexed by oid)."""
        values = self._attributes.get(relation, {}).get(name)
        if values is None:
            raise QueryError(
                f"relation {relation!r} has no attribute {name!r}"
            )
        return values

    @staticmethod
    def _filtered_tree(
        tree: Any, matches: Callable[[int], bool]
    ) -> Tuple[Any, List[int]]:
        """Back-compat alias of
        :func:`repro.query.physical.materialize_filtered`."""
        return materialize_filtered(tree, matches)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def physical_plan(
        self,
        query: Union[str, Query],
        strategy: str = "auto",
        **join_kwargs: Any,
    ) -> PhysicalPlan:
        """Lower a query into its physical plan without opening it."""
        parsed = parse(query) if isinstance(query, str) else query
        return build_physical_plan(
            self, parsed, strategy=strategy, join_kwargs=join_kwargs
        )

    def plan(
        self, query: Query, strategy: str = "auto", **join_kwargs: Any
    ) -> IncrementalDistanceJoin:
        """Build the join iterator for ``query`` (the "query plan").

        Note: for prefilter plans the iterator's oids refer to the
        temporary filtered indexes; use :meth:`execute_query` to get
        rows with original object ids.
        """
        return self.physical_plan(
            query, strategy=strategy, **join_kwargs
        ).open_join()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(
        self, sql: str, strategy: str = "auto", **join_kwargs: Any
    ) -> Iterator[Row]:
        """Parse and execute a query; returns a lazy row iterator.

        Extra keyword arguments are forwarded to the join constructor,
        so callers can select e.g. ``node_policy`` or ``queue="hybrid"``
        per query.
        """
        return self.execute_query(
            parse(sql), strategy=strategy, **join_kwargs
        )

    def execute_query(
        self, query: Query, strategy: str = "auto", **join_kwargs: Any
    ) -> Iterator[Row]:
        """Execute an already parsed :class:`Query`."""
        if query.explain:
            raise QueryError(
                "EXPLAIN queries describe execution instead of "
                "producing rows; use Database.explain() or "
                "Database.explain_analyze()"
            )
        plan = build_physical_plan(
            self, query, strategy=strategy, join_kwargs=join_kwargs
        )
        return plan.rows()

    # ------------------------------------------------------------------
    # standing queries (WATCH ... NOTIFY; repro.live)
    # ------------------------------------------------------------------

    def watch(
        self, sql: Union[str, Query], **join_kwargs: Any
    ) -> Any:
        """Register a ``WATCH`` query as a standing join.

        Returns a bootstrapped
        :class:`~repro.live.StandingJoin` whose initial result is
        already queued as ADD deltas; route updates through its
        ``insert`` / ``delete`` (or ``observe_*``) methods and drain
        repairs with ``poll()``.  See docs/LIVE.md.
        """
        query = parse(sql) if isinstance(sql, str) else sql
        if not query.watch:
            raise QueryError(
                "Database.watch() needs a WATCH query; use execute() "
                "for pull queries"
            )
        return build_standing_join(self, query, **join_kwargs)

    # ------------------------------------------------------------------
    # EXPLAIN (cost model; the paper's Section 5 future work)
    # ------------------------------------------------------------------

    def explain(
        self, sql: Union[str, Query], strategy: str = "auto"
    ) -> PlanExplanation:
        """Describe how a query would execute and what it should cost.

        Nothing is executed (in particular, no temporary prefilter
        index is built); the estimates come from
        :class:`repro.query.costmodel.JoinCostModel` (uniformity
        assumptions, see that module) and annotate the same physical
        plan tree that :meth:`execute` runs.  An ``EXPLAIN`` prefix in
        the SQL is accepted and ignored (this method *is* EXPLAIN).
        """
        return self.physical_plan(sql, strategy=strategy).explanation

    def explain_analyze(
        self,
        sql: Union[str, Query],
        strategy: str = "auto",
        **join_kwargs: Any,
    ) -> AnalyzedPlan:
        """EXPLAIN ANALYZE: run the query to completion and report the
        plan annotated with actual row counts, counters, span timings
        and -- for ``PARALLEL`` queries -- the per-stage wall-time
        breakdown (partition / worker build / worker join / merge).

        Like its namesake elsewhere, this *executes* the query (rows
        are consumed and discarded), so an unbounded join pays the
        full join cost.  Extra keyword arguments are forwarded to the
        join constructor; pass ``observer=`` to reuse a caller-owned
        :class:`~repro.util.obs.Observer`.
        """
        query = parse(sql) if isinstance(sql, str) else sql
        observer = join_kwargs.pop("observer", None)
        obs = observer if observer is not None else Observer()
        plan = build_physical_plan(
            self, query, strategy=strategy,
            join_kwargs=dict(join_kwargs, observer=obs),
        )
        # Estimate first: the cost model's stat walk reads tree nodes,
        # which must not leak into the measured counter delta.
        explanation = plan.explanation
        before = self.counters.full_snapshot()
        start = time.perf_counter()
        rows = sum(1 for __ in plan.rows())
        elapsed = time.perf_counter() - start
        counters = self.counters.full_snapshot().delta_from(before)
        # Peaks are levels, so the delta keeps them all -- but a shared
        # registry then reports high-water marks from *earlier* queries
        # too.  Keep only peaks this execution touched or raised.
        counters = CounterSnapshot(
            values=counters.values,
            peaks={
                name: peak for name, peak in counters.peaks.items()
                if name in counters.values
                or peak != before.peaks.get(name, 0)
            },
        )
        join = plan.open_join()
        stages = (
            join.stage_breakdown()
            if isinstance(join, ParallelDistanceJoin) else None
        )
        signals = plan.progress_signals()
        progress = None
        if signals is not None:
            estimator = ProgressEstimator(
                total_hint=explanation.estimated_result_pairs
            )
            progress = estimator.report(signals).as_dict()
        return AnalyzedPlan(
            plan=explanation,
            rows=rows,
            elapsed_s=elapsed,
            counters=counters,
            obs=obs.snapshot(),
            stages=stages,
            progress=progress,
        )
