"""Executor: plans parsed queries onto the incremental join iterators.

The executor is intentionally a *pipeline*: :meth:`Database.execute`
returns a generator backed directly by an incremental join, so a
consumer that stops early (or a ``STOP AFTER n`` clause) costs only the
incremental work -- the property the paper's algorithms exist to
provide.

Attribute predicates (``WHERE cities.pop > 5000000``) implement the
paper's Sections 1 and 5 discussion, including its two query plans:

1. **pipeline** -- run the incremental join on the full indexes and
   filter candidate pairs as they flow (via the join's ``pair_filter``
   hook, so non-qualifying objects never even enter the queue);
2. **prefilter** -- materialize the qualifying subset of a relation,
   build a temporary index over it, and join that (the paper: best
   when the predicate is highly selective, at the price of an index
   build before the first result).

``strategy="auto"`` (the default) prices both plans with the
Section 5 cost model and picks the cheaper one; ``EXPLAIN`` shows the
choice and both estimates.
"""

from __future__ import annotations

import math
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.pairs import NODE, Pair
from repro.core.reverse import ReverseDistanceJoin, ReverseDistanceSemiJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.errors import QueryError
from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.geometry.point import Point
from repro.parallel.join import (
    ParallelDistanceJoin,
    ParallelDistanceSemiJoin,
)
from repro.query.ast_nodes import Query
from repro.query.costmodel import JoinCostModel, estimate_build_cost
from repro.query.parser import parse
from repro.rtree.base import RTreeBase
from repro.rtree.bulk import bulk_load_str
from repro.rtree.rstar import RStarTree
from repro.util.counters import CounterRegistry, CounterSnapshot
from repro.util.obs import ObsSnapshot, Observer, metrics_records
from repro.util.validation import require

_INF = float("inf")

STRATEGIES = ("auto", "pipeline", "prefilter")


class Row(NamedTuple):
    """One output tuple of a distance (semi-)join query."""

    d: float
    oid1: int
    geom1: Any
    oid2: int
    geom2: Any


class PlanExplanation(NamedTuple):
    """Output of :meth:`Database.explain`."""

    operator: str
    strategy: str
    relation1: str
    relation2: str
    outer_size: int
    inner_size: int
    min_distance: float
    max_distance: float
    stop_after: Optional[int]
    selectivity1: float
    selectivity2: float
    estimated_result_pairs: float
    estimated_node_io: float
    estimated_dist_calcs: float
    estimated_cost: float
    pipeline_cost: float
    prefilter_cost: float
    parallel: Optional[int] = None

    def pretty(self) -> str:
        """A human-readable plan description."""
        bound = (
            f"STOP AFTER {self.stop_after}"
            if self.stop_after is not None else "unbounded"
        )
        lines = [
            f"{self.operator}({self.relation1}[{self.outer_size:,}], "
            f"{self.relation2}[{self.inner_size:,}])",
            f"  strategy: {self.strategy}",
            f"  distance range: [{self.min_distance:g}, "
            f"{self.max_distance:g}], {bound}",
        ]
        if self.parallel is not None:
            lines.append(f"  parallel workers: {self.parallel}")
        if self.selectivity1 < 1.0 or self.selectivity2 < 1.0:
            lines.append(
                f"  predicate selectivity: "
                f"{self.relation1}={self.selectivity1:.3f}, "
                f"{self.relation2}={self.selectivity2:.3f}"
            )
            lines.append(
                f"  plan costs: pipeline={self.pipeline_cost:,.0f}, "
                f"prefilter={self.prefilter_cost:,.0f}"
            )
        lines += [
            f"  est. result pairs: {self.estimated_result_pairs:,.0f}",
            f"  est. node I/O:     {self.estimated_node_io:,.0f}",
            f"  est. dist. calcs:  {self.estimated_dist_calcs:,.0f}",
            f"  est. cost:         {self.estimated_cost:,.0f}",
        ]
        return "\n".join(lines)


#: Display order of the parallel pipeline stages in EXPLAIN ANALYZE.
_STAGE_ORDER = ("partition", "worker_build", "worker_join", "merge")


class AnalyzedPlan(NamedTuple):
    """Output of :meth:`Database.explain_analyze`: the estimated plan
    plus what actually happened when the query ran to completion."""

    plan: PlanExplanation
    rows: int
    elapsed_s: float
    counters: CounterSnapshot
    obs: ObsSnapshot
    stages: Optional[Dict[str, float]]  # parallel queries only

    def metrics(self, labels: Optional[Dict[str, Any]] = None) -> list:
        """The execution's metrics in the shared export schema
        (:func:`repro.util.obs.metrics_records`)."""
        return metrics_records(self.counters, self.obs, labels)

    def pretty(self) -> str:
        """The estimated plan annotated with actual measurements."""
        lines = [self.plan.pretty()]
        lines.append(
            f"  actual: rows={self.rows:,}, "
            f"time={self.elapsed_s:.4f}s"
        )
        if self.stages is not None:
            lines.append("  actual stages (wall seconds):")
            for name in _STAGE_ORDER:
                seconds = self.stages.get(name, 0.0)
                note = (
                    "  (summed across workers)"
                    if name.startswith("worker") else ""
                )
                lines.append(f"    {name:<13} {seconds:9.4f}s{note}")
            extras = sorted(set(self.stages) - set(_STAGE_ORDER))
            for name in extras:
                lines.append(
                    f"    {name:<13} {self.stages[name]:9.4f}s"
                )
        spans = {
            name: entry for name, entry in sorted(self.obs.spans.items())
            if self.stages is None or not (
                name.startswith("parallel.") or name.startswith("worker.")
            )
        }
        if spans:
            lines.append("  actual spans:")
            for name, (count, total, __, ___) in spans.items():
                lines.append(
                    f"    {name:<18} {total:9.4f}s / {count:,}x"
                )
        if self.counters.values:
            lines.append("  actual counters:")
            for name in sorted(self.counters.values):
                lines.append(
                    f"    {name:<22} {self.counters.values[name]:,}"
                )
        peaks = {
            name: peak for name, peak in sorted(self.counters.peaks.items())
            if peak and peak != self.counters.values.get(name)
        }
        if peaks:
            lines.append("  actual peaks:")
            for name, peak in peaks.items():
                lines.append(f"    {name:<22} {peak:,}")
        return "\n".join(lines)


class Database:
    """A tiny spatial database: named relations over R*-trees.

    Parameters
    ----------
    metric:
        Point metric used for all distance terms.
    counters:
        Shared performance-counter registry (one is created if
        omitted) -- handy for inspecting what a query cost.
    """

    def __init__(
        self,
        metric: Metric = EUCLIDEAN,
        counters: Optional[CounterRegistry] = None,
    ) -> None:
        self.metric = metric
        self.counters = counters if counters is not None else CounterRegistry()
        self._relations: Dict[str, RTreeBase] = {}
        self._attributes: Dict[str, Dict[str, List[float]]] = {}

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        data: Union[RTreeBase, Sequence[Any]],
        bulk: bool = True,
        attributes: Optional[Dict[str, Sequence[float]]] = None,
        **tree_kwargs: Any,
    ) -> RTreeBase:
        """Register a relation.

        ``data`` is either an existing R-tree or a sequence of spatial
        objects (Points, Rects, shapes), which is indexed here --
        bulk-loaded by default, by repeated insertion with
        ``bulk=False``.  ``attributes`` maps attribute names to value
        sequences aligned with the objects' ids (insertion order).
        """
        if name in self._relations:
            raise QueryError(f"relation {name!r} already exists")
        if isinstance(data, RTreeBase):
            tree = data
        elif bulk:
            tree_kwargs.setdefault("counters", self.counters)
            tree = bulk_load_str(list(data), **tree_kwargs)
        else:
            tree_kwargs.setdefault("counters", self.counters)
            sample = data[0] if data else Point((0.0, 0.0))
            dim = sample.dim if isinstance(sample, Point) else (
                sample.mbr().dim if hasattr(sample, "mbr") else 2
            )
            tree_kwargs.setdefault("dim", dim)
            tree = RStarTree(**tree_kwargs)
            for obj in data:
                tree.insert(obj=obj)
        if attributes:
            for attr_name, values in attributes.items():
                if len(values) != len(tree):
                    raise QueryError(
                        f"attribute {attr_name!r} has {len(values)} "
                        f"values for {len(tree)} objects"
                    )
            self._attributes[name] = {
                attr_name: list(values)
                for attr_name, values in attributes.items()
            }
        self._relations[name] = tree
        return tree

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog."""
        if name not in self._relations:
            raise QueryError(f"relation {name!r} does not exist")
        del self._relations[name]
        self._attributes.pop(name, None)

    def relation(self, name: str) -> RTreeBase:
        """Look up a relation's index."""
        tree = self._relations.get(name)
        if tree is None:
            raise QueryError(f"relation {name!r} does not exist")
        return tree

    def relations(self) -> List[str]:
        """Names of all registered relations."""
        return sorted(self._relations)

    def attribute(self, relation: str, name: str) -> List[float]:
        """The stored values of one attribute (indexed by oid)."""
        values = self._attributes.get(relation, {}).get(name)
        if values is None:
            raise QueryError(
                f"relation {relation!r} has no attribute {name!r}"
            )
        return values

    # ------------------------------------------------------------------
    # predicate machinery
    # ------------------------------------------------------------------

    def _matcher(
        self, query: Query, relation: str
    ) -> Tuple[Optional[Callable[[int], bool]], float]:
        """An oid predicate and its selectivity for one relation."""
        predicates = [
            p for p in query.attribute_predicates
            if p.relation == relation
        ]
        if not predicates:
            return None, 1.0
        columns = [
            (self.attribute(relation, p.attribute), p)
            for p in predicates
        ]

        def matches(oid: int) -> bool:
            return all(p.matches(col[oid]) for col, p in columns)

        size = len(self.relation(relation))
        selectivity = (
            sum(1 for oid in range(size) if matches(oid)) / size
            if size else 1.0
        )
        return matches, selectivity

    def _pair_filter(
        self,
        match1: Optional[Callable[[int], bool]],
        match2: Optional[Callable[[int], bool]],
    ) -> Optional[Callable[[Pair], bool]]:
        if match1 is None and match2 is None:
            return None

        def keep(pair: Pair) -> bool:
            if (
                match1 is not None
                and pair.item1.kind != NODE
                and not match1(pair.item1.oid)
            ):
                return False
            if (
                match2 is not None
                and pair.item2.kind != NODE
                and not match2(pair.item2.oid)
            ):
                return False
            return True

        return keep

    @staticmethod
    def _filtered_tree(
        tree: RTreeBase, matches: Callable[[int], bool]
    ) -> Tuple[RTreeBase, List[int]]:
        """Materialize the qualifying subset into a temporary index;
        returns the tree and the new-oid -> original-oid mapping."""
        kept = sorted(
            (entry.oid, entry.obj if entry.obj is not None else entry.rect)
            for entry in tree.items()
            if matches(entry.oid)
        )
        mapping = [oid for oid, __ in kept]
        objects = [obj for __, obj in kept]
        sub_tree = bulk_load_str(
            objects, max_entries=tree.max_entries, dim=tree.dim,
            counters=tree.counters,
        )
        return sub_tree, mapping

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def _choose_strategy(
        self,
        query: Query,
        tree1: RTreeBase,
        tree2: RTreeBase,
        selectivity1: float,
        selectivity2: float,
    ) -> Tuple[str, float, float]:
        """Price the two Section 5 plans; returns (choice, cost_pipe,
        cost_prefilter)."""
        __, dmax = query.distance_bounds()
        model = JoinCostModel(tree1, tree2)
        pair_selectivity = selectivity1 * selectivity2
        # Pipeline: the join must surface enough raw pairs that the
        # qualifying subset reaches the requested count.
        raw_pairs = None
        if query.stop_after is not None and pair_selectivity > 0:
            raw_pairs = int(
                math.ceil(query.stop_after / pair_selectivity)
            )
        pipeline = model.estimate(
            max_distance=dmax,
            max_pairs=raw_pairs,
            semi_join=query.is_semi_join,
        ).total_cost()
        # Prefilter: pay the index builds, then join the small inputs.
        scaled = model.scaled(selectivity1, selectivity2)
        build = 0.0
        if selectivity1 < 1.0:
            build += estimate_build_cost(
                int(len(tree1) * selectivity1), tree1.max_entries
            )
        if selectivity2 < 1.0:
            build += estimate_build_cost(
                int(len(tree2) * selectivity2), tree2.max_entries
            )
        prefilter = build + scaled.estimate(
            max_distance=dmax,
            max_pairs=query.stop_after,
            semi_join=query.is_semi_join,
        ).total_cost()
        choice = "prefilter" if prefilter < pipeline else "pipeline"
        return choice, pipeline, prefilter

    def _operator(self, query: Query) -> type:
        if query.parallel is not None:
            if query.descending:
                raise QueryError(
                    "PARALLEL does not support ORDER BY ... DESC "
                    "(the parallel merge is nearest-first)"
                )
            return (
                ParallelDistanceSemiJoin if query.is_semi_join
                else ParallelDistanceJoin
            )
        if query.is_semi_join:
            return (
                ReverseDistanceSemiJoin if query.descending
                else IncrementalDistanceSemiJoin
            )
        return (
            ReverseDistanceJoin if query.descending
            else IncrementalDistanceJoin
        )

    def _build_execution(
        self, query: Query, strategy: str = "auto", **join_kwargs: Any
    ) -> Tuple[IncrementalDistanceJoin, Optional[List[int]],
               Optional[List[int]]]:
        """The join iterator plus oid remappings (None = identity)."""
        require(strategy in STRATEGIES,
                f"strategy must be one of {STRATEGIES}")
        tree1 = self.relation(query.relation1)
        tree2 = self.relation(query.relation2)
        match1, selectivity1 = self._matcher(query, query.relation1)
        match2, selectivity2 = self._matcher(query, query.relation2)

        if strategy == "auto":
            if match1 is None and match2 is None:
                strategy = "pipeline"
            else:
                strategy, __, ___ = self._choose_strategy(
                    query, tree1, tree2, selectivity1, selectivity2
                )

        dmin, dmax = query.distance_bounds()
        kwargs: Dict[str, Any] = dict(
            metric=self.metric,
            min_distance=dmin,
            max_distance=dmax,
            max_pairs=query.stop_after,
            counters=self.counters,
        )
        kwargs.update(join_kwargs)
        operator = self._operator(query)
        if query.parallel is not None:
            kwargs.setdefault("workers", query.parallel)

        mapping1: Optional[List[int]] = None
        mapping2: Optional[List[int]] = None
        if strategy == "prefilter":
            if match1 is not None:
                tree1, mapping1 = self._filtered_tree(tree1, match1)
            if match2 is not None:
                tree2, mapping2 = self._filtered_tree(tree2, match2)
        else:
            pair_filter = self._pair_filter(match1, match2)
            if pair_filter is not None:
                kwargs.setdefault("pair_filter", pair_filter)
        join = operator(tree1, tree2, **kwargs)
        return join, mapping1, mapping2

    def plan(
        self, query: Query, strategy: str = "auto", **join_kwargs: Any
    ) -> IncrementalDistanceJoin:
        """Build the join iterator for ``query`` (the "query plan").

        Note: for prefilter plans the iterator's oids refer to the
        temporary filtered indexes; use :meth:`execute_query` to get
        rows with original object ids.
        """
        join, __, ___ = self._build_execution(
            query, strategy=strategy, **join_kwargs
        )
        return join

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(
        self, sql: str, strategy: str = "auto", **join_kwargs: Any
    ) -> Iterator[Row]:
        """Parse and execute a query; returns a lazy row iterator.

        Extra keyword arguments are forwarded to the join constructor,
        so callers can select e.g. ``node_policy`` or ``queue="hybrid"``
        per query.
        """
        return self.execute_query(
            parse(sql), strategy=strategy, **join_kwargs
        )

    def execute_query(
        self, query: Query, strategy: str = "auto", **join_kwargs: Any
    ) -> Iterator[Row]:
        """Execute an already parsed :class:`Query`."""
        if query.explain:
            raise QueryError(
                "EXPLAIN queries describe execution instead of "
                "producing rows; use Database.explain() or "
                "Database.explain_analyze()"
            )
        join, mapping1, mapping2 = self._build_execution(
            query, strategy=strategy, **join_kwargs
        )
        return self._rows(join, mapping1, mapping2)

    @staticmethod
    def _rows(
        join: IncrementalDistanceJoin,
        mapping1: Optional[List[int]],
        mapping2: Optional[List[int]],
    ) -> Iterator[Row]:
        for result in join:
            oid1 = mapping1[result.oid1] if mapping1 is not None \
                else result.oid1
            oid2 = mapping2[result.oid2] if mapping2 is not None \
                else result.oid2
            yield Row(
                result.distance,
                oid1, result.obj1,
                oid2, result.obj2,
            )

    # ------------------------------------------------------------------
    # EXPLAIN (cost model; the paper's Section 5 future work)
    # ------------------------------------------------------------------

    def explain(self, sql: Union[str, Query]) -> PlanExplanation:
        """Describe how a query would execute and what it should cost.

        Nothing is executed; the estimates come from
        :class:`repro.query.costmodel.JoinCostModel` (uniformity
        assumptions, see that module).  An ``EXPLAIN`` prefix in the
        SQL is accepted and ignored (this method *is* EXPLAIN).
        """
        query = parse(sql) if isinstance(sql, str) else sql
        tree1 = self.relation(query.relation1)
        tree2 = self.relation(query.relation2)
        dmin, dmax = query.distance_bounds()
        __, selectivity1 = self._matcher(query, query.relation1)
        ___, selectivity2 = self._matcher(query, query.relation2)
        has_predicates = selectivity1 < 1.0 or selectivity2 < 1.0 or (
            query.attribute_predicates
        )
        if has_predicates:
            strategy, pipeline_cost, prefilter_cost = (
                self._choose_strategy(
                    query, tree1, tree2, selectivity1, selectivity2
                )
            )
        else:
            strategy = "pipeline"
            model = JoinCostModel(tree1, tree2)
            pipeline_cost = model.estimate(
                max_distance=dmax,
                max_pairs=query.stop_after,
                semi_join=query.is_semi_join,
            ).total_cost()
            prefilter_cost = pipeline_cost

        chosen_model = JoinCostModel(tree1, tree2)
        if strategy == "prefilter":
            chosen_model = chosen_model.scaled(
                selectivity1, selectivity2
            )
        estimate = chosen_model.estimate(
            max_distance=dmax,
            max_pairs=query.stop_after,
            semi_join=query.is_semi_join,
        )
        return PlanExplanation(
            operator=self._operator(query).__name__,
            strategy=strategy,
            relation1=query.relation1,
            relation2=query.relation2,
            outer_size=len(tree1),
            inner_size=len(tree2),
            min_distance=dmin,
            max_distance=dmax,
            stop_after=query.stop_after,
            selectivity1=selectivity1,
            selectivity2=selectivity2,
            estimated_result_pairs=estimate.result_pairs,
            estimated_node_io=estimate.node_io,
            estimated_dist_calcs=estimate.dist_calcs,
            estimated_cost=min(pipeline_cost, prefilter_cost),
            pipeline_cost=pipeline_cost,
            prefilter_cost=prefilter_cost,
            parallel=query.parallel,
        )

    def explain_analyze(
        self,
        sql: Union[str, Query],
        strategy: str = "auto",
        **join_kwargs: Any,
    ) -> AnalyzedPlan:
        """EXPLAIN ANALYZE: run the query to completion and report the
        plan annotated with actual row counts, counters, span timings
        and -- for ``PARALLEL`` queries -- the per-stage wall-time
        breakdown (partition / worker build / worker join / merge).

        Like its namesake elsewhere, this *executes* the query (rows
        are consumed and discarded), so an unbounded join pays the
        full join cost.  Extra keyword arguments are forwarded to the
        join constructor; pass ``observer=`` to reuse a caller-owned
        :class:`~repro.util.obs.Observer`.
        """
        query = parse(sql) if isinstance(sql, str) else sql
        plan = self.explain(query)
        observer = join_kwargs.pop("observer", None)
        obs = observer if observer is not None else Observer()
        before = self.counters.full_snapshot()
        start = time.perf_counter()
        join, mapping1, mapping2 = self._build_execution(
            query, strategy=strategy, observer=obs, **join_kwargs
        )
        rows = sum(1 for __ in self._rows(join, mapping1, mapping2))
        elapsed = time.perf_counter() - start
        counters = self.counters.full_snapshot().delta_from(before)
        # Peaks are levels, so the delta keeps them all -- but a shared
        # registry then reports high-water marks from *earlier* queries
        # too.  Keep only peaks this execution touched or raised.
        counters = CounterSnapshot(
            values=counters.values,
            peaks={
                name: peak for name, peak in counters.peaks.items()
                if name in counters.values
                or peak != before.peaks.get(name, 0)
            },
        )
        stages = (
            join.stage_breakdown()
            if isinstance(join, ParallelDistanceJoin) else None
        )
        return AnalyzedPlan(
            plan=plan,
            rows=rows,
            elapsed_s=elapsed,
            counters=counters,
            obs=obs.snapshot(),
            stages=stages,
        )
