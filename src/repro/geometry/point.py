"""Immutable n-dimensional points."""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.errors import DimensionMismatchError, GeometryError


class Point:
    """An immutable point in n-dimensional space.

    Points behave like fixed-length sequences of floats and support
    value equality and hashing, so they can key dictionaries and be
    stored in sets.

    Examples
    --------
    >>> p = Point((1.0, 2.0))
    >>> p.dim, p[0], p[1]
    (2, 1.0, 2.0)
    >>> Point((0, 0)) == Point((0.0, 0.0))
    True
    """

    __slots__ = ("coords",)

    def __init__(self, coords: Iterable[float]) -> None:
        coords_tuple: Tuple[float, ...] = tuple(float(c) for c in coords)
        if not coords_tuple:
            raise GeometryError("a point needs at least one coordinate")
        object.__setattr__(self, "coords", coords_tuple)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    def __reduce__(self):
        # Immutability blocks the default slot-state pickling (it goes
        # through __setattr__); reconstruct through the constructor so
        # points can cross process boundaries (parallel join workers).
        return (Point, (self.coords,))

    @property
    def dim(self) -> int:
        """Dimensionality of the point."""
        return len(self.coords)

    @property
    def x(self) -> float:
        """First coordinate (convenience for 2-d use)."""
        return self.coords[0]

    @property
    def y(self) -> float:
        """Second coordinate (convenience for 2-d use)."""
        if len(self.coords) < 2:
            raise GeometryError("point has no y coordinate")
        return self.coords[1]

    def check_dim(self, other_dim: int) -> None:
        """Raise :class:`DimensionMismatchError` unless dims agree."""
        if len(self.coords) != other_dim:
            raise DimensionMismatchError(len(self.coords), other_dim)

    def __getitem__(self, index: int) -> float:
        return self.coords[index]

    def __iter__(self) -> Iterator[float]:
        return iter(self.coords)

    def __len__(self) -> int:
        return len(self.coords)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.coords == other.coords

    def __hash__(self) -> int:
        return hash(self.coords)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c:g}" for c in self.coords)
        return f"Point(({inner}))"

    def translated(self, offsets: Iterable[float]) -> "Point":
        """A new point offset by ``offsets`` component-wise."""
        offsets_tuple = tuple(float(o) for o in offsets)
        if len(offsets_tuple) != len(self.coords):
            raise DimensionMismatchError(len(self.coords), len(offsets_tuple))
        return Point(c + o for c, o in zip(self.coords, offsets_tuple))
