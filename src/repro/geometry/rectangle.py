"""Immutable n-dimensional axis-aligned rectangles (hyper-rectangles).

Rectangles are the workhorse of the R-tree substrate: node regions,
entry keys, and object bounding rectangles are all :class:`Rect`.
Distance computations between rectangles/points live in
:mod:`repro.geometry.metrics`; this module provides the purely
set-theoretic operations (union, intersection, containment, area,
margin, overlap) that the R*-tree insertion and split algorithms need.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.point import Point


class Rect:
    """An immutable axis-aligned hyper-rectangle ``[lo, hi]`` per dimension.

    Degenerate rectangles (``lo == hi`` in some or all dimensions) are
    allowed; a point is representable as a degenerate rectangle via
    :meth:`from_point`.

    Examples
    --------
    >>> r = Rect((0, 0), (2, 3))
    >>> r.area(), r.margin()
    (6.0, 10.0)
    >>> r.contains_point(Point((1, 1)))
    True
    """

    __slots__ = ("lo", "hi")

    def __init__(
        self, lo: Iterable[float], hi: Iterable[float]
    ) -> None:
        lo_t: Tuple[float, ...] = tuple(float(c) for c in lo)
        hi_t: Tuple[float, ...] = tuple(float(c) for c in hi)
        if not lo_t:
            raise GeometryError("a rectangle needs at least one dimension")
        if len(lo_t) != len(hi_t):
            raise DimensionMismatchError(len(lo_t), len(hi_t))
        for a, b in zip(lo_t, hi_t):
            if a > b:
                raise GeometryError(
                    f"rectangle has lo > hi in some dimension: {a} > {b}"
                )
        object.__setattr__(self, "lo", lo_t)
        object.__setattr__(self, "hi", hi_t)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rect is immutable")

    def __reduce__(self):
        # Immutability blocks the default slot-state pickling (it goes
        # through __setattr__); reconstruct through the constructor so
        # rectangles can cross process boundaries (parallel join
        # workers).
        return (Rect, (self.lo, self.hi))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_point(cls, point: Point) -> "Rect":
        """The degenerate rectangle covering exactly ``point``."""
        return cls(point.coords, point.coords)

    @classmethod
    def from_points(cls, points: Sequence[Point]) -> "Rect":
        """The minimum bounding rectangle of a non-empty point set."""
        if not points:
            raise GeometryError("cannot bound an empty point set")
        dim = points[0].dim
        lo = list(points[0].coords)
        hi = list(points[0].coords)
        for p in points[1:]:
            p.check_dim(dim)
            for i, c in enumerate(p.coords):
                if c < lo[i]:
                    lo[i] = c
                if c > hi[i]:
                    hi[i] = c
        return cls(lo, hi)

    @classmethod
    def union_of(cls, rects: Sequence["Rect"]) -> "Rect":
        """The minimum bounding rectangle of a non-empty rect set."""
        if not rects:
            raise GeometryError("cannot bound an empty rectangle set")
        lo = list(rects[0].lo)
        hi = list(rects[0].hi)
        dim = len(lo)
        for r in rects[1:]:
            if len(r.lo) != dim:
                raise DimensionMismatchError(dim, len(r.lo))
            for i in range(dim):
                if r.lo[i] < lo[i]:
                    lo[i] = r.lo[i]
                if r.hi[i] > hi[i]:
                    hi[i] = r.hi[i]
        return cls(lo, hi)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality of the rectangle."""
        return len(self.lo)

    def side(self, i: int) -> float:
        """Extent of the rectangle along dimension ``i``."""
        return self.hi[i] - self.lo[i]

    def center(self) -> Point:
        """The center point of the rectangle."""
        return Point((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    def area(self) -> float:
        """Volume (area in 2-d) of the rectangle."""
        result = 1.0
        for a, b in zip(self.lo, self.hi):
            result *= b - a
        return result

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion uses this)."""
        return sum(b - a for a, b in zip(self.lo, self.hi))

    def is_degenerate(self) -> bool:
        """True if the rectangle has zero extent in every dimension."""
        return all(a == b for a, b in zip(self.lo, self.hi))

    # ------------------------------------------------------------------
    # set operations
    # ------------------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both ``self`` and ``other``."""
        self._check_dim(other)
        return Rect(
            (min(a, b) for a, b in zip(self.lo, other.lo)),
            (max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping region, or ``None`` if the rects are disjoint."""
        self._check_dim(other)
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        for a, b in zip(lo, hi):
            if a > b:
                return None
        return Rect(lo, hi)

    def intersects(self, other: "Rect") -> bool:
        """True if the rectangles share at least a boundary point."""
        self._check_dim(other)
        for a_lo, a_hi, b_lo, b_hi in zip(
            self.lo, self.hi, other.lo, other.hi
        ):
            if a_lo > b_hi or b_lo > a_hi:
                return False
        return True

    def overlap_area(self, other: "Rect") -> float:
        """Volume of the intersection (0.0 when disjoint)."""
        self._check_dim(other)
        result = 1.0
        for a_lo, a_hi, b_lo, b_hi in zip(
            self.lo, self.hi, other.lo, other.hi
        ):
            extent = min(a_hi, b_hi) - max(a_lo, b_lo)
            if extent <= 0.0:
                return 0.0
            result *= extent
        return result

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` lies inside or on the boundary."""
        point.check_dim(len(self.lo))
        return all(
            a <= c <= b for a, c, b in zip(self.lo, point.coords, self.hi)
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely within ``self``."""
        self._check_dim(other)
        return all(
            a_lo <= b_lo and b_hi <= a_hi
            for a_lo, a_hi, b_lo, b_hi in zip(
                self.lo, self.hi, other.lo, other.hi
            )
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for ``self`` to also cover ``other``.

        This is the classic R-tree ChooseLeaf criterion.
        """
        return self.union(other).area() - self.area()

    def corners(self) -> Iterator[Point]:
        """Iterate over all ``2^dim`` corner points."""
        dim = len(self.lo)
        for mask in range(1 << dim):
            yield Point(
                self.hi[i] if mask & (1 << i) else self.lo[i]
                for i in range(dim)
            )

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------

    def _check_dim(self, other: "Rect") -> None:
        if len(self.lo) != len(other.lo):
            raise DimensionMismatchError(len(self.lo), len(other.lo))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        lo = ", ".join(f"{c:g}" for c in self.lo)
        hi = ", ".join(f"{c:g}" for c in self.hi)
        return f"Rect(({lo}), ({hi}))"
