"""Spatial geometry substrate: points, rectangles, metrics, shapes.

This package supplies the geometric machinery the join algorithms are
built on.  Everything is dimension-agnostic (the paper's experiments use
2-d points, but the algorithms -- and this implementation -- work in any
dimension) and metric-agnostic (any Minkowski ``L_p`` metric, including
the paper's Chessboard, Manhattan, and Euclidean metrics).
"""

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.metrics import (
    CHESSBOARD,
    EUCLIDEAN,
    MANHATTAN,
    Metric,
    MinkowskiMetric,
)
from repro.geometry.shapes import (
    LineSegment,
    PointObject,
    Polygon,
    SpatialObject,
)

__all__ = [
    "Point",
    "Rect",
    "Metric",
    "MinkowskiMetric",
    "EUCLIDEAN",
    "MANHATTAN",
    "CHESSBOARD",
    "SpatialObject",
    "PointObject",
    "LineSegment",
    "Polygon",
]
