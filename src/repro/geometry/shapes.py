"""Spatial objects with extent: line segments and simple polygons.

The paper's experiments use 2-d points, and it lists joins over objects
with extent as future work (Section 5).  This module implements that
extension for the two classic cases -- line segments and simple
polygons -- so the join algorithms can run on non-point data.  Exact
object/object distances for extended shapes are Euclidean (the standard
geometric definitions); rectangle *bounds* remain metric-generic via
:mod:`repro.geometry.metrics`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


class SpatialObject(ABC):
    """Base class for data objects storable in a spatial index.

    A spatial object must expose its minimum bounding rectangle and an
    exact (Euclidean) minimum distance to any other spatial object.
    """

    @abstractmethod
    def mbr(self) -> Rect:
        """The minimum bounding rectangle of the object."""

    @abstractmethod
    def distance_to(self, other: "SpatialObject") -> float:
        """Exact Euclidean minimum distance to ``other``."""


class PointObject(SpatialObject):
    """A point wrapped as a :class:`SpatialObject`."""

    __slots__ = ("point",)

    def __init__(self, point: Point) -> None:
        self.point = point

    def mbr(self) -> Rect:
        return Rect.from_point(self.point)

    def distance_to(self, other: SpatialObject) -> float:
        if isinstance(other, PointObject):
            return _point_point(self.point, other.point)
        return other.distance_to(self)

    def __repr__(self) -> str:
        return f"PointObject({self.point!r})"


class LineSegment(SpatialObject):
    """A 2-d line segment between two endpoints."""

    __slots__ = ("a", "b")

    def __init__(self, a: Point, b: Point) -> None:
        if a.dim != 2 or b.dim != 2:
            raise GeometryError("LineSegment supports 2-d points only")
        self.a = a
        self.b = b

    def mbr(self) -> Rect:
        return Rect.from_points([self.a, self.b])

    def length(self) -> float:
        """Euclidean length of the segment."""
        return _point_point(self.a, self.b)

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the nearest segment point."""
        return _point_segment(p, self.a, self.b)

    def distance_to(self, other: SpatialObject) -> float:
        if isinstance(other, PointObject):
            return self.distance_to_point(other.point)
        if isinstance(other, LineSegment):
            return _segment_segment(self.a, self.b, other.a, other.b)
        if isinstance(other, Polygon):
            return other.distance_to(self)
        raise GeometryError(
            f"no distance defined between LineSegment and "
            f"{type(other).__name__}"
        )

    def intersects_segment(self, other: "LineSegment") -> bool:
        """True if the two segments share at least one point."""
        return _segment_segment(self.a, self.b, other.a, other.b) == 0.0

    def __repr__(self) -> str:
        return f"LineSegment({self.a!r}, {self.b!r})"


class Polygon(SpatialObject):
    """A simple (non-self-intersecting) 2-d polygon.

    The vertex ring may be given in either orientation and must not
    repeat the first vertex at the end.  Distances treat the polygon as
    a filled region: points inside have distance 0.
    """

    __slots__ = ("vertices",)

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 3:
            raise GeometryError("a polygon needs at least 3 vertices")
        for v in vertices:
            if v.dim != 2:
                raise GeometryError("Polygon supports 2-d points only")
        self.vertices: Tuple[Point, ...] = tuple(vertices)

    def mbr(self) -> Rect:
        return Rect.from_points(list(self.vertices))

    def edges(self) -> Sequence[Tuple[Point, Point]]:
        """The polygon boundary as a list of (start, end) vertex pairs."""
        n = len(self.vertices)
        return [
            (self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)
        ]

    def contains_point(self, p: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        for a, b in self.edges():
            if _point_segment(p, a, b) == 0.0:
                return True
        inside = False
        x, y = p.x, p.y
        for a, b in self.edges():
            ax, ay, bx, by = a.x, a.y, b.x, b.y
            if (ay > y) != (by > y):
                x_cross = ax + (y - ay) * (bx - ax) / (by - ay)
                if x_cross > x:
                    inside = not inside
        return inside

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the polygon (0 if inside)."""
        if self.contains_point(p):
            return 0.0
        return min(_point_segment(p, a, b) for a, b in self.edges())

    def distance_to(self, other: SpatialObject) -> float:
        if isinstance(other, PointObject):
            return self.distance_to_point(other.point)
        if isinstance(other, LineSegment):
            if self.contains_point(other.a) or self.contains_point(other.b):
                return 0.0
            return min(
                _segment_segment(other.a, other.b, a, b)
                for a, b in self.edges()
            )
        if isinstance(other, Polygon):
            if any(self.contains_point(v) for v in other.vertices):
                return 0.0
            if any(other.contains_point(v) for v in self.vertices):
                return 0.0
            return min(
                _segment_segment(a1, b1, a2, b2)
                for a1, b1 in self.edges()
                for a2, b2 in other.edges()
            )
        raise GeometryError(
            f"no distance defined between Polygon and {type(other).__name__}"
        )

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices)"


# ----------------------------------------------------------------------
# low-level Euclidean kernels
# ----------------------------------------------------------------------


def _point_point(p: Point, q: Point) -> float:
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(p, q)))


def _point_segment(p: Point, a: Point, b: Point) -> float:
    """Euclidean distance from point ``p`` to segment ``ab`` (2-d)."""
    ax, ay = a.x, a.y
    bx, by = b.x, b.y
    px, py = p.x, p.y
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)


def _orient(ax: float, ay: float, bx: float, by: float,
            cx: float, cy: float) -> float:
    """Signed twice-area of triangle abc (positive = counter-clockwise)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def _segments_intersect(a: Point, b: Point, c: Point, d: Point) -> bool:
    """True if segments ``ab`` and ``cd`` share a point (2-d)."""
    d1 = _orient(c.x, c.y, d.x, d.y, a.x, a.y)
    d2 = _orient(c.x, c.y, d.x, d.y, b.x, b.y)
    d3 = _orient(a.x, a.y, b.x, b.y, c.x, c.y)
    d4 = _orient(a.x, a.y, b.x, b.y, d.x, d.y)
    if ((d1 > 0) != (d2 > 0) or (d1 < 0) != (d2 < 0)) and (
        (d3 > 0) != (d4 > 0) or (d3 < 0) != (d4 < 0)
    ):
        if d1 != 0 and d2 != 0 and d3 != 0 and d4 != 0:
            return True
    # Collinear / touching cases fall through to the distance check in
    # _segment_segment, which handles them via endpoint projections.
    if d1 == 0 and _point_segment(a, c, d) == 0.0:
        return True
    if d2 == 0 and _point_segment(b, c, d) == 0.0:
        return True
    if d3 == 0 and _point_segment(c, a, b) == 0.0:
        return True
    if d4 == 0 and _point_segment(d, a, b) == 0.0:
        return True
    if d1 != 0 or d2 != 0 or d3 != 0 or d4 != 0:
        # Proper crossing requires strict sign changes on both segments.
        strict = (d1 > 0) != (d2 > 0) and (d3 > 0) != (d4 > 0)
        return strict
    return False


def _segment_segment(a: Point, b: Point, c: Point, d: Point) -> float:
    """Euclidean distance between segments ``ab`` and ``cd`` (2-d)."""
    if _segments_intersect(a, b, c, d):
        return 0.0
    return min(
        _point_segment(a, c, d),
        _point_segment(b, c, d),
        _point_segment(c, a, b),
        _point_segment(d, a, b),
    )
