"""Distance metrics and the MINDIST / MAXDIST / MINMAXDIST bounds.

The incremental join algorithms need four families of distance
functions (paper Section 2.2): object/object, object/node, node/object
and node/node.  When both objects and node regions are represented by
(possibly degenerate) rectangles, all of them reduce to the three
rectangle bounds implemented here:

``mindist``
    Smallest possible distance between any point of one rectangle and
    any point of the other.  This is the priority-queue key.  It is
    *consistent* in the paper's sense: replacing an item by one of its
    children can never decrease it.

``maxdist``
    Largest possible distance between any point of one rectangle and
    any point of the other.  An upper bound on the distance of every
    object pair generated from a queue pair, valid for arbitrary node
    regions.

``minmaxdist``
    The tighter upper bound of Roussopoulos et al. that is valid only
    for *minimal* bounding rectangles (each face must touch the bounded
    object).  Used for object-bounding-rectangle pairs in the
    maximum-distance estimation of Section 2.2.4.

All bounds are parameterized by a Minkowski ``L_p`` metric; the three
metrics named in the paper are provided as module constants
:data:`MANHATTAN` (L1), :data:`EUCLIDEAN` (L2), and :data:`CHESSBOARD`
(L-infinity).

Degenerate inputs
-----------------
The batch kernels of :mod:`repro.kernels` mass-produce bound
evaluations over whole entry arrays and must agree *bitwise* with the
scalar implementations here, so the edge-case behaviour is pinned
down explicitly:

- **Zero-area rectangles** (``lo == hi`` in some or all dimensions)
  are the normal representation of points and need no special
  handling: every per-dimension branch below is well defined for
  them, and ``maxdist_rect_rect`` of valid rectangles is provably
  non-negative (``max(a_hi - b_lo, b_hi - a_lo) >= 0`` whenever
  ``a_lo <= a_hi`` and ``b_lo <= b_hi``).
- **Inverted rectangles** (``lo > hi``) cannot reach these functions
  through the object API: the :class:`~repro.geometry.rectangle.Rect`
  constructor rejects them, so float rounding in callers cannot
  smuggle one in.  The bounds are *not* defined for inverted inputs.
- **Infinite coordinates** are legal; where two same-signed infinities
  meet, IEEE-754 yields ``inf - inf = nan`` and the NaN propagates
  through :meth:`Metric.combine` exactly as Python's ``max``/``sum``
  propagate it.  The batch kernels replicate the comparison polarity
  (``b if b > a else a``) so even NaN outcomes match bit-for-bit.
- **Reproducible Euclidean combine**: the L2 norm is evaluated as
  ``sqrt`` of a left-to-right sum of squares -- multiply, add and
  square root are correctly-rounded IEEE-754 operations, so numpy
  reproduces the result exactly.  ``math.hypot`` is deliberately *not*
  used: its extra-precision accumulation differs from any numpy
  expression by 1 ulp on a small fraction of inputs.  The trade-off is
  that per-dimension separations beyond ``sqrt(DBL_MAX) ~ 1.34e154``
  overflow to ``inf`` (irrelevant for coordinate data, which the
  paper's workloads keep far below that).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import DimensionMismatchError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

_INF = float("inf")


class Metric(ABC):
    """Abstract base for point metrics with induced rectangle bounds.

    Subclasses implement :meth:`combine`, which turns a vector of
    per-dimension non-negative separations into a scalar distance.  The
    rectangle bounds are derived generically from per-dimension
    component analysis, so any metric whose value is a monotone
    symmetric function of the per-dimension absolute differences (every
    Minkowski metric) works unchanged.
    """

    name = "abstract"

    @abstractmethod
    def combine(self, deltas: Sequence[float]) -> float:
        """Norm of a vector of per-dimension non-negative separations."""

    # ------------------------------------------------------------------
    # point/point
    # ------------------------------------------------------------------

    def distance(self, p1: Point, p2: Point) -> float:
        """Distance between two points."""
        p1.check_dim(p2.dim)
        return self.combine([abs(a - b) for a, b in zip(p1, p2)])

    # ------------------------------------------------------------------
    # point/rect
    # ------------------------------------------------------------------

    def mindist_point_rect(self, p: Point, r: Rect) -> float:
        """Distance from ``p`` to the nearest point of ``r`` (0 inside)."""
        p.check_dim(r.dim)
        deltas = []
        for c, lo, hi in zip(p.coords, r.lo, r.hi):
            if c < lo:
                deltas.append(lo - c)
            elif c > hi:
                deltas.append(c - hi)
            else:
                deltas.append(0.0)
        return self.combine(deltas)

    def maxdist_point_rect(self, p: Point, r: Rect) -> float:
        """Distance from ``p`` to the farthest point of ``r``."""
        p.check_dim(r.dim)
        deltas = [
            max(abs(c - lo), abs(c - hi))
            for c, lo, hi in zip(p.coords, r.lo, r.hi)
        ]
        return self.combine(deltas)

    def minmaxdist_point_rect(self, p: Point, r: Rect) -> float:
        """Roussopoulos MINMAXDIST from a point to a minimal bounding rect.

        Upper-bounds the distance from ``p`` to the *object* minimally
        bounded by ``r``: the object touches every face of ``r``, so
        for each dimension ``k`` there is an object point on the nearer
        ``k``-face; its other coordinates are at worst at the far side.
        The bound is the minimum over ``k`` of that worst case.
        """
        p.check_dim(r.dim)
        dim = r.dim
        near_face = []
        far_side = []
        for c, lo, hi in zip(p.coords, r.lo, r.hi):
            mid = (lo + hi) / 2.0
            near_face.append(abs(c - (lo if c <= mid else hi)))
            far_side.append(abs(c - (lo if c >= mid else hi)))
        best = _INF
        for k in range(dim):
            deltas = far_side[:]
            deltas[k] = near_face[k]
            value = self.combine(deltas)
            if value < best:
                best = value
        return best

    # ------------------------------------------------------------------
    # rect/rect
    # ------------------------------------------------------------------

    def mindist_rect_rect(self, r1: Rect, r2: Rect) -> float:
        """Smallest distance between any points of ``r1`` and ``r2``."""
        if r1.dim != r2.dim:
            raise DimensionMismatchError(r1.dim, r2.dim)
        deltas = []
        for a_lo, a_hi, b_lo, b_hi in zip(r1.lo, r1.hi, r2.lo, r2.hi):
            if a_hi < b_lo:
                deltas.append(b_lo - a_hi)
            elif b_hi < a_lo:
                deltas.append(a_lo - b_hi)
            else:
                deltas.append(0.0)
        return self.combine(deltas)

    def maxdist_rect_rect(self, r1: Rect, r2: Rect) -> float:
        """Largest distance between any points of ``r1`` and ``r2``."""
        if r1.dim != r2.dim:
            raise DimensionMismatchError(r1.dim, r2.dim)
        deltas = [
            max(a_hi - b_lo, b_hi - a_lo)
            for a_lo, a_hi, b_lo, b_hi in zip(r1.lo, r1.hi, r2.lo, r2.hi)
        ]
        return self.combine(deltas)

    def minmaxdist_rect_rect(self, r1: Rect, r2: Rect) -> float:
        """MINMAXDIST between two *minimal* object bounding rectangles.

        Upper-bounds the minimum distance between the two bounded
        objects.  Both objects touch every face of their rectangle, so
        for any dimension ``k`` there are object points on some pair of
        ``k``-faces whose ``k``-separation is the smallest face-to-face
        gap, while every other coordinate differs by at most the
        ``maxdist`` component.  Taking the minimum over ``k`` yields a
        valid (and usually much tighter than ``maxdist``) upper bound.
        """
        if r1.dim != r2.dim:
            raise DimensionMismatchError(r1.dim, r2.dim)
        dim = r1.dim
        face_gap = []
        max_comp = []
        for a_lo, a_hi, b_lo, b_hi in zip(r1.lo, r1.hi, r2.lo, r2.hi):
            face_gap.append(
                min(
                    abs(a_lo - b_lo),
                    abs(a_lo - b_hi),
                    abs(a_hi - b_lo),
                    abs(a_hi - b_hi),
                )
            )
            max_comp.append(max(a_hi - b_lo, b_hi - a_lo))
        best = _INF
        for k in range(dim):
            deltas = max_comp[:]
            deltas[k] = face_gap[k]
            value = self.combine(deltas)
            if value < best:
                best = value
        return best

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class MinkowskiMetric(Metric):
    """The ``L_p`` family of metrics, including ``p = inf`` (Chessboard).

    Parameters
    ----------
    p:
        The Minkowski order.  ``1`` gives Manhattan, ``2`` Euclidean,
        ``float('inf')`` Chessboard.  Any ``p >= 1`` is accepted.
    """

    def __init__(self, p: float) -> None:
        if not (p >= 1.0):
            raise ValueError(f"Minkowski order must be >= 1, got {p!r}")
        self.p = float(p)
        if self.p == 1.0:
            self.name = "manhattan"
        elif self.p == 2.0:
            self.name = "euclidean"
        elif math.isinf(self.p):
            self.name = "chessboard"
        else:
            self.name = f"minkowski-{self.p:g}"

    def combine(self, deltas: Sequence[float]) -> float:
        p = self.p
        if math.isinf(p):
            return max(deltas) if deltas else 0.0
        if p == 2.0:
            # Left-to-right sum of squares, not math.hypot: every step
            # is correctly rounded, so the batch kernels reproduce the
            # result bit-for-bit (see the module docstring).
            total = 0.0
            for d in deltas:
                total += d * d
            return math.sqrt(total)
        if p == 1.0:
            return sum(deltas)
        return sum(d**p for d in deltas) ** (1.0 / p)

    def distance(self, p1: Point, p2: Point) -> float:
        if self.p == 2.0:
            # Inline L2 in the same reproducible form as combine()
            # (math.dist's extended-precision path would diverge from
            # the batch point-distance kernel by 1 ulp occasionally).
            p1.check_dim(p2.dim)
            total = 0.0
            for a, b in zip(p1.coords, p2.coords):
                d = a - b
                total += d * d
            return math.sqrt(total)
        return super().distance(p1, p2)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MinkowskiMetric):
            return NotImplemented
        return self.p == other.p

    def __hash__(self) -> int:
        return hash(("minkowski", self.p))


#: The Euclidean (L2) metric -- the paper's experiments use this.
EUCLIDEAN = MinkowskiMetric(2.0)

#: The Manhattan / city-block (L1) metric.
MANHATTAN = MinkowskiMetric(1.0)

#: The Chessboard / maximum (L-infinity) metric.
CHESSBOARD = MinkowskiMetric(_INF)
