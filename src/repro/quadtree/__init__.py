"""A PR bucket quadtree substrate.

The paper's algorithms "work for any spatial data structure based on a
hierarchical decomposition" (Section 2.2) and discuss quadtrees as the
canonical *unbalanced* case (Section 2.2.2).  This package provides a
point-region bucket quadtree that speaks the same node/entry protocol
as the R-trees, so :class:`repro.core.IncrementalDistanceJoin` and the
semi-join run on it unchanged -- including R-tree-to-quadtree joins.
"""

from repro.quadtree.prquadtree import PRQuadtree
from repro.quadtree.validate import validate_quadtree

__all__ = ["PRQuadtree", "validate_quadtree"]
