"""Structural invariant checking for the PR quadtree."""

from __future__ import annotations

from typing import Set

from repro.errors import TreeInvariantError
from repro.quadtree.prquadtree import PRQuadtree, QuadNode


def validate_quadtree(tree: PRQuadtree) -> None:
    """Raise :class:`TreeInvariantError` on any violated invariant:

    1. every stored point lies inside its leaf's region;
    2. every child region is the correct quadrant of its parent;
    3. leaf buckets respect the capacity (unless at max depth);
    4. each node's ``level`` equals its height;
    5. the recorded size matches the number of stored points;
    6. page ids are unique and reachable pages are allocated.
    """
    seen: Set[int] = set()
    count, __ = _validate(tree, tree.root_id, depth=0, seen=seen)
    if count != tree.size:
        raise TreeInvariantError(
            f"tree.size is {tree.size} but {count} points found"
        )


def _validate(tree: PRQuadtree, page_id: int, depth: int, seen: Set[int]):
    if page_id in seen:
        raise TreeInvariantError(f"page {page_id} reachable twice")
    seen.add(page_id)
    if not tree.store.exists(page_id):
        raise TreeInvariantError(f"page {page_id} is not allocated")
    node: QuadNode = tree._raw(page_id)

    if node.is_leaf:
        if (
            len(node.points) > tree.bucket_capacity
            and depth < tree.max_depth
        ):
            raise TreeInvariantError(
                f"leaf {page_id} overflows: {len(node.points)} > "
                f"{tree.bucket_capacity} above max depth"
            )
        for __, point in node.points:
            if not node.region.contains_point(point):
                raise TreeInvariantError(
                    f"point {point!r} outside leaf region "
                    f"{node.region!r}"
                )
        if node.level != 0:
            raise TreeInvariantError(
                f"leaf {page_id} has level {node.level}, expected 0"
            )
        return len(node.points), 0

    assert node.children is not None
    count = 0
    max_child_level = -1
    for index, child_id in enumerate(node.children):
        if child_id is None:
            continue
        child = tree._raw(child_id)
        expected_region = tree._quadrant_region(node.region, index)
        if child.region != expected_region:
            raise TreeInvariantError(
                f"child {child_id} region {child.region!r} is not "
                f"quadrant {index} of {node.region!r}"
            )
        child_count, child_level = _validate(
            tree, child_id, depth + 1, seen
        )
        count += child_count
        max_child_level = max(max_child_level, child_level)
    expected_level = max_child_level + 1
    if node.level != expected_level:
        raise TreeInvariantError(
            f"node {page_id} level {node.level} != height "
            f"{expected_level}"
        )
    return count, node.level
