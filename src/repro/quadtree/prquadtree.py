"""Point-region (PR) bucket quadtree.

A PR quadtree decomposes a fixed square universe: every internal node
has exactly ``2^dim`` children covering equal sub-quadrants, and
points live in leaf buckets of bounded capacity.  Unlike the R-tree it
is *unbalanced* -- leaf depth follows data density -- which is exactly
the structural case the paper's Section 2.2.2 discusses for its
algorithms.

The tree exposes the same substrate protocol the join drivers consume:

- ``read_node(page_id)`` returning a node with ``level``,
  ``is_leaf``, and ``entries`` (:class:`BranchEntry` /
  :class:`LeafEntry` with key rectangles);
- ``root_id``, ``pool``, ``counters``, ``len()``, ``bounds()``,
  ``min_subtree_count`` / ``avg_subtree_count``.

Because the structure is unbalanced, a node's ``level`` is its
*height* (longest path to a leaf); the join only uses levels for
tie-breaking, and always re-reads the true node to decide whether
entries are children or objects, so mixed-depth children are handled
correctly.  Empty quadrants are simply not materialized as entries.
Subtree cardinality lower bounds are 1 (a quadtree guarantees no
minimum occupancy), which keeps the maximum-distance estimator safe.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import TreeError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.storage.buffer import DEFAULT_CAPACITY, BufferPool
from repro.storage.pager import DEFAULT_PAGE_SIZE, PageStore
from repro.util.counters import CounterRegistry
from repro.util.validation import require, require_positive


class QuadNode:
    """One quadtree node (payload of a page).

    ``children`` maps quadrant index -> child page id for internal
    nodes; ``points`` holds ``(oid, Point)`` for leaf buckets.
    ``level`` is the node's height: 0 for leaves, and
    ``1 + max(child levels)`` above (maintained on every update).
    """

    __slots__ = ("page_id", "region", "level", "children", "points")

    def __init__(self, page_id: int, region: Rect) -> None:
        self.page_id = page_id
        self.region = region
        self.level = 0
        self.children: Optional[List[Optional[int]]] = None
        self.points: List = []

    @property
    def is_leaf(self) -> bool:
        """True for bucket (point-holding) nodes."""
        return self.children is None

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"QuadNode({kind}, page={self.page_id}, level={self.level})"


class _NodeView:
    """Adapter presenting a :class:`QuadNode` through the R-tree node
    protocol (``level`` + ``entries`` of Branch/Leaf entries) that the
    join drivers traverse."""

    __slots__ = ("page_id", "level", "entries", "_soa")

    def __init__(self, page_id: int, level: int, entries: List) -> None:
        self.page_id = page_id
        self.level = level
        self.entries = entries
        self._soa = None

    def entries_soa(self):
        """Columnar mirror of the view's entries, as on R-tree nodes.

        Views are rebuilt on every ``read_node`` call, so the cache
        lives only as long as the view and needs no invalidation hook.
        """
        soa = self._soa
        if soa is None:
            from repro.kernels import build_entry_soa

            soa = build_entry_soa(self.entries)
            if soa is not None:
                self._soa = soa
        return soa

    @property
    def is_leaf(self) -> bool:
        """True when the entries are objects rather than children."""
        return self.level == 0

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the node's entries.

        Note this is the MBR of what the node *contains* (as the join
        drivers expect), not the quadrant region, which may be mostly
        empty space.
        """
        if not self.entries:
            raise TreeError(f"node {self.page_id} is empty, has no MBR")
        return Rect.union_of([e.rect for e in self.entries])


class PRQuadtree:
    """PR bucket quadtree over a fixed square universe.

    Parameters
    ----------
    bounds:
        The universe rectangle (all inserted points must fall inside).
    bucket_capacity:
        Maximum points per leaf before it splits (default 8).
    max_depth:
        Split limit; beyond it leaves are allowed to overflow, which
        bounds pathological duplicate-point inputs.
    """

    def __init__(
        self,
        bounds: Rect,
        bucket_capacity: int = 8,
        max_depth: int = 24,
        counters: Optional[CounterRegistry] = None,
        buffer_pages: int = DEFAULT_CAPACITY,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        require_positive(bucket_capacity, "bucket_capacity")
        require_positive(max_depth, "max_depth")
        self.dim = bounds.dim
        self.universe = bounds
        self.bucket_capacity = bucket_capacity
        self.max_depth = max_depth
        self.counters = counters if counters is not None else CounterRegistry()
        self.store = PageStore(page_size=page_size, counters=self.counters)
        self.pool = BufferPool(
            self.store, capacity=buffer_pages, counters=self.counters
        )
        self.size = 0
        self._next_oid = 0
        root = self._new_node(bounds)
        self.root_id = root.page_id

    # ------------------------------------------------------------------
    # storage plumbing
    # ------------------------------------------------------------------

    def _new_node(self, region: Rect) -> QuadNode:
        node = QuadNode(-1, region)
        node.page_id = self.store.allocate(node, 8)
        return node

    def _raw(self, page_id: int) -> QuadNode:
        hit = self.pool.contains(page_id)
        page = self.pool.read(page_id)
        self.counters.add("node_reads")
        if not hit:
            self.counters.add("node_io")
        return page.payload

    def read_node(self, page_id: int) -> _NodeView:
        """The node as the join drivers see it: Branch/Leaf entries.

        Leaf entries carry degenerate point rectangles; branch entries
        carry the child's quadrant region.  Empty quadrants produce no
        entry.
        """
        node = self._raw(page_id)
        if node.is_leaf:
            entries = [
                LeafEntry(Rect.from_point(point), oid, point)
                for oid, point in node.points
            ]
            return _NodeView(page_id, 0, entries)
        entries = []
        assert node.children is not None
        for child_id in node.children:
            if child_id is None:
                continue
            child = self._raw(child_id)
            if child.is_leaf and not child.points:
                continue
            entries.append(BranchEntry(child.region, child_id))
        return _NodeView(page_id, node.level, entries)

    def root(self) -> _NodeView:
        """The root node view (join-driver protocol)."""
        return self.read_node(self.root_id)

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------

    def _quadrant_region(self, region: Rect, index: int) -> Rect:
        lo = []
        hi = []
        for axis in range(self.dim):
            mid = (region.lo[axis] + region.hi[axis]) / 2.0
            if index & (1 << axis):
                lo.append(mid)
                hi.append(region.hi[axis])
            else:
                lo.append(region.lo[axis])
                hi.append(mid)
        return Rect(lo, hi)

    def _quadrant_of(self, region: Rect, point: Point) -> int:
        index = 0
        for axis in range(self.dim):
            mid = (region.lo[axis] + region.hi[axis]) / 2.0
            if point[axis] >= mid:
                index |= 1 << axis
        return index

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, obj: Point, oid: Optional[int] = None) -> int:
        """Insert a point; returns its object id."""
        if not isinstance(obj, Point):
            raise TreeError("PRQuadtree indexes Point objects")
        if not self.universe.contains_point(obj):
            raise TreeError(
                f"point {obj!r} lies outside the universe "
                f"{self.universe!r}"
            )
        if oid is None:
            oid = self._next_oid
        self._next_oid = max(self._next_oid, oid + 1)
        self._insert_into(self.root_id, obj, oid, depth=0)
        self.size += 1
        return oid

    def insert_point(self, coords) -> int:
        """Convenience mirror of the R-tree API."""
        point = coords if isinstance(coords, Point) else Point(coords)
        return self.insert(point)

    def _insert_into(
        self, page_id: int, point: Point, oid: int, depth: int
    ) -> int:
        """Insert and return the node's new level (height)."""
        node = self._raw(page_id)
        if node.is_leaf:
            node.points.append((oid, point))
            if (
                len(node.points) > self.bucket_capacity
                and depth < self.max_depth
            ):
                self._split(node, depth)
            return node.level
        assert node.children is not None
        quadrant = self._quadrant_of(node.region, point)
        child_id = node.children[quadrant]
        if child_id is None:
            child = self._new_node(
                self._quadrant_region(node.region, quadrant)
            )
            node.children[quadrant] = child.page_id
            child_id = child.page_id
        child_level = self._insert_into(child_id, point, oid, depth + 1)
        node.level = max(node.level, child_level + 1)
        return node.level

    def _split(self, node: QuadNode, depth: int) -> None:
        points = node.points
        node.points = []
        node.children = [None] * (1 << self.dim)
        node.level = 1
        for oid, point in points:
            quadrant = self._quadrant_of(node.region, point)
            child_id = node.children[quadrant]
            if child_id is None:
                child = self._new_node(
                    self._quadrant_region(node.region, quadrant)
                )
                node.children[quadrant] = child.page_id
                child_id = child.page_id
            self._raw(child_id).points.append((oid, point))
        # A split quadrant may itself overflow (duplicates/clusters);
        # the depth limit stops pathological cascades (e.g. many
        # coincident points), leaving an over-full max-depth leaf.
        for child_id in node.children:
            if child_id is None:
                continue
            child = self._raw(child_id)
            if (
                len(child.points) > self.bucket_capacity
                and depth + 1 < self.max_depth
            ):
                self._split(child, depth + 1)
            node.level = max(node.level, child.level + 1)

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, oid: int, point: Point) -> bool:
        """Remove the object ``oid`` located at ``point``."""
        removed = self._delete_from(self.root_id, oid, point)
        if removed:
            self.size -= 1
        return removed

    def _delete_from(self, page_id: int, oid: int, point: Point) -> bool:
        node = self._raw(page_id)
        if node.is_leaf:
            for i, (stored_oid, stored) in enumerate(node.points):
                if stored_oid == oid and stored == point:
                    del node.points[i]
                    return True
            return False
        assert node.children is not None
        quadrant = self._quadrant_of(node.region, point)
        child_id = node.children[quadrant]
        if child_id is None:
            return False
        if not self._delete_from(child_id, oid, point):
            return False
        # Collapse an internal node whose points all fit one bucket.
        total: List = []
        collapsible = True
        for cid in node.children:
            if cid is None:
                continue
            child = self._raw(cid)
            if not child.is_leaf:
                collapsible = False
                break
            total.extend(child.points)
        if collapsible and len(total) <= self.bucket_capacity:
            for cid in node.children:
                if cid is not None:
                    self.pool.invalidate(cid)
                    self.store.free(cid)
            node.children = None
            node.points = total
            node.level = 0
        else:
            node.level = 1 + max(
                self._raw(cid).level
                for cid in node.children
                if cid is not None
            )
        return True

    # ------------------------------------------------------------------
    # queries / protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def items(self) -> Iterator[LeafEntry]:
        """Iterate over all leaf entries."""
        stack = [self.root_id]
        while stack:
            node = self._raw(stack.pop())
            if node.is_leaf:
                for oid, point in node.points:
                    yield LeafEntry(Rect.from_point(point), oid, point)
            else:
                assert node.children is not None
                for child_id in node.children:
                    if child_id is not None:
                        stack.append(child_id)

    def bounds(self) -> Optional[Rect]:
        """MBR of the stored points (None when empty)."""
        points = [entry.obj for entry in self.items()]
        if not points:
            return None
        return Rect.from_points(points)

    @property
    def height(self) -> int:
        """Longest root-to-leaf path length (1 for a lone bucket)."""
        return self._raw(self.root_id).level + 1

    def min_subtree_count(self, level: int) -> int:
        """Quadtrees guarantee no minimum occupancy: the safe lower
        bound for the estimator is a single object per subtree."""
        require(level >= 0, "level must be non-negative")
        return 1

    def avg_subtree_count(self, level: int) -> float:
        """Average-occupancy estimate by uniform division of the data
        among quadrants per level."""
        if self.size == 0:
            return 0.0
        root_level = self._raw(self.root_id).level
        depth = max(0, root_level - level)
        share = self.size / float((1 << self.dim) ** depth)
        return max(1.0, share)

    def __repr__(self) -> str:
        return (
            f"PRQuadtree(size={self.size}, height={self.height}, "
            f"bucket={self.bucket_capacity})"
        )
