"""Standing distance-join queries with incremental result repair.

A :class:`StandingJoin` registers a :class:`~repro.core.spec.JoinSpec`
over two mutable R-trees and keeps the reported result -- the best K
pairs, or every pair within a distance range -- continuously correct
under ``insert`` / ``delete``, emitting the repair as a deterministic
delta stream (:mod:`repro.live.delta`) instead of re-running the
join.

The maintained state is a :class:`~repro.live.frontier.ResultStore`
holding ``capacity = K + F`` pairs: the reported top K plus an
Eppstein-style candidate frontier of F runners-up.

*Insertion* only creates pairs between the new object and the partner
relation, so the repair is a bounded incremental distance scan
(:func:`~repro.live.probe.probe_partner`) against the current
watermark -- the K-th/worst stored distance -- pruning every partner
subtree that provably cannot beat it.

*Deletion* retracts the stored pairs containing the object; a hole in
the reported top K is refilled by promoting frontier pairs.  Only
when the frontier itself is exhausted (``len(store) < K`` while the
store is known incomplete) does the join fall back to one bounded
re-enumeration (a *refill*, counted in ``live_refills``), which also
rebuilds the frontier so subsequent deletions are cheap again.

The store invariant at every rest point: the store holds exactly the
``len(store)`` smallest qualifying pairs of the current data under
the canonical ``(distance, oid1, oid2)`` key, and ``store.complete``
marks when it holds *all* of them.  Range-mode stores (no K) are
always complete, so they never refill.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.distance_join import (
    IncrementalDistanceJoin,
    JoinResult,
)
from repro.core.pairs import Item, OBJ, PairDistance
from repro.core.spec import JoinSpec
from repro.errors import CursorError, LiveError
from repro.geometry.rectangle import Rect
from repro.live.delta import ADD, REMOVE, Delta, pair_key
from repro.live.frontier import ResultStore
from repro.live.probe import probe_partner
from repro.rtree.base import RTreeBase
from repro.util.counters import CounterRegistry
from repro.util.obs import NULL_OBSERVER, Observer

__all__ = [
    "LIVE_CURSOR_FORMAT",
    "LIVE_CURSOR_VERSION",
    "StandingJoin",
    "validate_live_spec",
]

LIVE_CURSOR_FORMAT = "repro-live-cursor"
LIVE_CURSOR_VERSION = 1

_INF = float("inf")


def validate_live_spec(spec: JoinSpec) -> JoinSpec:
    """The subset of join specs a standing query can maintain.

    Incremental repair relies on the canonical ascending pair order
    and on every stored pair staying re-derivable from the trees
    alone, which rules out the farthest-first direction, external pair
    filters (not re-checkable against retractions), obr leaves (the
    payload would need re-resolution on refill), and the disk-backed
    queue tiers (the standing state is the store, not a queue).
    """
    spec.validate()
    if spec.descending:
        raise LiveError(
            "standing joins maintain the ascending (closest-first) "
            "result; descending is not supported"
        )
    if spec.pair_filter is not None:
        raise LiveError(
            "standing joins cannot maintain a pair_filter; filter "
            "the delta stream instead"
        )
    if spec.leaf_mode != "direct":
        raise LiveError(
            'standing joins require leaf_mode="direct" (obr payloads '
            "cannot be re-resolved during repair)"
        )
    if spec.queue != "memory":
        raise LiveError(
            "standing joins keep their state in the result store; "
            "queue tiers do not apply"
        )
    if spec.max_pairs is None and spec.max_distance == _INF:
        raise LiveError(
            "a standing join needs a finite result: give max_pairs "
            "(top-K) and/or max_distance (range)"
        )
    return spec


class StandingJoin:
    """One standing distance-join query over two mutable trees.

    Parameters
    ----------
    tree1, tree2:
        The two (distinct) input trees.  Updates are addressed by
        side: ``insert(oid, obj, side=1)`` mutates ``tree1``.
    spec:
        The join configuration (or the equivalent keyword knobs);
        see :func:`validate_live_spec` for the supported subset.
        ``spec.max_pairs`` selects top-K mode; ``None`` with a finite
        ``max_distance`` selects range mode.
    frontier:
        Candidate-frontier size F for top-K mode (default
        ``max(8, K)``); the store keeps ``K + F`` pairs.
    counters:
        Shared :class:`~repro.util.counters.CounterRegistry`; repairs
        charge ``dist_calcs`` / ``bound_calcs`` exactly like the
        static operators, plus ``live_repairs`` (updates processed),
        ``live_probe_pairs`` (partner objects evaluated by insert
        probes) and ``live_refills`` (frontier-exhausted rescans).
    """

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        spec: Optional[JoinSpec] = None,
        *,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        frontier: Optional[int] = None,
        **knobs: Any,
    ) -> None:
        spec = JoinSpec.coalesce(spec, knobs)
        validate_live_spec(spec)
        if tree1 is tree2:
            raise LiveError(
                "standing self joins are not supported: one update "
                "would change both sides at once"
            )
        for tree in (tree1, tree2):
            if not hasattr(tree, "_mutations"):
                raise LiveError(
                    "standing joins need mutation-versioned trees "
                    f"(no _mutations on {type(tree).__name__})"
                )
        if frontier is not None and frontier < 1:
            raise LiveError("frontier must be at least 1")
        self.tree1 = tree1
        self.tree2 = tree2
        self.spec = spec
        self.max_pairs = spec.max_pairs
        if spec.max_pairs is None:
            self._frontier = 0
            self._capacity: Optional[int] = None
        else:
            self._frontier = (
                frontier if frontier is not None
                else max(8, spec.max_pairs)
            )
            self._capacity = spec.max_pairs + self._frontier
        self.counters = (
            counters if counters is not None else tree1.counters
        )
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.distance = PairDistance(spec.metric, self.counters)
        self._store = ResultStore(self._capacity)
        self._objects: Dict[int, Dict[int, Tuple[Any, Rect]]] = {
            1: {}, 2: {},
        }
        self._outbox: Deque[Delta] = deque()
        self._seq = 0
        self._updates = 0
        self._expected = [tree1._mutations, tree2._mutations]
        if getattr(self, "_suspended_init", False):
            return
        self._load_objects()
        self._rescan()
        # The registration itself publishes the initial result: a
        # subscriber pages these ADD deltas first, then the repairs.
        self._emit({})

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def updates(self) -> int:
        """Updates processed since registration."""
        return self._updates

    @property
    def seq(self) -> int:
        """Sequence number of the most recent delta."""
        return self._seq

    @property
    def complete(self) -> bool:
        """True when the store holds every qualifying pair."""
        return self._store.complete

    def result(self) -> List[JoinResult]:
        """The currently reported pairs, canonical order."""
        return self._store.top(self.max_pairs)

    def has_object(self, oid: int, side: int = 1) -> bool:
        """Whether ``oid`` is currently indexed on ``side``.

        The object index mirrors the tree exactly (it is loaded from
        the tree at registration and maintained by every repair), so
        callers can use this as an O(1) freshness check before
        mutating the underlying relation.
        """
        self._tree(side)  # validate the side argument
        return oid in self._objects[side]

    def pending(self) -> int:
        """Deltas emitted but not yet polled."""
        return len(self._outbox)

    def poll(self, limit: Optional[int] = None) -> List[Delta]:
        """Drain up to ``limit`` deltas (all when ``None``)."""
        if limit is None:
            limit = len(self._outbox)
        out: List[Delta] = []
        while self._outbox and len(out) < limit:
            out.append(self._outbox.popleft())
        return out

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(
        self,
        oid: int,
        obj: Any,
        rect: Optional[Rect] = None,
        side: int = 1,
    ) -> List[Delta]:
        """Insert ``obj`` into side ``side`` and repair the result.

        Returns the deltas this repair emitted (they are also queued
        for :meth:`poll`).
        """
        return self._insert(oid, obj, rect, side, mutate=True)

    def observe_insert(
        self,
        oid: int,
        obj: Any,
        rect: Optional[Rect] = None,
        side: int = 1,
    ) -> List[Delta]:
        """Repair after an insert already applied to the tree.

        For fan-out: when several standing joins watch the same
        trees, one of them (or the caller) applies the mutation and
        the rest observe it.
        """
        return self._insert(oid, obj, rect, side, mutate=False)

    def delete(self, oid: int, side: int = 1) -> List[Delta]:
        """Delete object ``oid`` from side ``side`` and repair."""
        return self._delete(oid, side, mutate=True)

    def observe_delete(self, oid: int, side: int = 1) -> List[Delta]:
        """Repair after a delete already applied to the tree."""
        return self._delete(oid, side, mutate=False)

    def _insert(
        self,
        oid: int,
        obj: Any,
        rect: Optional[Rect],
        side: int,
        mutate: bool,
    ) -> List[Delta]:
        tree = self._tree(side)
        if rect is None:
            rect = RTreeBase._rect_of(obj)
        if oid in self._objects[side]:
            raise LiveError(
                f"oid {oid} already present on side {side}"
            )
        if mutate:
            self._check_sync()
            tree.insert(obj=obj, rect=rect, oid=oid)
            self._expected[side - 1] = tree._mutations
        else:
            self._observe_mutation(side)
        self._objects[side][oid] = (obj, rect)
        before = self._published()
        self._repair_insert(oid, obj, rect, side)
        self._updates += 1
        self.counters.add("live_repairs")
        if self.obs.enabled:
            self.obs.event("live.insert", value=float(oid))
        return self._emit(before)

    def _delete(
        self, oid: int, side: int, mutate: bool
    ) -> List[Delta]:
        tree = self._tree(side)
        entry = self._objects[side].get(oid)
        if entry is None:
            raise LiveError(f"unknown oid {oid} on side {side}")
        obj, rect = entry
        if mutate:
            self._check_sync()
            if not tree.delete(oid, rect):
                raise LiveError(
                    f"oid {oid} vanished from side {side} out of band"
                )
            self._expected[side - 1] = tree._mutations
        else:
            self._observe_mutation(side)
        del self._objects[side][oid]
        before = self._published()
        self._store.remove_oid(side, oid)
        if (
            self.max_pairs is not None
            and len(self._store) < self.max_pairs
            and not self._store.complete
        ):
            self.counters.add("live_refills")
            if self.obs.enabled:
                self.obs.event("live.refill")
            self._rescan()
        self._updates += 1
        self.counters.add("live_repairs")
        if self.obs.enabled:
            self.obs.event("live.delete", value=float(oid))
        return self._emit(before)

    # ------------------------------------------------------------------
    # repair machinery
    # ------------------------------------------------------------------

    def _tree(self, side: int) -> RTreeBase:
        if side == 1:
            return self.tree1
        if side == 2:
            return self.tree2
        raise LiveError(f"side must be 1 or 2, got {side!r}")

    def _check_sync(
        self, expected: Optional[List[int]] = None
    ) -> None:
        if expected is None:
            expected = self._expected
        actual = [self.tree1._mutations, self.tree2._mutations]
        if actual != expected:
            raise LiveError(
                "tree mutated outside the standing join (expected "
                f"mutation counters {expected}, found {actual});"
                " route updates through insert()/delete() or "
                "observe_insert()/observe_delete()"
            )

    def _observe_mutation(self, side: int) -> None:
        """Accept exactly one already-applied mutation on ``side``.

        The mutated side must have advanced by exactly one and the
        partner must not have moved at all -- anything else means an
        out-of-band mutation slipped past this join, and accepting the
        observation would let the maintained store go silently stale.
        ``_expected`` only advances once the check passes, so a failed
        observation leaves the desync detectable by every later call.
        """
        observed = list(self._expected)
        observed[side - 1] += 1
        self._check_sync(observed)
        self._expected = observed

    def _published(self) -> Dict[Tuple[float, int, int], JoinResult]:
        return {
            pair_key(e): e for e in self._store.top(self.max_pairs)
        }

    def _repair_insert(
        self, oid: int, obj: Any, rect: Rect, side: int
    ) -> None:
        """Probe the partner tree and merge the new object's pairs."""
        store = self._store
        spec = self.spec
        full_bound = self._capacity is None or (
            store.complete and len(store) < self._capacity
        )
        if full_bound:
            bound = spec.max_distance
            tail = None
        else:
            tail = store.tail_key()
            bound = tail[0]
        partner = self.tree2 if side == 1 else self.tree1
        probe_item = Item(OBJ, rect, oid=oid, obj=obj)
        found, exhaustive = probe_partner(
            partner, self.distance, probe_item, bound, self.counters
        )
        excluded = False
        for d, leaf in found:
            if d < spec.min_distance or d > spec.max_distance:
                continue
            if side == 1:
                result = JoinResult(d, oid, obj, leaf.oid, leaf.obj)
            else:
                result = JoinResult(d, leaf.oid, leaf.obj, oid, obj)
            if full_bound or pair_key(result) < tail:
                store.add(result)
            else:
                excluded = True
        if store.trim():
            store.complete = False
        if not full_bound and (excluded or not exhaustive):
            store.complete = False

    def _rescan(self) -> None:
        """Rebuild the store by one bounded re-enumeration.

        Consumes the ascending join until ``capacity`` pairs are in
        hand *and* the next distance strictly exceeds the capacity-th
        one -- distances arrive nondecreasing, so every pair tied with
        the boundary is captured before the cut and the store stays a
        deterministic function of the data, never of tie order.
        """
        spec = self.spec.evolve(max_pairs=None, estimate=False)
        join = IncrementalDistanceJoin(
            self.tree1, self.tree2, spec,
            counters=self.counters,
            observer=self.obs if self.obs.enabled else None,
        )
        cap = self._capacity
        results: List[JoinResult] = []
        exhausted = False
        while True:
            try:
                r = next(join)
            except StopIteration:
                exhausted = True
                break
            if (
                cap is not None
                and len(results) >= cap
                and r.distance > results[cap - 1].distance
            ):
                break
            results.append(r)
        close = getattr(join, "close", None)
        if callable(close):
            close()
        self._store.replace(results)
        self._store.complete = exhausted and (
            cap is None or len(results) <= cap
        )

    def _emit(
        self, before: Dict[Tuple[float, int, int], JoinResult]
    ) -> List[Delta]:
        after = self._published()
        deltas: List[Delta] = []
        for key in sorted(k for k in before if k not in after):
            self._seq += 1
            deltas.append(Delta(REMOVE, self._seq, *before[key]))
        for key in sorted(k for k in after if k not in before):
            self._seq += 1
            deltas.append(Delta(ADD, self._seq, *after[key]))
        self._outbox.extend(deltas)
        return deltas

    def _load_objects(self) -> None:
        """Index both relations' payloads by (side, oid)."""
        for side, tree in ((1, self.tree1), (2, self.tree2)):
            objects = self._objects[side]
            objects.clear()
            for entry in tree.items():
                if entry.oid in objects:
                    raise LiveError(
                        f"duplicate oid {entry.oid} on side {side}; "
                        "standing joins address objects by oid"
                    )
                objects[entry.oid] = (entry.obj, entry.rect)

    # ------------------------------------------------------------------
    # suspendable cursor: save / load
    # ------------------------------------------------------------------

    @staticmethod
    def _tree_fingerprint(tree: RTreeBase) -> Tuple:
        """Like the join cursor's fingerprint, plus the mutation
        counter: a standing cursor is only valid against the exact
        tree *version* its store was maintained for."""
        return (
            type(tree).__name__, tree.dim, len(tree), tree.root_id,
            tree._mutations,
        )

    def save(self) -> dict:
        """Snapshot the standing state as a picklable cursor.

        Stores pair keys, not payloads -- :meth:`load` reattaches the
        objects from the (fingerprint-checked) trees, so the cursor
        stays small and never duplicates the relations.  Only valid
        between updates.
        """
        pickle.dumps(self.spec, pickle.HIGHEST_PROTOCOL)
        return {
            "format": LIVE_CURSOR_FORMAT,
            "version": LIVE_CURSOR_VERSION,
            "class": type(self).__name__,
            "spec": self.spec,
            "frontier": self._frontier,
            "trees": (
                self._tree_fingerprint(self.tree1),
                self._tree_fingerprint(self.tree2),
            ),
            "store": self._store.state(),
            "outbox": [tuple(d) for d in self._outbox],
            "seq": self._seq,
            "updates": self._updates,
            "counters": self.counters.full_snapshot(),
        }

    @classmethod
    def load(
        cls,
        state: dict,
        tree1: RTreeBase,
        tree2: RTreeBase,
        *,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
    ) -> "StandingJoin":
        """Rebuild a standing join from a :meth:`save` cursor.

        The trees must be at the exact version the cursor was taken
        against (class, dim, size, root id, *and* mutation counter).
        With ``counters`` omitted a fresh registry is primed with the
        cursor's totals, so resumed counter trajectories equal an
        uninterrupted run's.
        """
        if not isinstance(state, dict) or state.get("format") != \
                LIVE_CURSOR_FORMAT:
            raise CursorError("not a standing-join cursor")
        if state.get("version") != LIVE_CURSOR_VERSION:
            raise CursorError(
                f"unsupported cursor version {state.get('version')!r} "
                f"(this build reads version {LIVE_CURSOR_VERSION})"
            )
        expected = (
            cls._tree_fingerprint(tree1), cls._tree_fingerprint(tree2)
        )
        if tuple(map(tuple, state["trees"])) != expected:
            raise CursorError(
                "cursor does not match the supplied trees: saved "
                f"{state['trees']!r}, got {expected!r}"
            )
        registry = (
            counters if counters is not None else CounterRegistry()
        )
        join = cls.__new__(cls)
        join._suspended_init = True
        try:
            join.__init__(
                tree1, tree2, state["spec"],
                counters=registry,
                observer=observer,
                frontier=state["frontier"] or None,
            )
        finally:
            join.__dict__.pop("_suspended_init", None)
        join._load_objects()
        entries = [
            join._reattach(tuple(key)) for key in state["store"]["keys"]
        ]
        join._store = ResultStore.from_state(state["store"], entries)
        join._outbox = deque(
            Delta(*delta) for delta in state["outbox"]
        )
        join._seq = state["seq"]
        join._updates = state["updates"]
        join._expected = [tree1._mutations, tree2._mutations]
        if counters is None:
            snap = state["counters"]
            for name, value in snap.values.items():
                registry.counter(name).value = value
            for name, peak in snap.peaks.items():
                counter = registry.counter(name)
                if peak > counter.peak:
                    counter.peak = peak
        return join

    def _reattach(self, key: Tuple[float, int, int]) -> JoinResult:
        d, oid1, oid2 = key
        try:
            obj1, _ = self._objects[1][oid1]
            obj2, _ = self._objects[2][oid2]
        except KeyError:
            raise CursorError(
                f"stored pair ({oid1}, {oid2}) is missing from the "
                "supplied trees"
            ) from None
        return JoinResult(d, oid1, obj1, oid2, obj2)
