"""Bounded incremental distance scan against a partner tree.

When a standing join sees an insertion, the only new candidate pairs
are the inserted object against the partner relation.  The probe
walks the partner tree pruning every subtree whose MINDIST to the new
object exceeds the repair bound (the current K-th/watermark
distance), so its cost tracks the local pair density around the new
object rather than the relation size -- this is what makes per-update
repair asymptotically cheaper than re-running the join.

Every node bound is charged through
:class:`~repro.core.pairs.PairDistance` (``bound_calcs``), every
exact object distance likewise (``dist_calcs``), and each evaluated
partner object bumps ``live_probe_pairs``; the set of nodes expanded
is exactly *all* nodes within the bound, so the charged counters are
deterministic regardless of traversal order.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from repro.core.pairs import Item, NODE, OBJ, PairDistance
from repro.rtree.base import RTreeBase
from repro.rtree.entry import LeafEntry
from repro.util.counters import CounterRegistry

__all__ = ["ProbeResult", "probe_partner"]


class ProbeResult(NamedTuple):
    """Outcome of one bounded partner scan.

    ``found`` holds every partner leaf entry within ``bound`` of the
    probe object, with its exact distance.  ``exhaustive`` is True
    when the bound excluded nothing -- no subtree was pruned and no
    evaluated object fell beyond the bound -- i.e. the scan saw the
    complete partner relation.
    """

    found: List[Tuple[float, LeafEntry]]
    exhaustive: bool


def probe_partner(
    tree: RTreeBase,
    distance: PairDistance,
    probe_item: Item,
    bound: float,
    counters: CounterRegistry,
) -> ProbeResult:
    """All partner objects within ``bound`` of ``probe_item``.

    The traversal visits exactly the nodes whose MINDIST to the probe
    object is ``<= bound`` (stack order is irrelevant to the visited
    set), computing the exact object distance at every reached leaf
    entry.  Node I/O is charged to the tree's registry and, when that
    differs from ``counters``, mirrored there -- the same accounting
    rule the join operators use.
    """
    found: List[Tuple[float, LeafEntry]] = []
    exhaustive = True
    shared = tree.counters is counters
    stack = [tree.root_id]
    while stack:
        node_id = stack.pop()
        hit = tree.pool.contains(node_id)
        node = tree.read_node(node_id)
        if not shared:
            counters.add("node_reads")
            if not hit:
                counters.add("node_io")
        if node.is_leaf:
            for entry in node.entries:
                other = Item(
                    OBJ, entry.rect, oid=entry.oid, obj=entry.obj
                )
                d = distance.object_distance(probe_item, other)
                counters.add("live_probe_pairs")
                if d <= bound:
                    found.append((d, entry))
                else:
                    exhaustive = False
        else:
            child_level = node.level - 1
            for entry in node.entries:
                child = Item(
                    NODE, entry.rect,
                    node_id=entry.child_id, level=child_level,
                )
                if distance.mindist(probe_item, child) <= bound:
                    stack.append(entry.child_id)
                else:
                    exhaustive = False
    return ProbeResult(found, exhaustive)
