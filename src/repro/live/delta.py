"""Delta events of a standing distance join.

A :class:`~repro.live.standing.StandingJoin` repairs its reported
result after every update and publishes the repair as a short,
deterministic stream of *delta* events: ``-`` events retract pairs
that left the reported set, ``+`` events announce pairs that entered
it.  Within one repair the retractions come first, and each group is
ordered by the canonical pair key ``(distance, oid1, oid2)`` -- a
total order over pairs (the oid pair is unique), so two consumers
that apply the same stream always hold bit-identical result sets.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Tuple

from repro.core.distance_join import JoinResult

__all__ = ["ADD", "REMOVE", "Delta", "pair_key"]

#: Delta operations.
ADD = "+"
REMOVE = "-"


def pair_key(result: JoinResult) -> Tuple[float, int, int]:
    """Canonical total order over reported pairs.

    Distance first (the join's reporting order), then the two object
    ids.  No two pairs share all three components, so sorting by this
    key is deterministic regardless of how distance ties were broken
    by the operator that produced the pairs.
    """
    return (result.distance, result.oid1, result.oid2)


class Delta(NamedTuple):
    """One repair event of a standing join.

    Mirrors :class:`~repro.core.distance_join.JoinResult` plus the
    operation and a subscription-wide monotone sequence number, so a
    consumer can detect gaps after a suspend/resume cycle.
    """

    op: str
    seq: int
    distance: float
    oid1: int
    obj1: Any
    oid2: int
    obj2: Any

    @property
    def result(self) -> JoinResult:
        """The pair this event adds or retracts."""
        return JoinResult(
            self.distance, self.oid1, self.obj1, self.oid2, self.obj2
        )

    @property
    def key(self) -> Tuple[float, int, int]:
        return (self.distance, self.oid1, self.oid2)
