"""The maintained candidate frontier of a standing join.

:class:`ResultStore` keeps the best pairs of the current data in
canonical ``(distance, oid1, oid2)`` order.  For a top-K standing
query it holds up to ``capacity = K + F`` pairs: the first K are the
*reported* result, the F pairs behind them are the Eppstein-style
frontier that absorbs deletions -- a retraction inside the top K is
repaired by promoting the next frontier pair, no tree work needed.
A range query (no K) stores every qualifying pair, so the store is
always complete and deletions never need a refill.

Keys and entries live in two parallel sorted lists: binary searches
run on the key tuples alone, so object payloads (which need not be
orderable) never participate in comparisons.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.core.distance_join import JoinResult
from repro.live.delta import pair_key

__all__ = ["ResultStore"]

Key = Tuple[float, int, int]


class ResultStore:
    """Sorted pair store with an optional capacity.

    ``complete`` is maintained by the owning
    :class:`~repro.live.standing.StandingJoin`: True when the store
    holds *every* qualifying pair of the current data, False when it
    holds only the ``len(self)`` best ones.
    """

    __slots__ = ("capacity", "complete", "_keys", "_entries")

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self.complete = True
        self._keys: List[Key] = []
        self._entries: List[JoinResult] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[JoinResult]:
        return iter(self._entries)

    def add(self, entry: JoinResult) -> bool:
        """Insert ``entry`` at its canonical position.

        Returns False (and changes nothing) when the pair is already
        present -- updates are idempotent per (distance, oid, oid).
        """
        key = pair_key(entry)
        pos = bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            return False
        self._keys.insert(pos, key)
        self._entries.insert(pos, entry)
        return True

    def trim(self) -> int:
        """Drop pairs beyond ``capacity``; returns how many fell off."""
        if self.capacity is None or len(self._keys) <= self.capacity:
            return 0
        dropped = len(self._keys) - self.capacity
        del self._keys[self.capacity:]
        del self._entries[self.capacity:]
        return dropped

    def remove_oid(self, side: int, oid: int) -> int:
        """Retract every pair whose ``side`` object is ``oid``."""
        if side == 1:
            keep = [i for i, e in enumerate(self._entries)
                    if e.oid1 != oid]
        else:
            keep = [i for i, e in enumerate(self._entries)
                    if e.oid2 != oid]
        removed = len(self._keys) - len(keep)
        if removed:
            self._keys = [self._keys[i] for i in keep]
            self._entries = [self._entries[i] for i in keep]
        return removed

    def tail_key(self) -> Key:
        """Key of the worst stored pair (store must be non-empty)."""
        return self._keys[-1]

    def top(self, k: Optional[int]) -> List[JoinResult]:
        """The reported result: best ``k`` pairs (all when ``k`` is
        None)."""
        if k is None:
            return list(self._entries)
        return self._entries[:k]

    def top_keys(self, k: Optional[int]) -> List[Key]:
        if k is None:
            return list(self._keys)
        return self._keys[:k]

    def replace(self, entries: List[JoinResult]) -> None:
        """Reset the store to ``entries`` (sorted, then trimmed)."""
        ranked = sorted(entries, key=pair_key)
        self._keys = [pair_key(e) for e in ranked]
        self._entries = ranked
        self.trim()

    # ------------------------------------------------------------------
    # cursor support
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """Picklable snapshot -- keys only; payloads are reattached at
        load time from the (fingerprint-checked) trees."""
        return {
            "capacity": self.capacity,
            "complete": self.complete,
            "keys": list(self._keys),
        }

    @classmethod
    def from_state(
        cls, state: dict, entries: List[JoinResult]
    ) -> "ResultStore":
        store = cls(state["capacity"])
        store.complete = state["complete"]
        store._keys = [tuple(k) for k in state["keys"]]
        store._entries = entries
        return store
