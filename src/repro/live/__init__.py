"""Standing distance-join queries (``repro.live``).

The static operators answer one query against one snapshot of the
data; this package keeps a query's *answer* correct while the data
moves.  A :class:`StandingJoin` maintains a top-K or distance-range
join result under tree insertions and deletions, publishing each
repair as an ordered ``+pair`` / ``-pair`` delta stream instead of
re-running the join.  See docs/LIVE.md for the delta semantics, the
repair algorithm, the ``WATCH ... NOTIFY`` SQL surface, and the
service subscription protocol.
"""

from repro.live.delta import ADD, REMOVE, Delta, pair_key
from repro.live.frontier import ResultStore
from repro.live.probe import ProbeResult, probe_partner
from repro.live.standing import (
    LIVE_CURSOR_FORMAT,
    LIVE_CURSOR_VERSION,
    StandingJoin,
    validate_live_spec,
)

__all__ = [
    "ADD",
    "REMOVE",
    "Delta",
    "LIVE_CURSOR_FORMAT",
    "LIVE_CURSOR_VERSION",
    "ProbeResult",
    "ResultStore",
    "StandingJoin",
    "pair_key",
    "probe_partner",
    "validate_live_spec",
]
