"""Per-tile join tasks: the unit of work shipped to a worker.

A :class:`TileJoinTask` is a picklable description of one tile-pair
join: the two tiles' object lists plus the *unified*
:class:`repro.core.spec.JoinSpec` of strategy knobs -- the same spec
type that configures the sequential operators, so the parallel engine
ships exactly the configuration it was given (validated once, by
``JoinSpec.validate(parallel=True)``, rather than silently dropping
unsupported knobs).  Workers rebuild two small R*-trees from the
object lists (STR bulk load, the same build path as the benchmark
harness) and run the ordinary sequential
:class:`IncrementalDistanceJoin` or
:class:`IncrementalDistanceSemiJoin` over them -- the parallel engine
reuses the paper's algorithm unchanged inside each partition pair.

Workers index their tiles with dense local object ids and translate
results back to the original ids before returning them, so the parent
never sees worker-local numbering.  A user ``pair_filter`` is wrapped
the same way: it always observes original object ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.distance_join import (
    IncrementalDistanceJoin,
    JoinResult,
)
from repro.core.pairs import NODE, Item, Pair
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.core.spec import JoinSpec
from repro.parallel.partition import TaskObject, Tile
from repro.rtree.base import DEFAULT_MAX_ENTRIES
from repro.rtree.bulk import bulk_load_str
from repro.util.counters import CounterRegistry

__all__ = ["JoinSpec", "TileJoinTask"]


@dataclass
class TileJoinTask:
    """One partition-pair join, fully described and picklable.

    ``spec`` carries the join knobs; ``semi_join`` selects the worker
    operator and ``max_entries`` the fanout of the per-tile trees
    (engine concerns, so they live on the task, not the spec).

    ``spec.max_pairs`` bounds each worker stream.  For the plain join
    the parent's ``stop after K`` bound is safe per stream: the global
    K-smallest results can never include more than K elements of any
    one ordered stream, so capping (and with it the paper's
    maximum-distance estimation) applies per tile pair -- except that
    the stream must finish the equal-distance group containing its
    K-th result (see :func:`_soft_capped`).  For the semi-join the
    parent discards duplicate outer objects *after* merging, so the
    parent hands workers a spec with ``max_pairs=None``.
    """

    task_id: int
    tile1: Tile
    tile2: Tile
    objects1: List[TaskObject]
    objects2: List[TaskObject]
    spec: JoinSpec = field(default_factory=JoinSpec)
    semi_join: bool = False
    max_entries: int = DEFAULT_MAX_ENTRIES

    def build_join(
        self, counters: Optional[CounterRegistry] = None
    ) -> Tuple[Iterator[JoinResult], List[TaskObject],
               List[TaskObject]]:
        """Materialize the worker-side join.

        Returns the join iterator plus the two local-oid -> original
        ``TaskObject`` tables used to translate results back.
        """
        spec = self.spec
        counters = counters if counters is not None else CounterRegistry()
        tree1 = _build_tile_tree(self.objects1, self.max_entries, counters)
        tree2 = _build_tile_tree(self.objects2, self.max_entries, counters)
        if spec.pair_filter is not None:
            spec = spec.evolve(pair_filter=_translated_filter(
                spec.pair_filter, self.objects1, self.objects2
            ))
        if self.semi_join:
            join: IncrementalDistanceJoin = IncrementalDistanceSemiJoin(
                tree1, tree2, spec, counters=counters,
            )
        else:
            join = IncrementalDistanceJoin(
                tree1, tree2, spec, counters=counters,
            )
        stream: Iterator[JoinResult] = join
        if spec.max_pairs is not None and not self.semi_join:
            stream = _soft_capped(join, spec.max_pairs)
        return stream, self.objects1, self.objects2

    def translate(
        self,
        result: JoinResult,
        table1: List[TaskObject],
        table2: List[TaskObject],
    ) -> JoinResult:
        """Map a worker-local result onto original ids and payloads."""
        original1 = table1[result.oid1]
        original2 = table2[result.oid2]
        return JoinResult(
            result.distance,
            original1.oid, original1.obj,
            original2.oid, original2.obj,
        )

    def __repr__(self) -> str:
        return (
            f"TileJoinTask(id={self.task_id}, "
            f"tiles=({self.tile1.index}, {self.tile2.index}), "
            f"sizes=({len(self.objects1)}, {len(self.objects2)}))"
        )


def _soft_capped(
    join: IncrementalDistanceJoin, cap: int
) -> Iterator[JoinResult]:
    """Stream ``join``, ending only after the equal-distance group
    containing the ``cap``-th result is complete.

    A stream cut at exactly ``cap`` results could split a tie group in
    the worker's traversal order, dropping members that rank earlier
    in the canonical ``(distance, oid1, oid2)`` order than kept ones
    -- the merge would then emit a non-canonical (worker-count
    dependent) subset of the ties.  Extending past the cap to the end
    of the boundary group restores determinism, and remains safe to
    truncate there: any dropped pair is strictly farther than ``cap``
    pairs of this stream alone, so it can never be among the global
    ``cap`` smallest.

    The join keeps its own ``max_pairs == cap`` during the capped
    phase so maximum-distance estimation engages as usual; past the
    cap the bound is raised one result at a time to peek at the tie
    tail.  Estimation cannot have pruned that tail: its bound is an
    upper bound on the ``cap``-th distance and the join prunes
    strictly above it.
    """
    produced = 0
    boundary = float("-inf")
    while True:
        if produced >= cap:
            join.max_pairs = produced + 1
        try:
            result = next(join)
        except StopIteration:
            return
        if produced >= cap and result.distance > boundary:
            return
        boundary = result.distance
        produced += 1
        yield result


def _build_tile_tree(
    objects: List[TaskObject],
    max_entries: int,
    counters: CounterRegistry,
):
    """STR bulk load a tile's objects, preserving payloads.

    Objects with a payload are loaded as that payload (so exact-shape
    distances keep working in the worker); payload-less entries are
    loaded as their bounding rectangle.
    """
    return bulk_load_str(
        [o.obj if o.obj is not None else o.rect for o in objects],
        max_entries=max_entries,
        counters=counters,
    )


def _translated_filter(
    pair_filter: Callable[[Pair], bool],
    table1: List[TaskObject],
    table2: List[TaskObject],
) -> Callable[[Pair], bool]:
    """Wrap a user pair filter so it sees original object ids."""

    def _original(item: Item, table: List[TaskObject]) -> Item:
        if item.kind == NODE or item.oid < 0:
            return item
        original = table[item.oid]
        return Item(item.kind, item.rect, node_id=item.node_id,
                    level=item.level, oid=original.oid, obj=item.obj)

    def keep(pair: Pair) -> bool:
        return pair_filter(Pair(
            _original(pair.item1, table1),
            _original(pair.item2, table2),
            pair.distance,
        ))

    return keep
