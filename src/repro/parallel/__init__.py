"""Partitioned parallel join engine with order-preserving stream merge.

The package parallelises the paper's incremental distance join by
tiling the joint data space (:mod:`~repro.parallel.partition`),
shipping picklable tile-pair join tasks (:mod:`~repro.parallel.plan`)
to serial/thread/process backends (:mod:`~repro.parallel.executor`),
and recombining the per-task ordered streams with a watermark k-way
merge (:mod:`~repro.parallel.merge`) so the public operators
(:mod:`~repro.parallel.join`) keep the sequential algorithm's
incremental, distance-ordered iterator contract.

See ``docs/PARALLEL.md`` for the architecture and the correctness
argument.
"""

from repro.parallel.executor import (
    BACKENDS,
    DEFAULT_BATCH_SIZE,
    PROCESS,
    SERIAL,
    THREAD,
    StreamExecutor,
    TaskBatch,
)
from repro.parallel.join import (
    ParallelDistanceJoin,
    ParallelDistanceSemiJoin,
    default_workers,
)
from repro.parallel.merge import OrderedStreamMerge
from repro.parallel.partition import (
    GRID,
    PARTITION_METHODS,
    STR,
    GridPartitioner,
    Partitioner,
    STRPartitioner,
    TaskObject,
    Tile,
    joint_bounds,
    make_partitioner,
    reference_point,
)
from repro.parallel.plan import JoinSpec, TileJoinTask

__all__ = [
    "BACKENDS",
    "DEFAULT_BATCH_SIZE",
    "GRID",
    "PARTITION_METHODS",
    "PROCESS",
    "SERIAL",
    "STR",
    "THREAD",
    "GridPartitioner",
    "JoinSpec",
    "OrderedStreamMerge",
    "ParallelDistanceJoin",
    "ParallelDistanceSemiJoin",
    "Partitioner",
    "STRPartitioner",
    "StreamExecutor",
    "TaskBatch",
    "TaskObject",
    "Tile",
    "TileJoinTask",
    "default_workers",
    "joint_bounds",
    "make_partitioner",
    "reference_point",
]
