"""Order-preserving k-way merge of per-partition result streams.

Every tile-pair task yields its result pairs in non-decreasing
distance, so a task's next known distance is a *frontier watermark*:
nothing it will ever emit can be closer than its buffered head.  A
result pair may therefore be released to the consumer only once its
distance is below every live stream's watermark (streams that finished
drop out).  This is the classic watermark condition of ordered stream
merging (cf. the frontier maintenance in *Dynamic Enumeration of
Similarity Joins*, Agarwal et al.).

Equal distances get one extra refinement: the merge gathers the whole
tie group -- every pair at the minimal distance, across all streams --
before emitting any of it, and sorts the group by ``(oid1, oid2)``.
The output order is then the *canonical* total order
``(distance, oid1, oid2)``, identical for every worker count and
partitioning, which is what makes the parallel join's output
deterministic and testable against the sequential algorithm.  Waiting
for the group is safe and cheap: it only requires each live stream's
watermark to move strictly past the tie distance, i.e. at most one
extra buffered element per stream.

The merge is fully incremental: pulling ``K`` results consumes at most
``K`` pairs plus one watermark element from each stream, so ``stop
after K`` costs the same incremental work as the sequential join,
divided across workers.

Lazy admission (the shard router's pruning rule) generalizes the
watermark condition to streams that have not been *opened* yet: a
pending stream with a known lower bound ``L`` on every distance it can
produce (MINDIST of its shard-pair MBRs) behaves exactly like a live
stream whose watermark is ``L``.  It must be opened -- *admitted* --
before any tie group at distance ``d >= L`` may be emitted
(non-strict, because MINDIST is attainable), and it stays closed while
``L`` exceeds the admitted frontier.  When the consumer stops early,
never-admitted streams were proven unable to contribute: they are
pruned without doing any join work, and the output is still
bit-identical to the fully sequential join.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Set

from repro.core.distance_join import JoinResult
from repro.parallel.executor import StreamExecutor, TaskBatch


class _Stream:
    """Parent-side buffer over one task's ordered result stream."""

    __slots__ = ("task_id", "buffer", "done", "admitted")

    def __init__(self, task_id: int, admitted: bool = True) -> None:
        self.task_id = task_id
        self.buffer: Deque[JoinResult] = deque()
        self.done = False
        # Pending (not yet admitted) streams are never polled; their
        # lower bound stands in for a buffered head as the watermark.
        self.admitted = admitted

    @property
    def exhausted(self) -> bool:
        return self.done and not self.buffer

    @property
    def needs_data(self) -> bool:
        return not self.done and not self.buffer


class OrderedStreamMerge:
    """Merge per-task result streams into one globally ordered stream.

    Parameters
    ----------
    executor:
        The :class:`StreamExecutor` driving the worker tasks.
    task_ids:
        Ids of every task feeding the merge.
    batch_size:
        Result pairs per worker round-trip.
    on_batch:
        Callback invoked with every arriving :class:`TaskBatch`
        (counter aggregation hooks in the join layer).
    dedup_outer:
        Semi-join mode: emit only the first (nearest) result for each
        outer object id and drop the rest.
    expected_outer:
        With ``dedup_outer``, the number of distinct outer objects;
        the merge finishes early once all of them have been reported.
    lower_bounds:
        Optional map ``task_id -> lower bound`` on every distance the
        task can produce.  Tasks listed here start *pending*: they are
        lazily admitted (opened) only once the admitted frontier
        reaches their bound, and are never touched otherwise.  Tasks
        absent from the map are admitted immediately.
    on_admit:
        Callback invoked with the task id each time a pending stream
        is admitted (routing counters hook in here).  Not re-invoked
        by :meth:`restore`.
    """

    def __init__(
        self,
        executor: StreamExecutor,
        task_ids: List[int],
        batch_size: int,
        on_batch: Optional[Callable[[TaskBatch], None]] = None,
        dedup_outer: bool = False,
        expected_outer: Optional[int] = None,
        lower_bounds: Optional[Dict[int, float]] = None,
        on_admit: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._executor = executor
        self._lower_bounds = dict(lower_bounds or {})
        self._on_admit = on_admit
        self._streams: Dict[int, _Stream] = {
            task_id: _Stream(
                task_id, admitted=task_id not in self._lower_bounds
            )
            for task_id in task_ids
        }
        self._batch_size = batch_size
        self._on_batch = on_batch
        self._dedup_outer = dedup_outer
        self._expected_outer = expected_outer
        self._seen_outer: Set[int] = set()
        self._ready: Deque[JoinResult] = deque()

    # ------------------------------------------------------------------
    # stream plumbing
    # ------------------------------------------------------------------

    def _absorb(self, batch: TaskBatch) -> None:
        stream = self._streams[batch.task_id]
        stream.buffer.extend(batch.results)
        if batch.done:
            stream.done = True
        if self._on_batch is not None:
            self._on_batch(batch)

    def _fill(self, needy: List[_Stream]) -> None:
        """Request data for every needy stream, then block until each
        has either data or a done flag."""
        for stream in needy:
            self._executor.request(stream.task_id, self._batch_size)
        while any(stream.needs_data for stream in needy):
            self._absorb(self._executor.next_batch(self._batch_size))

    def _fill_all_live(self) -> bool:
        """Ensure every live admitted stream is buffered; False when
        all admitted streams are exhausted."""
        while True:
            needy = [
                s for s in self._streams.values()
                if s.admitted and s.needs_data
            ]
            if not needy:
                break
            self._fill(needy)
        return any(
            not s.exhausted
            for s in self._streams.values() if s.admitted
        )

    # ------------------------------------------------------------------
    # lazy admission
    # ------------------------------------------------------------------

    def _admit(self, stream: _Stream) -> None:
        stream.admitted = True
        if self._on_admit is not None:
            self._on_admit(stream.task_id)

    def _admit_due(self) -> None:
        """Open every pending stream the watermark condition requires.

        A pending stream's bound ``L`` must be admitted before a tie
        group at ``d >= L`` can form, i.e. once ``L`` is at or below
        the admitted frontier (the minimum admitted buffered head).
        When no admitted stream has anything left, only the pending
        streams at the *minimum* bound are opened -- opening more
        would do work the consumer may never ask for.  Loops until
        stable, since a newly admitted stream can lower the frontier.
        """
        while True:
            heads = [
                s.buffer[0].distance
                for s in self._streams.values()
                if s.admitted and s.buffer
            ]
            pending = [
                s for s in self._streams.values() if not s.admitted
            ]
            if not pending:
                return
            if heads:
                frontier = min(heads)
                due = [
                    s for s in pending
                    if self._lower_bounds[s.task_id] <= frontier
                ]
                if not due:
                    return
            else:
                low = min(
                    self._lower_bounds[s.task_id] for s in pending
                )
                due = [
                    s for s in pending
                    if self._lower_bounds[s.task_id] == low
                ]
            for stream in due:
                self._admit(stream)
            self._fill_all_live()

    def watermark(self) -> Optional[float]:
        """Frontier distance: nothing the merge will ever emit can be
        closer than this (None once everything is exhausted)."""
        values = [
            s.buffer[0].distance
            for s in self._streams.values()
            if s.admitted and s.buffer
        ]
        values.extend(
            self._lower_bounds[s.task_id]
            for s in self._streams.values() if not s.admitted
        )
        return min(values, default=None)

    def admitted_ids(self) -> List[int]:
        """Task ids opened so far (construction-time or lazily)."""
        return sorted(
            s.task_id for s in self._streams.values() if s.admitted
        )

    # ------------------------------------------------------------------
    # the watermark merge
    # ------------------------------------------------------------------

    def _collect_tie_group(self) -> List[JoinResult]:
        """Pop the full group of pairs at the global minimum distance.

        Precondition: every live admitted stream has a buffered head
        and no pending stream's lower bound is at or below the
        frontier (:meth:`_admit_due` ran).  A stream contributes its
        leading run of pairs at the minimum distance; the run is only
        complete once the stream's watermark (next buffered element)
        moves strictly past it or the stream ends.  Pending streams
        need no draining: their bound exceeds the tie distance, so
        their watermark is already past it.
        """
        d = min(
            s.buffer[0].distance
            for s in self._streams.values() if s.buffer
        )
        group: List[JoinResult] = []
        for stream in self._streams.values():
            if not stream.admitted:
                continue
            while True:
                while stream.buffer and stream.buffer[0].distance == d:
                    group.append(stream.buffer.popleft())
                if stream.buffer or stream.done:
                    break
                self._fill([stream])
        group.sort(key=lambda r: (r.oid1, r.oid2))
        return group

    def _emit_group(self, group: List[JoinResult]) -> None:
        if not self._dedup_outer:
            self._ready.extend(group)
            return
        for result in group:
            if result.oid1 in self._seen_outer:
                continue
            self._seen_outer.add(result.oid1)
            self._ready.append(result)

    def _semi_join_complete(self) -> bool:
        return (
            self._dedup_outer
            and self._expected_outer is not None
            and len(self._seen_outer) >= self._expected_outer
        )

    # ------------------------------------------------------------------
    # iterator protocol
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[JoinResult]:
        return self

    def __next__(self) -> JoinResult:
        while not self._ready:
            if self._semi_join_complete():
                raise StopIteration
            self._fill_all_live()
            self._admit_due()
            if not any(s.buffer for s in self._streams.values()):
                raise StopIteration
            self._emit_group(self._collect_tie_group())
        return self._ready.popleft()

    # ------------------------------------------------------------------
    # suspend / resume
    # ------------------------------------------------------------------

    def state(self) -> Dict:
        """Picklable snapshot of the merge: per-stream buffers, done
        and admission flags, the semi-join bitset, and emitted-but-
        unconsumed results.  The executor's own task state is saved
        separately by the owning operator."""
        return {
            "streams": [
                {
                    "task": s.task_id,
                    "buffer": [tuple(r) for r in s.buffer],
                    "done": s.done,
                    "admitted": s.admitted,
                }
                for s in self._streams.values()
            ],
            "seen_outer": sorted(self._seen_outer),
            "ready": [tuple(r) for r in self._ready],
        }

    def restore(self, state: Dict) -> None:
        """Restore a :meth:`state` snapshot in place.

        Admission flags are replayed silently (``on_admit`` does not
        refire; the owner's counters carry that history).
        """
        for record in state["streams"]:
            stream = self._streams[record["task"]]
            stream.buffer = deque(
                JoinResult(*r) for r in record["buffer"]
            )
            stream.done = record["done"]
            stream.admitted = record["admitted"]
        self._seen_outer = set(state["seen_outer"])
        self._ready = deque(JoinResult(*r) for r in state["ready"])
